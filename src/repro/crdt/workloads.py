"""Benchmark workloads for Figure 14(b,d): CRDT operation streams.

For each CRDT type the 90%-read / 10%-write operation stream is
expressed as transaction specs whose key patterns match what the two
implementations actually do:

* on TARDiS, every operation touches a single plain field (§5.2);
* on a sequential store, reads of a counter sum per-replica vector
  entries, writes read-modify-write the replica's own entry, sets keep
  separate add/remove tag maps, and so on — each operation touches
  O(replicas) keys and must be serialized against every other.

The same specs run through the common simulation adapters, so lock
waits (sequential store) and branch-on-conflict (TARDiS) emerge as they
do in the microbenchmarks.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.workload.mixes import TxnSpec

OP_COUNTER = "Op-C"
PN_COUNTER = "PN-C"
LWW = "LWW"
MV = "MV"
OR_SET = "Set"

CRDT_KINDS = [OP_COUNTER, PN_COUNTER, LWW, MV, OR_SET]


class CrdtWorkload:
    """90/10 read/write stream over a handful of shared CRDT objects."""

    def __init__(
        self,
        kind: str,
        system: str,
        n_objects: int = 2,
        n_replicas: int = 3,
        write_ratio: float = 0.10,
        remote_ratio: float = 0.15,
        replica: str = "r0",
    ):
        if kind not in CRDT_KINDS:
            raise ValueError("unknown CRDT kind %r" % kind)
        if system not in ("tardis", "seq"):
            raise ValueError("system must be 'tardis' or 'seq'")
        self.kind = kind
        self.system = system
        self.n_objects = n_objects
        self.replicas = ["r%d" % i for i in range(n_replicas)]
        self.write_ratio = write_ratio
        #: sequential stores must merge every remote operation into the
        #: local state as it arrives (§7.2.1) — this fraction of the
        #: transaction stream is such merge applications, full
        #: read-modify-writes of the whole replicated state. TARDiS
        #: absorbs remote operations as replicated branch states and
        #: merges in periodic batches instead, so its stream has none.
        self.remote_ratio = remote_ratio if system == "seq" else 0.0
        self.replica = replica
        self._counter = 0

    # -- key layout ---------------------------------------------------------

    def _obj(self, i: int) -> str:
        return "crdt%02d" % i

    def _vec_keys(self, obj: str, which: str) -> List[str]:
        return ["%s/%s/%s" % (obj, which, r) for r in self.replicas]

    @property
    def preload(self) -> Dict[str, object]:
        data: Dict[str, object] = {}
        for i in range(self.n_objects):
            obj = self._obj(i)
            if self.system == "tardis":
                data[obj] = 0 if "C" in self.kind else ()
                continue
            if self.kind in (OP_COUNTER, PN_COUNTER):
                for key in self._vec_keys(obj, "p") + self._vec_keys(obj, "n"):
                    data[key] = 0
            elif self.kind in (LWW, MV):
                data[obj] = ()
            else:  # OR-set: adds map and removed-tag set
                data[obj + "/adds"] = ()
                data[obj + "/removed"] = ()
        return data

    # -- op streams ------------------------------------------------------------

    def next_txn(self, rng: random.Random) -> TxnSpec:
        self._counter += 1
        obj = self._obj(rng.randrange(self.n_objects))
        if self.remote_ratio and rng.random() < self.remote_ratio:
            return self._remote_merge_txn(obj)
        writing = rng.random() < self.write_ratio
        if self.system == "tardis":
            return self._tardis_txn(obj, writing, rng)
        return self._seq_txn(obj, writing, rng)

    def _remote_merge_txn(self, obj: str) -> TxnSpec:
        """Apply one remote operation: merge it into the local state.

        For state-based counters this reads and rewrites *every*
        per-replica entry (element-wise max); for sets, both tag maps;
        for registers, the candidate set.
        """
        self._counter += 1
        if self.kind in (OP_COUNTER, PN_COUNTER):
            keys = self._vec_keys(obj, "p") + self._vec_keys(obj, "n")
            ops = [("r", k) for k in keys]
            ops += [("w", k, self._counter) for k in keys]
            return TxnSpec(ops)
        if self.kind in (LWW, MV):
            return TxnSpec([("r", obj), ("w", obj, self._counter)])
        adds, removed = obj + "/adds", obj + "/removed"
        return TxnSpec(
            [
                ("r", adds),
                ("r", removed),
                ("w", adds, self._counter),
                ("w", removed, self._counter),
            ]
        )

    def _tardis_txn(self, obj: str, writing: bool, rng) -> TxnSpec:
        if not writing:
            return TxnSpec([("r", obj)], read_only=True)
        if self.kind in (LWW, MV):
            # Blind assign of a single field.
            return TxnSpec([("w", obj, self._counter)])
        # Counter / set: read-modify-write of a single field.
        return TxnSpec([("r", obj), ("w", obj, self._counter)])

    def _seq_txn(self, obj: str, writing: bool, rng) -> TxnSpec:
        own_p = "%s/p/%s" % (obj, self.replica)
        if self.kind in (OP_COUNTER, PN_COUNTER):
            if not writing:
                # Reading the value sums both vectors: O(replicas) reads.
                keys = self._vec_keys(obj, "p") + self._vec_keys(obj, "n")
                return TxnSpec([("r", k) for k in keys], read_only=True)
            # Increment: RMW the replica's own entry; the op-based
            # variant additionally appends to its applied-ops log.
            ops = [("r", own_p), ("w", own_p, self._counter)]
            if self.kind == OP_COUNTER:
                log_key = "%s/applied" % obj
                ops += [("r", log_key), ("w", log_key, self._counter)]
            return TxnSpec(ops)
        if self.kind in (LWW, MV):
            if not writing:
                return TxnSpec([("r", obj)], read_only=True)
            # Assign must observe the current (timestamped / vector-
            # clocked) candidates before superseding them.
            return TxnSpec([("r", obj), ("w", obj, self._counter)])
        # OR-set.
        adds, removed = obj + "/adds", obj + "/removed"
        if not writing:
            return TxnSpec([("r", adds), ("r", removed)], read_only=True)
        if rng.random() < 0.5:
            return TxnSpec([("r", adds), ("w", adds, self._counter)])
        return TxnSpec(
            [("r", adds), ("r", removed), ("w", removed, self._counter)]
        )
