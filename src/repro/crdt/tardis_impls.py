"""CRDTs on TARDiS: plain fields plus a three-way branch merge (§5.2, §7.2.1).

Single mode needs no distribution logic at all — a counter is an
integer, a register is a value, a set is a set — because TARDiS records
the branching structure itself. Merge mode reconciles with the value at
the fork point in hand, which the paper shows cuts the code roughly in
half versus the vector-based classics in :mod:`repro.crdt.seq_impls`.
"""

from __future__ import annotations

import itertools
from typing import Any, List, Optional

from repro.core.constraints import SnapshotIsolationConstraint
from repro.core.store import ClientSession, TardisStore

#: end constraint for blind assigns: write-write conflicts must fork
#: (under plain Serializability a blind write ripples past concurrent
#: writers and would silently overwrite them).
_WW_FORKS = SnapshotIsolationConstraint()


class _TardisType:
    """Shared plumbing: one keyed object in one TARDiS store."""

    def __init__(self, store: TardisStore, key: str, session: Optional[ClientSession] = None):
        self.store = store
        self.key = key
        self.session = session or store.session()

    def _merge_txn(self):
        merge = self.store.begin_merge(session=self.session)
        if len(merge.read_states) < 2:
            merge.abort()
            return None
        return merge


class TardisCounter(_TardisType):
    """Counter: increment/decrement a plain integer; merge sums deltas.

    Covers both the op-based and the PN-counter of Figure 14 — on TARDiS
    they are the same object, because the branch history already
    separates every replica's contributions.
    """

    def increment(self, by: int = 1) -> None:
        with self.store.begin(session=self.session) as txn:
            txn.put(self.key, txn.get(self.key, default=0) + by)

    def decrement(self, by: int = 1) -> None:
        self.increment(-by)

    def value(self) -> int:
        return self.store.get(self.key, default=0, session=self.session)

    def merge(self) -> Optional[int]:
        """Fold all branches: fork value plus each branch's delta."""
        merge = self._merge_txn()
        if merge is None:
            return None
        forks = merge.find_fork_points()
        base = merge.get_for_id(self.key, forks[0], default=0) if forks else 0
        merged = base + sum(v - base for v in merge.get_all(self.key))
        merge.put(self.key, merged)
        merge.commit()
        self.session.last_commit_id = merge.commit_id
        return merged


class TardisLWWRegister(_TardisType):
    """Register resolved newest-timestamp-wins at merge time."""

    def __init__(self, store, key, session=None):
        super().__init__(store, key, session)
        self._clock = itertools.count(1)

    def assign(self, value: Any, ts: Optional[int] = None) -> None:
        stamp = (ts if ts is not None else next(self._clock), self.store.site)
        txn = self.store.begin(session=self.session)
        txn.put(self.key, (stamp, value))
        txn.commit(_WW_FORKS)

    def value(self) -> Any:
        stored = self.store.get(self.key, session=self.session)
        return None if stored is None else stored[1]

    def merge(self) -> Any:
        merge = self._merge_txn()
        if merge is None:
            return self.value()
        candidates = merge.get_all(self.key)
        if candidates:
            winner = max(candidates, key=lambda pair: pair[0])
            merge.put(self.key, winner)
        merge.commit()
        self.session.last_commit_id = merge.commit_id
        return None if not candidates else winner[1]


class TardisMVRegister(_TardisType):
    """Register that exposes all concurrently written values after merge."""

    def assign(self, value: Any) -> None:
        txn = self.store.begin(session=self.session)
        txn.put(self.key, (value,))
        txn.commit(_WW_FORKS)

    def values(self) -> List[Any]:
        stored = self.store.get(self.key, default=(), session=self.session)
        return list(stored)

    def merge(self) -> List[Any]:
        merge = self._merge_txn()
        if merge is None:
            return self.values()
        combined: List[Any] = []
        for stored in merge.get_all(self.key):
            for value in stored:
                if value not in combined:
                    combined.append(value)
        merge.put(self.key, tuple(combined))
        merge.commit()
        self.session.last_commit_id = merge.commit_id
        return combined


class TardisORSet(_TardisType):
    """Set with observed-remove, add-wins semantics.

    Elements are stored as ``(element, tag)`` pairs with a fresh tag per
    add, so a merge can tell a *re-add* (new tag, wins over a concurrent
    remove) from mere retention (old tag, loses to a concurrent remove) —
    the OR-set semantics. The merge itself is a plain three-way diff
    against the fork-point value; no removed-tag tombstones or
    cross-replica state exchange are needed, which is where the code
    savings over :class:`repro.crdt.seq_impls.SeqORSet` come from.
    """

    def __init__(self, store, key, session=None):
        super().__init__(store, key, session)
        self._tags = itertools.count(1)

    def add(self, element: Any) -> None:
        tag = (self.store.site, self.session.name, next(self._tags))
        with self.store.begin(session=self.session) as txn:
            current = txn.get(self.key, default=frozenset())
            txn.put(self.key, current | {(element, tag)})

    def remove(self, element: Any) -> None:
        with self.store.begin(session=self.session) as txn:
            current = txn.get(self.key, default=frozenset())
            txn.put(
                self.key, frozenset(p for p in current if p[0] != element)
            )

    def contains(self, element: Any) -> bool:
        return element in self.elements()

    def elements(self) -> frozenset:
        tagged = self.store.get(self.key, default=frozenset(), session=self.session)
        return frozenset(element for element, _tag in tagged)

    def merge(self) -> frozenset:
        merge = self._merge_txn()
        if merge is None:
            return self.elements()
        forks = merge.find_fork_points()
        base = (
            merge.get_for_id(self.key, forks[0], default=frozenset())
            if forks
            else frozenset()
        )
        added: set = set()
        removed: set = set()
        for branch_value in merge.get_all(self.key):
            added |= branch_value - base
            removed |= base - branch_value
        merged = frozenset((base - removed) | added)  # fresh adds win
        merge.put(self.key, merged)
        merge.commit()
        self.session.last_commit_id = merge.commit_id
        return frozenset(element for element, _tag in merged)
