"""Classic CRDTs over a sequential transactional key-value store.

These follow Shapiro et al.'s algorithms, as the paper's BerkeleyDB
implementations do (§7.2.1): every replica's contribution is tracked
explicitly (per-replica vector entries, tagged elements, vector clocks),
every local mutation is a read-modify-write transaction, and every
remote state must be merged element-wise into the local state. Compare
with :mod:`repro.crdt.tardis_impls`, where the datastore tracks all of
this by design.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.baselines.seqstore import TwoPhaseLockingStore
from repro.crdt.vector_clock import VectorClock


class KVBackend:
    """Minimal transactional KV interface the classic CRDTs run over."""

    def get(self, key: Any, default: Any = None) -> Any:
        raise NotImplementedError

    def put(self, key: Any, value: Any) -> None:
        raise NotImplementedError

    def update(self, key: Any, fn, default: Any = None) -> Any:
        """Atomic read-modify-write; returns the new value."""
        raise NotImplementedError


class MemoryKV(KVBackend):
    """Dict-backed backend for tests and examples."""

    def __init__(self) -> None:
        self._data: Dict[Any, Any] = {}

    def get(self, key, default=None):
        return self._data.get(key, default)

    def put(self, key, value):
        self._data[key] = value

    def update(self, key, fn, default=None):
        new = fn(self._data.get(key, default))
        self._data[key] = new
        return new


class LockingKV(KVBackend):
    """Backend over the strict-2PL store (the paper's BDB role)."""

    def __init__(self, store: Optional[TwoPhaseLockingStore] = None):
        self._store = store or TwoPhaseLockingStore()

    def get(self, key, default=None):
        txn = self._store.begin()
        value = txn.get(key, default=default)
        txn.commit()
        return value

    def put(self, key, value):
        txn = self._store.begin()
        txn.put(key, value)
        txn.commit()

    def update(self, key, fn, default=None):
        txn = self._store.begin()
        new = fn(txn.get(key, default=default))
        txn.put(key, new)
        txn.commit()
        return new


class SeqOpCounter:
    """Operation-based counter: every replica's deltas tracked separately.

    ``increment``/``decrement`` return the operation to broadcast; remote
    operations are applied with ``apply``, deduplicated by operation id
    (op-based CRDTs need exactly-once delivery).
    """

    def __init__(self, kv: KVBackend, key: str, replica: str):
        self._kv = kv
        self._key = key
        self.replica = replica
        self._opseq = itertools.count(1)

    def _entry_key(self, replica: str) -> str:
        return "%s/op/%s" % (self._key, replica)

    def _applied_key(self) -> str:
        return "%s/applied" % self._key

    def increment(self, by: int = 1) -> Tuple[str, int, int]:
        op_id = next(self._opseq)
        self._kv.update(self._entry_key(self.replica), lambda v: (v or 0) + by, 0)
        return (self.replica, op_id, by)

    def decrement(self, by: int = 1) -> Tuple[str, int, int]:
        return self.increment(-by)

    def apply(self, op: Tuple[str, int, int]) -> None:
        replica, op_id, delta = op
        applied: FrozenSet = self._kv.get(self._applied_key(), frozenset())
        if (replica, op_id) in applied:
            return
        self._kv.update(self._entry_key(replica), lambda v: (v or 0) + delta, 0)
        self._kv.put(self._applied_key(), applied | {(replica, op_id)})

    def value(self, replicas: List[str]) -> int:
        return sum(self._kv.get(self._entry_key(r), 0) for r in replicas)


class SeqPNCounter:
    """State-based PN-counter: increment and decrement vectors.

    Reading sums both vectors; merging takes the element-wise maximum —
    every operation, even a read, touches O(replicas) state (§5.2).
    """

    def __init__(self, kv: KVBackend, key: str, replica: str):
        self._kv = kv
        self._key = key
        self.replica = replica

    def _vec(self, which: str) -> Dict[str, int]:
        return dict(self._kv.get("%s/%s" % (self._key, which), {}))

    def _put_vec(self, which: str, vec: Dict[str, int]) -> None:
        self._kv.put("%s/%s" % (self._key, which), vec)

    def increment(self, by: int = 1) -> None:
        vec = self._vec("p")
        vec[self.replica] = vec.get(self.replica, 0) + by
        self._put_vec("p", vec)

    def decrement(self, by: int = 1) -> None:
        vec = self._vec("n")
        vec[self.replica] = vec.get(self.replica, 0) + by
        self._put_vec("n", vec)

    def value(self) -> int:
        return sum(self._vec("p").values()) - sum(self._vec("n").values())

    def state(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        return self._vec("p"), self._vec("n")

    def merge(self, state: Tuple[Dict[str, int], Dict[str, int]]) -> None:
        remote_p, remote_n = state
        for which, remote in (("p", remote_p), ("n", remote_n)):
            local = self._vec(which)
            for replica, count in remote.items():
                if count > local.get(replica, 0):
                    local[replica] = count
            self._put_vec(which, local)


class SeqLWWRegister:
    """Last-writer-wins register: (timestamp, replica, value) triples."""

    def __init__(self, kv: KVBackend, key: str, replica: str):
        self._kv = kv
        self._key = key
        self.replica = replica
        self._clock = itertools.count(1)

    def assign(self, value: Any, ts: Optional[int] = None) -> Tuple[int, str, Any]:
        stamp = (ts if ts is not None else next(self._clock), self.replica, value)
        current = self._kv.get(self._key)
        if current is None or stamp[:2] > current[:2]:
            self._kv.put(self._key, stamp)
        return stamp

    def merge(self, stamp: Tuple[int, str, Any]) -> None:
        current = self._kv.get(self._key)
        if current is None or stamp[:2] > current[:2]:
            self._kv.put(self._key, stamp)

    def value(self) -> Any:
        current = self._kv.get(self._key)
        return None if current is None else current[2]


class SeqMVRegister:
    """Multi-value register: candidate values tagged with vector clocks.

    Assign supersedes everything the replica has observed; merging keeps
    the set of causally maximal (concurrent) candidates.
    """

    def __init__(self, kv: KVBackend, key: str, replica: str):
        self._kv = kv
        self._key = key
        self.replica = replica

    def _candidates(self) -> List[Tuple[VectorClock, Any]]:
        return list(self._kv.get(self._key, []))

    def assign(self, value: Any) -> None:
        observed = self._candidates()
        clock = VectorClock()
        for vc, _value in observed:
            clock = clock.join(vc)
        clock = clock.increment(self.replica)
        self._kv.put(self._key, [(clock, value)])

    def merge(self, remote: List[Tuple[VectorClock, Any]]) -> None:
        combined = self._candidates() + list(remote)
        maximal: List[Tuple[VectorClock, Any]] = []
        for vc, value in combined:
            dominated = any(
                other_vc.dominates(vc) and other_vc != vc
                for other_vc, _v in combined
            )
            if not dominated and (vc, value) not in maximal:
                maximal.append((vc, value))
        self._kv.put(self._key, maximal)

    def values(self) -> List[Any]:
        return [value for _vc, value in self._candidates()]

    def state(self) -> List[Tuple[VectorClock, Any]]:
        return self._candidates()


class SeqORSet:
    """Observed-remove set: unique add-tags, removes kill observed tags."""

    def __init__(self, kv: KVBackend, key: str, replica: str):
        self._kv = kv
        self._key = key
        self.replica = replica
        self._tagseq = itertools.count(1)

    def _adds(self) -> Dict[Any, Set[Tuple[str, int]]]:
        return {k: set(v) for k, v in self._kv.get("%s/adds" % self._key, {}).items()}

    def _removed(self) -> Set[Tuple[str, int]]:
        return set(self._kv.get("%s/removed" % self._key, set()))

    def add(self, element: Any) -> None:
        tag = (self.replica, next(self._tagseq))
        adds = self._adds()
        adds.setdefault(element, set()).add(tag)
        self._kv.put("%s/adds" % self._key, adds)

    def remove(self, element: Any) -> None:
        adds = self._adds()
        observed = adds.get(element, set())
        if observed:
            self._kv.put("%s/removed" % self._key, self._removed() | observed)

    def contains(self, element: Any) -> bool:
        live = self._adds().get(element, set()) - self._removed()
        return bool(live)

    def elements(self) -> Set[Any]:
        removed = self._removed()
        return {e for e, tags in self._adds().items() if tags - removed}

    def state(self) -> Tuple[Dict[Any, Set], Set]:
        return self._adds(), self._removed()

    def merge(self, state: Tuple[Dict[Any, Set], Set]) -> None:
        remote_adds, remote_removed = state
        adds = self._adds()
        for element, tags in remote_adds.items():
            adds.setdefault(element, set()).update(tags)
        self._kv.put("%s/adds" % self._key, adds)
        self._kv.put("%s/removed" % self._key, self._removed() | set(remote_removed))
