"""Vector clocks for the classic CRDT implementations.

The sequential-store CRDTs of §7.2.1 model causality explicitly: a
counter is a pair of per-replica vectors, a multi-value register keeps
one vector clock per candidate value, and so on. TARDiS makes all of
this unnecessary — which is precisely the paper's point — but the
baseline needs it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple


class VectorClock:
    """An immutable replica -> counter map with the usual partial order."""

    __slots__ = ("_entries",)

    def __init__(self, entries: Mapping[str, int] = ()):
        self._entries: Dict[str, int] = {
            k: v for k, v in dict(entries).items() if v
        }

    def get(self, replica: str) -> int:
        return self._entries.get(replica, 0)

    def increment(self, replica: str) -> "VectorClock":
        bumped = dict(self._entries)
        bumped[replica] = bumped.get(replica, 0) + 1
        return VectorClock(bumped)

    def join(self, other: "VectorClock") -> "VectorClock":
        merged = dict(self._entries)
        for replica, count in other._entries.items():
            if count > merged.get(replica, 0):
                merged[replica] = count
        return VectorClock(merged)

    def dominates(self, other: "VectorClock") -> bool:
        """self >= other pointwise."""
        return all(self.get(r) >= c for r, c in other._entries.items())

    def concurrent_with(self, other: "VectorClock") -> bool:
        return not self.dominates(other) and not other.dominates(self)

    def items(self) -> Iterable[Tuple[str, int]]:
        return self._entries.items()

    def as_dict(self) -> Dict[str, int]:
        return dict(self._entries)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VectorClock) and self._entries == other._entries

    def __hash__(self) -> int:
        return hash(frozenset(self._entries.items()))

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        inner = ",".join("%s:%d" % kv for kv in sorted(self._entries.items()))
        return "<VC %s>" % inner
