"""Convergent Replicated Data Types, two ways (§7.2.1, Figure 14).

The paper ports a subset of the Shapiro et al. CRDT catalogue — an
operation-based counter, a state-based PN-counter, a last-writer-wins
register, a multi-value register, and an OR-set — to both TARDiS and a
sequential store (BerkeleyDB in the paper), and compares code size,
throughput, and useful work.

* :mod:`repro.crdt.seq_impls` — the classic implementations: vector
  clocks, per-replica entries, explicit state merges; they run over any
  transactional key-value backend.
* :mod:`repro.crdt.tardis_impls` — the TARDiS implementations: single
  mode reads/writes a plain field, exactly as in a non-distributed
  program; merge mode reconciles branches three-way from the fork point.
  StateID replication and conflict tracking do the bookkeeping the
  classic versions must hand-roll.
"""

from repro.crdt.vector_clock import VectorClock
from repro.crdt.seq_impls import (
    KVBackend,
    LockingKV,
    MemoryKV,
    SeqLWWRegister,
    SeqMVRegister,
    SeqORSet,
    SeqOpCounter,
    SeqPNCounter,
)
from repro.crdt.tardis_impls import (
    TardisCounter,
    TardisLWWRegister,
    TardisMVRegister,
    TardisORSet,
)

__all__ = [
    "VectorClock",
    "KVBackend",
    "MemoryKV",
    "LockingKV",
    "SeqOpCounter",
    "SeqPNCounter",
    "SeqLWWRegister",
    "SeqMVRegister",
    "SeqORSet",
    "TardisCounter",
    "TardisLWWRegister",
    "TardisMVRegister",
    "TardisORSet",
]
