"""A simulated wide-area network for inter-site replication.

Point-to-point messages with per-pair latency, delivered as events on
the shared discrete-event simulator. Partitions buffer messages; healing
flushes them. This stands in for the paper's Netty transport and the
Google Cloud three-zone deployment of §7.1.6 — what matters for the
experiments is asynchrony and latency, both of which are preserved.

Transport behaviour is observable two ways: plain instance counters
(``messages_sent`` etc., always on, used by the cluster harness) and the
mirrored ``tardis_net_*`` metrics in the default registry (when it is
enabled), so replication benchmarks report the transport alongside the
store. The counters reconcile at any instant::

    sent == delivered + in_flight + buffered + dropped
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.errors import UnknownSiteError
from repro.obs import metrics as _met
from repro.sim.des import Simulator


class SimNetwork:
    """Latency-injecting, partitionable message fabric."""

    def __init__(self, sim: Simulator, default_latency_ms: float = 50.0):
        self._sim = sim
        self._default = default_latency_ms
        self._latency: Dict[Tuple[str, str], float] = {}
        self._handlers: Dict[str, Callable[[str, Any], None]] = {}
        self._partitioned: set = set()
        self._buffered: Dict[Tuple[str, str], List[Any]] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        #: messages parked behind a partition over the network's lifetime.
        self.messages_buffered = 0
        #: buffered messages re-scheduled by a heal.
        self.buffered_flushed = 0
        #: buffered messages discarded via :meth:`drop_buffered`.
        self.buffered_dropped = 0
        #: messages scheduled but not yet delivered.
        self._in_flight = 0

    def connect(self, site: str, handler: Callable[[str, Any], None]) -> None:
        """Register ``handler(src, message)`` as ``site``'s inbox."""
        self._handlers[site] = handler

    def sites(self) -> List[str]:
        return list(self._handlers)

    def set_latency(self, src: str, dst: str, latency_ms: float) -> None:
        """One-way latency for the (src, dst) pair (set both ways for RTT)."""
        self._latency[(src, dst)] = latency_ms

    def latency(self, src: str, dst: str) -> float:
        return self._latency.get((src, dst), self._default)

    # -- partitions ----------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Cut both directions between ``a`` and ``b``; messages buffer."""
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Restore the link and flush buffered messages, in send order."""
        m = _met.DEFAULT
        for pair in ((a, b), (b, a)):
            self._partitioned.discard(pair)
            flushed = self._buffered.pop(pair, [])
            self.buffered_flushed += len(flushed)
            if m.enabled and flushed:
                m.inc("tardis_net_buffered_flushed_total", len(flushed))
            for message in flushed:
                self._schedule(pair[0], pair[1], message)

    def drop_buffered(self, a: str, b: str) -> int:
        """Discard messages buffered behind the ``a``/``b`` partition.

        Models a link whose outage outlived its buffers (lost gossip);
        returns the number of messages dropped.
        """
        dropped = 0
        for pair in ((a, b), (b, a)):
            dropped += len(self._buffered.pop(pair, []))
        self.buffered_dropped += dropped
        if dropped:
            m = _met.DEFAULT
            if m.enabled:
                m.inc("tardis_net_buffered_dropped_total", dropped)
        return dropped

    def is_partitioned(self, a: str, b: str) -> bool:
        return (a, b) in self._partitioned

    # -- messaging --------------------------------------------------------------

    def send(self, src: str, dst: str, message: Any) -> None:
        if dst not in self._handlers:
            raise UnknownSiteError("no site %r" % dst)
        self.messages_sent += 1
        m = _met.DEFAULT
        if m.enabled:
            m.inc("tardis_net_messages_sent_total")
        if (src, dst) in self._partitioned:
            self._buffered.setdefault((src, dst), []).append(message)
            self.messages_buffered += 1
            if m.enabled:
                m.inc("tardis_net_buffered_total")
            return
        self._schedule(src, dst, message)

    def broadcast(self, src: str, message: Any) -> None:
        for dst in self._handlers:
            if dst != src:
                self.send(src, dst, message)

    def _schedule(self, src: str, dst: str, message: Any) -> None:
        self._in_flight += 1

        def deliver() -> None:
            self._in_flight -= 1
            self.messages_delivered += 1
            m = _met.DEFAULT
            if m.enabled:
                m.inc("tardis_net_messages_delivered_total")
            self._handlers[dst](src, message)

        self._sim.schedule(self.latency(src, dst), deliver)

    # -- introspection -----------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Messages scheduled on the simulator but not yet delivered."""
        return self._in_flight

    @property
    def buffered_count(self) -> int:
        """Messages currently parked behind partitions."""
        return sum(len(msgs) for msgs in self._buffered.values())

    def __repr__(self) -> str:
        return "<SimNetwork sites=%d sent=%d delivered=%d buffered=%d>" % (
            len(self._handlers),
            self.messages_sent,
            self.messages_delivered,
            self.buffered_count,
        )
