"""A simulated wide-area network for inter-site replication.

Point-to-point messages with per-pair latency, delivered as events on
the shared discrete-event simulator. Partitions buffer messages; healing
flushes them. This stands in for the paper's Netty transport and the
Google Cloud three-zone deployment of §7.1.6 — what matters for the
experiments is asynchrony and latency, both of which are preserved.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

from repro.errors import UnknownSiteError
from repro.sim.des import Simulator


class SimNetwork:
    """Latency-injecting, partitionable message fabric."""

    def __init__(self, sim: Simulator, default_latency_ms: float = 50.0):
        self._sim = sim
        self._default = default_latency_ms
        self._latency: Dict[Tuple[str, str], float] = {}
        self._handlers: Dict[str, Callable[[str, Any], None]] = {}
        self._partitioned: set = set()
        self._buffered: Dict[Tuple[str, str], List[Any]] = {}
        self.messages_sent = 0
        self.messages_delivered = 0

    def connect(self, site: str, handler: Callable[[str, Any], None]) -> None:
        """Register ``handler(src, message)`` as ``site``'s inbox."""
        self._handlers[site] = handler

    def sites(self) -> List[str]:
        return list(self._handlers)

    def set_latency(self, src: str, dst: str, latency_ms: float) -> None:
        """One-way latency for the (src, dst) pair (set both ways for RTT)."""
        self._latency[(src, dst)] = latency_ms

    def latency(self, src: str, dst: str) -> float:
        return self._latency.get((src, dst), self._default)

    # -- partitions ----------------------------------------------------------

    def partition(self, a: str, b: str) -> None:
        """Cut both directions between ``a`` and ``b``; messages buffer."""
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Restore the link and flush buffered messages, in send order."""
        for pair in ((a, b), (b, a)):
            self._partitioned.discard(pair)
            for message in self._buffered.pop(pair, []):
                self._schedule(pair[0], pair[1], message)

    def is_partitioned(self, a: str, b: str) -> bool:
        return (a, b) in self._partitioned

    # -- messaging --------------------------------------------------------------

    def send(self, src: str, dst: str, message: Any) -> None:
        if dst not in self._handlers:
            raise UnknownSiteError("no site %r" % dst)
        self.messages_sent += 1
        if (src, dst) in self._partitioned:
            self._buffered.setdefault((src, dst), []).append(message)
            return
        self._schedule(src, dst, message)

    def broadcast(self, src: str, message: Any) -> None:
        for dst in self._handlers:
            if dst != src:
                self.send(src, dst, message)

    def _schedule(self, src: str, dst: str, message: Any) -> None:
        def deliver() -> None:
            self.messages_delivered += 1
            self._handlers[dst](src, message)

        self._sim.schedule(self.latency(src, dst), deliver)
