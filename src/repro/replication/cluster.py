"""Multi-site cluster harness (§6.4, §7.1.6).

``Cluster`` wires N TARDiS stores together over the simulated network,
one Replicator per site, with optimistic or pessimistic replicated
garbage collection. ``run_replicated_workload`` reproduces the Figure 12
methodology: closed-loop clients at every site, asynchronous
replication between them, aggregate throughput reported.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.ids import ROOT_ID
from repro.core.store import TardisStore
from repro.obs import metrics as _met
from repro.obs import tracing as _trc
from repro.obs.context import causal_timeline, merge_events
from repro.obs.series import DivergenceMonitor
from repro.replication.network import SimNetwork
from repro.replication.replicator import Replicator
from repro.sim.adapters import TardisAdapter
from repro.sim.des import Resource, Simulator
from repro.workload.runner import RunConfig, RunResult, _Client, _Measure

OPTIMISTIC = "optimistic"
PESSIMISTIC = "pessimistic"

#: one-way latencies (ms) between the three zones of §7.1.6
#: (us-central1-f, europe-west1-b, asia-east1), order of magnitude.
GEO_LATENCIES = {
    ("us", "eu"): 50.0,
    ("eu", "us"): 50.0,
    ("us", "asia"): 80.0,
    ("asia", "us"): 80.0,
    ("eu", "asia"): 125.0,
    ("asia", "eu"): 125.0,
}

SITE_NAMES = ["us", "eu", "asia", "s4", "s5", "s6"]


class Cluster:
    """N fully replicated TARDiS sites over a simulated WAN."""

    def __init__(
        self,
        sites: Optional[List[str]] = None,
        n_sites: int = 3,
        sim: Optional[Simulator] = None,
        latencies: Optional[Dict] = None,
        default_latency_ms: float = 50.0,
        gc_mode: str = OPTIMISTIC,
        store_kwargs: Optional[dict] = None,
        engine: Any = None,
        trace: bool = False,
        trace_capacity: int = 4096,
    ):
        if sites is None:
            sites = SITE_NAMES[:n_sites]
        store_kwargs = dict(store_kwargs or {})
        if engine is not None:
            store_kwargs.setdefault("engine", engine)
        self.sim = sim or Simulator()
        self.network = SimNetwork(self.sim, default_latency_ms=default_latency_ms)
        for pair, lat in (latencies or GEO_LATENCIES).items():
            if pair[0] in sites and pair[1] in sites:
                self.network.set_latency(pair[0], pair[1], lat)
        self.stores: Dict[str, TardisStore] = {}
        self.replicators: Dict[str, Replicator] = {}
        #: per-site ring buffers on the simulated clock (trace=True).
        self.tracers: Dict[str, _trc.Tracer] = {}
        for site in sites:
            store = TardisStore(site, **store_kwargs)
            if trace:
                tracer = _trc.Tracer(
                    capacity=trace_capacity,
                    enabled=True,
                    clock=lambda: self.sim.now,
                )
                store.set_tracer(tracer)
                self.tracers[site] = tracer
            self.stores[site] = store
            self.replicators[site] = Replicator(store, self.network)
        self.gc_mode = gc_mode
        if gc_mode == PESSIMISTIC:
            for site, store in self.stores.items():
                store.gc.consent_filter = self._make_consent_filter(site)
        elif gc_mode != OPTIMISTIC:
            raise ValueError("unknown gc mode %r" % gc_mode)

    @property
    def sites(self) -> List[str]:
        return list(self.stores)

    def _make_consent_filter(self, site: str) -> Callable:
        """Pessimistic GC: collect only states every replica has applied.

        The paper gathers unanimous consent through the Replicators; in
        the simulation all sites share a process, so consent reduces to
        checking presence at every peer directly.
        """

        def consent(candidate_ids):
            peers = [s for name, s in self.stores.items() if name != site]
            return {
                sid
                for sid in candidate_ids
                if all(sid in peer.dag for peer in peers)
            }

        return consent

    def run(self, until: Optional[float] = None) -> float:
        """Drain the simulator (deliver replication traffic)."""
        return self.sim.run(until=until)

    def converged(self, key: Any) -> bool:
        """True when every site's merged view agrees on ``key``.

        Each site must have a single leaf (all branches merged) and the
        leaves' visible values must match across sites.
        """
        values = []
        for store in self.stores.values():
            leaves = store.dag.leaves()
            if len(leaves) != 1:
                return False
            hit = store.versions.read_visible(key, leaves[0], store.dag)
            values.append(hit if hit is None else hit[1])
        return all(v == values[0] for v in values)

    def state_counts(self) -> Dict[str, int]:
        return {site: len(store.dag) for site, store in self.stores.items()}

    # -- cross-replica tracing ------------------------------------------------

    def events(self, kind: Optional[str] = None):
        """All sites' trace events merged into one time-ordered stream."""
        return merge_events(self.tracers, kind=kind)

    def timeline(self, trace_id: str):
        """One transaction's causally ordered multi-site timeline.

        ``trace_id`` is the repr of the transaction's state id (e.g.
        ``"s14@us"``); requires the cluster to have been built with
        ``trace=True``.
        """
        return causal_timeline(self.events(), str(trace_id))

    def monitor(self, capacity: int = 512, network: Any = None) -> DivergenceMonitor:
        """A divergence monitor over every site (sample via DES ticks)."""
        return DivergenceMonitor(
            dict(self.stores),
            clock=lambda: self.sim.now,
            network=network if network is not None else self.network,
            capacity=capacity,
        )


@dataclass
class ReplicatedRunResult:
    n_sites: int
    per_site: List[RunResult] = field(default_factory=list)
    aggregate_tps: float = 0.0
    messages: int = 0
    #: cluster-wide observability registry snapshot (all sites fold into
    #: one registry: replication counters, forks, merges, GC).
    obs_metrics: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        return "sites=%d aggregate=%8.0f txn/s (%s)" % (
            self.n_sites,
            self.aggregate_tps,
            ", ".join("%.0f" % r.throughput_tps for r in self.per_site),
        )


def _make_maintenance(sim, adapter, measure, cores, config):
    """Per-site periodic merge+GC task (bound per site: the obvious
    closure-over-loop-variable version reschedules the wrong site's)."""

    def run_maintenance() -> None:
        cost = adapter.maintenance()
        measure.maintenance_work += cost
        if cost:
            cores.execute(cost, lambda: None)
        sim.schedule(config.maintenance_interval_ms, run_maintenance)

    return run_maintenance


def run_replicated_workload(
    n_sites: int,
    workload_factory: Callable[[], Any],
    config: RunConfig,
    branching: bool = True,
    remote_apply_cost: float = 0.005,
    default_latency_ms: float = 50.0,
    settle_ms: float = 150.0,
) -> ReplicatedRunResult:
    """Closed-loop clients at every site with async replication (Fig 12).

    ``config.n_clients`` and ``config.cores`` are per site. One site
    seeds the database and the seed replicates for ``settle_ms`` before
    any client starts (every site measures against a populated store).
    Remote transaction application charges ``remote_apply_cost`` to the
    destination site's cores — by design it never contends with local
    transactions (§7.1.6), so aggregate throughput scales with sites.
    """
    sim = Simulator()
    cluster = Cluster(
        n_sites=n_sites,
        sim=sim,
        default_latency_ms=default_latency_ms,
        store_kwargs={"engine": config.engine},
    )
    measures = []
    adapters = []
    site_cores = {}
    registry = (
        _met.MetricsRegistry(enabled=True) if config.collect_metrics else None
    )
    monitor = None
    if config.series_interval_ms:
        monitor = cluster.monitor()
        monitor.install(sim, config.series_interval_ms)

    # One cluster-wide registry: every site's stores and replicators
    # record into it while the run executes (single simulator thread).
    previous_default = None
    if registry is not None:
        previous_default = _met.set_default_registry(registry)
    try:
        seed_workload = workload_factory()
        preload = getattr(seed_workload, "preload", None)
        site_adapters = {}
        for site in cluster.sites:
            site_adapters[site] = TardisAdapter(
                store=cluster.stores[site], branching=branching
            )
        if preload:
            site_adapters[cluster.sites[0]].preload(preload)
            sim.run(until=settle_ms)  # let the seed replicate everywhere

        start_at = sim.now
        warmup_abs = start_at + config.warmup_ms
        end_at = start_at + config.duration_ms

        for index, site in enumerate(cluster.sites):
            adapter = site_adapters[site]
            adapters.append(adapter)
            cores = Resource(sim, config.cores)
            serial = Resource(sim, 1)
            site_cores[site] = cores
            measure = _Measure(warmup_abs, registry)
            measures.append(measure)
            workload = workload_factory()
            waiters: Dict[Any, _Client] = {}
            clients = [
                _Client(
                    "%s-client-%d" % (site, i),
                    sim,
                    cores,
                    adapter,
                    workload,
                    random.Random(config.seed * 7919 + index * 131 + i),
                    measure,
                    waiters,
                    serial,
                )
                for i in range(config.n_clients)
            ]
            replicator = cluster.replicators[site]
            replicator.apply_listener = (
                lambda message, cores=cores: cores.execute(remote_apply_cost, lambda: None)
            )

            for client in clients:
                client.start()

            if config.maintenance_interval_ms:
                sim.schedule(
                    config.maintenance_interval_ms,
                    _make_maintenance(sim, adapter, measure, cores, config),
                )

        sim.run(until=end_at)
    finally:
        if registry is not None:
            _met.set_default_registry(previous_default)

    window_s = max(config.duration_ms - config.warmup_ms, 1e-9) / 1000.0
    per_site = []
    for adapter, measure in zip(adapters, measures):
        per_site.append(
            RunResult(
                system="tardis@%s" % adapter.store.site,
                n_clients=config.n_clients,
                duration_ms=config.duration_ms,
                commits=measure.commits,
                aborts=measure.aborts,
                throughput_tps=measure.commits / window_s,
                mean_latency_ms=measure.latency.mean,
                p50_latency_ms=measure.latency.p50,
                p99_latency_ms=measure.latency.p99,
                adapter_stats=adapter.stats(),
            )
        )
    obs_metrics = registry.to_dict() if registry is not None else {}
    if monitor is not None:
        obs_metrics.update(monitor.to_dict())
    return ReplicatedRunResult(
        n_sites=n_sites,
        per_site=per_site,
        aggregate_tps=sum(r.throughput_tps for r in per_site),
        messages=cluster.network.messages_sent,
        obs_metrics=obs_metrics,
    )
