"""Multi-master asynchronous replication (§6.4).

Each site runs a full TARDiS store; a per-site Replicator gossips
committed transactions to every peer. A replicated transaction carries
the StateID of the state it must be applied under, which reduces remote
dependency checking to a constant-time presence test; transactions whose
parent has not arrived yet are cached and applied later (§6.4).

Garbage collection across sites runs either *pessimistically* (a state
is collected only once every replica has applied it) or
*optimistically* (sites collect independently and refetch from a peer
when they turn out to need a state they dropped).
"""

from repro.replication.network import SimNetwork
from repro.replication.replicator import Replicator, TxnMessage
from repro.replication.cluster import Cluster, run_replicated_workload

__all__ = [
    "SimNetwork",
    "Replicator",
    "TxnMessage",
    "Cluster",
    "run_replicated_workload",
]
