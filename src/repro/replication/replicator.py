"""The per-site Replicator service (§6.4).

Propagates locally committed transactions to every peer and applies
remote transactions under their StateID constraint: a remote transaction
names its parent state ids, so dependency checking reduces to a
presence test in the local DAG. Transactions whose parents have not
arrived are cached and retried as the missing states land.

For optimistic replicated GC, a replicator that receives a transaction
whose parent it has already collected (and flushed from the promotion
table) fetches the missing state back from the sender (§6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.ids import StateId
from repro.core.store import TardisStore
from repro.errors import GarbageCollectedError
from repro.obs import metrics as _met
from repro.obs import tracing as _trc
from repro.obs.context import TraceContext
from repro.replication.network import SimNetwork


@dataclass
class TxnMessage:
    """One replicated transaction: apply at ``parent_ids``, verbatim."""

    state_id: StateId
    parent_ids: Tuple[StateId, ...]
    writes: Dict[Any, Any]
    write_keys: Tuple[Any, ...] = ()
    #: trace context of the originating commit (None when tracing is off).
    ctx: Optional[TraceContext] = None


@dataclass
class FetchRequest:
    state_id: StateId
    #: context of the transaction that *triggered* the fetch — fetch
    #: traffic is attributed to it, not to the fetched state.
    ctx: Optional[TraceContext] = None


@dataclass
class FetchResponse:
    state_id: StateId
    #: the state's content when still live at the responder...
    message: Optional[TxnMessage] = None
    #: ...or the id it was promoted to when compressed away.
    promoted_to: Optional[StateId] = None
    ctx: Optional[TraceContext] = None


def _stamp(ctx: Optional[TraceContext]) -> Dict[str, Any]:
    """Event attrs carrying a context's causal identity, if any."""
    return {"trace": ctx.trace, "parent": ctx.parent} if ctx is not None else {}


class Replicator:
    """Gossips local commits; applies (or caches) remote transactions."""

    def __init__(
        self,
        store: TardisStore,
        network: SimNetwork,
        apply_listener=None,
    ):
        self.store = store
        self.site = store.site
        self.network = network
        #: messages waiting for a parent state: missing id -> messages.
        self._pending: Dict[StateId, List[Tuple[str, TxnMessage]]] = {}
        #: called after each successful remote apply (simulation charges
        #: service time through it).
        self.apply_listener = apply_listener
        self.applied = 0
        self.cached = 0
        self.fetches = 0
        self.dropped = 0
        network.connect(self.site, self.handle)
        store.add_commit_listener(self._on_local_commit)

    # -- outbound -----------------------------------------------------------

    def _tracer(self):
        tracer = self.store.tracer
        return tracer if tracer is not None else _trc.DEFAULT

    def _on_local_commit(self, state, writes: Dict[Any, Any], ctx=None) -> None:
        message = TxnMessage(
            state_id=state.id,
            parent_ids=tuple(p.id for p in state.parents),
            writes=dict(writes),
            write_keys=tuple(state.write_keys),
            ctx=ctx,
        )
        m = _met.DEFAULT
        if m.enabled:
            m.inc("tardis_repl_send_total")
        t = self._tracer()
        if t.enabled:
            # state ids travel as strings (trace ids) so ring entries stay
            # atomic and GC-invisible; ctx.trace is that string already.
            t.event(
                "repl.send",
                state=ctx.trace if ctx is not None else repr(state.id),
                src=self.site,
                site=self.site,
                **_stamp(ctx)
            )
        self.network.broadcast(self.site, message)

    # -- inbound -------------------------------------------------------------

    def handle(self, src: str, message: Any) -> None:
        if isinstance(message, TxnMessage):
            self._apply_or_cache(src, message)
        elif isinstance(message, FetchRequest):
            self._answer_fetch(src, message)
        elif isinstance(message, FetchResponse):
            self._absorb_fetch(src, message)
        else:  # pragma: no cover - defensive
            raise TypeError("unknown replication message %r" % (message,))

    def _apply_or_cache(self, src: str, message: TxnMessage) -> None:
        m = _met.DEFAULT
        t = self._tracer()
        missing = [pid for pid in message.parent_ids if pid not in self.store.dag]
        if missing:
            self.cached += 1
            for pid in missing:
                self._pending.setdefault(pid, []).append((src, message))
            # Optimistic GC recovery: the parent may be gone because we
            # collected it; ask the sender for it.
            self.fetches += 1
            if m.enabled:
                m.inc("tardis_repl_cache_total")
                m.inc("tardis_repl_fetch_total")
            if t.enabled:
                t.event(
                    "repl.cache",
                    state=repr(message.state_id),
                    missing=repr(missing[0]),
                    site=self.site,
                    **_stamp(message.ctx)
                )
            # The fetch is attributed to the transaction waiting on it.
            self.network.send(self.site, src, FetchRequest(missing[0], ctx=message.ctx))
            return
        try:
            applied = self.store.apply_remote(
                message.state_id,
                message.parent_ids,
                message.writes,
                write_keys=message.write_keys,
                ctx=message.ctx,
            )
        except GarbageCollectedError:
            # The parent's identity was collected in a way that cannot be
            # reconstructed locally (id-order violation after a flush);
            # the paper aborts transactions needing such states (§6.4).
            self.dropped += 1
            if m.enabled:
                m.inc("tardis_repl_drop_total")
            if t.enabled:
                t.event(
                    "repl.drop",
                    state=repr(message.state_id),
                    site=self.site,
                    **_stamp(message.ctx)
                )
            return
        if applied is not None:
            self.applied += 1
            ctx = message.ctx
            if ctx is None and t.enabled:
                # Gossip from an untraced site: reconstruct the context
                # from the state id, which is the trace id (§6.4).
                ctx = TraceContext.for_commit(
                    message.state_id, message.parent_ids, message.state_id.site
                )
            if m.enabled:
                m.inc("tardis_repl_apply_total")
            if t.enabled:
                t.event(
                    "repl.apply",
                    state=ctx.trace if ctx is not None else repr(message.state_id),
                    src=src,
                    site=self.site,
                    **_stamp(ctx)
                )
            if self.apply_listener is not None:
                self.apply_listener(message)
        self._drain_pending(message.state_id)

    def _drain_pending(self, arrived: StateId) -> None:
        waiting = self._pending.pop(arrived, None)
        if not waiting:
            return
        for src, message in waiting:
            self._apply_or_cache(src, message)

    # -- state fetch (optimistic GC, §6.4) --------------------------------------

    def _answer_fetch(self, src: str, request: FetchRequest) -> None:
        t = self._tracer()
        if t.enabled:
            t.event(
                "repl.fetch",
                state=repr(request.state_id),
                peer=src,
                site=self.site,
                **_stamp(request.ctx)
            )
        state = self.store.dag.get(request.state_id)
        if state is None:
            promoted = self.store.dag.promotion_of(request.state_id)
            self.network.send(
                self.site,
                src,
                FetchResponse(request.state_id, promoted_to=promoted, ctx=request.ctx),
            )
            return
        writes = {}
        for key in state.write_keys:
            value = self.store.versions.records.get((key, state.id))
            writes[key] = value
        fetched_ctx = None
        if t.enabled:
            # The re-sent transaction travels under its own identity.
            fetched_ctx = TraceContext.for_commit(
                state.id, [p.id for p in state.parents], state.id.site
            )
        message = TxnMessage(
            state_id=state.id,
            parent_ids=tuple(p.id for p in state.parents),
            writes=writes,
            write_keys=tuple(state.write_keys),
            ctx=fetched_ctx,
        )
        self.network.send(
            self.site,
            src,
            FetchResponse(request.state_id, message=message, ctx=request.ctx),
        )

    def _absorb_fetch(self, src: str, response: FetchResponse) -> None:
        if response.message is not None:
            self._apply_or_cache(src, response.message)
            return
        if response.promoted_to is not None:
            # The peer compressed the state away: its identity lives on in
            # the promoted descendant. Record the same promotion locally
            # so dependent transactions resolve, then retry them.
            if response.promoted_to in self.store.dag:
                if response.state_id not in self.store.dag:
                    self.store.dag._promotions[response.state_id] = (
                        response.promoted_to
                    )
                self._drain_pending(response.state_id)
                return
            # We collected past the promotion target too (and flushed the
            # trail): recovering would need the peer's full DAG; the
            # paper aborts the dependent transactions instead (§6.4).
            dropped = self._pending.pop(response.state_id, [])
            self.dropped += len(dropped)
            return
        # Peer knows nothing: an erroneously placed ceiling collected the
        # state everywhere. Dependent transactions are dropped (the paper
        # aborts transactions that access such states).
        dropped = self._pending.pop(response.state_id, [])
        self.dropped += len(dropped)

    # -- introspection -------------------------------------------------------------

    @property
    def pending_count(self) -> int:
        return sum(len(msgs) for msgs in self._pending.values())
