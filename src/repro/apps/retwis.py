"""Retwis, the paper's Twitter clone (§7.2.2, Figure 14c-d).

Users create accounts, follow each other, post, and read their own
timeline (the 50 most recent posts of their own and followed users).
Posting pushes the new post id onto every follower's timeline — the
main source of contention. Retwis tolerates weak consistency: posts
must not be misattributed and must stay in causal order, but small
visibility delays are fine, which makes it a natural fit for
branch-on-conflict plus a periodic merge that unions timelines.

Two entry points:

* :class:`RetwisApp` — the application proper, over a
  :class:`~repro.core.store.TardisStore` (used by the example and
  tests, including the cross-site merge path);
* :class:`RetwisWorkload` — the closed-loop benchmark driver producing
  dynamic transaction programs for the simulation (runs against TARDiS,
  2PL, and OCC through the common adapters).
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.store import ClientSession, TardisStore
from repro.errors import GarbageCollectedError
from repro.workload.mixes import TxnSpec

TIMELINE_CAP = 50

READ_ONLY = "read-only"
READ_HEAVY = "read-heavy"
POST_HEAVY = "post-heavy"

#: (read, follow, post) fractions per mix (§7.2.2).
MIX_RATIOS = {
    READ_ONLY: (1.0, 0.0, 0.0),
    READ_HEAVY: (0.85, 0.05, 0.10),
    POST_HEAVY: (0.65, 0.05, 0.30),
}


def followers_key(user: str) -> str:
    return "user:%s:followers" % user


def following_key(user: str) -> str:
    return "user:%s:following" % user


def posts_key(user: str) -> str:
    return "user:%s:posts" % user


def timeline_key(user: str) -> str:
    return "timeline:%s" % user


def post_key(post_id: Tuple) -> str:
    return "post:" + ":".join(str(part) for part in post_id)


def _push(timeline: Sequence, post_id: Tuple) -> Tuple:
    """Prepend a post id, newest first, capped at TIMELINE_CAP."""
    return tuple([post_id] + list(timeline))[:TIMELINE_CAP]


def _merge_timelines(branches: List[Sequence]) -> Tuple:
    """Union of branch timelines, newest-first by post id, capped."""
    seen = set()
    merged = []
    for post_id in sorted(
        (pid for branch in branches for pid in branch), reverse=True
    ):
        if post_id not in seen:
            seen.add(post_id)
            merged.append(post_id)
    return tuple(merged[:TIMELINE_CAP])


class RetwisApp:
    """Retwis on TARDiS: unmodified sequential logic plus one resolver."""

    def __init__(self, store: TardisStore):
        self.store = store
        self._post_seq = itertools.count(1)

    def _session(self, user: str) -> ClientSession:
        return self.store.session("retwis:%s" % user)

    def create_account(self, user: str) -> None:
        with self.store.begin(session=self._session(user)) as txn:
            if txn.get(followers_key(user), default=None) is not None:
                raise ValueError("user %r already exists" % user)
            txn.put(followers_key(user), frozenset())
            txn.put(following_key(user), frozenset())
            txn.put(posts_key(user), ())
            txn.put(timeline_key(user), ())

    def follow(self, user: str, target: str) -> None:
        with self.store.begin(session=self._session(user)) as txn:
            txn.put(
                following_key(user),
                txn.get(following_key(user), default=frozenset()) | {target},
            )
            txn.put(
                followers_key(target),
                txn.get(followers_key(target), default=frozenset()) | {user},
            )

    def post(self, user: str, content: str) -> Tuple:
        # The site is part of the id so posts never collide across
        # replicas (ids must be globally unique for timeline merging).
        post_id = (next(self._post_seq), self.store.site, user)
        with self.store.begin(session=self._session(user)) as txn:
            txn.put(post_key(post_id), (user, content))
            txn.put(posts_key(user), _push(txn.get(posts_key(user), default=()), post_id))
            audience = txn.get(followers_key(user), default=frozenset()) | {user}
            for follower in sorted(audience):
                txn.put(
                    timeline_key(follower),
                    _push(txn.get(timeline_key(follower), default=()), post_id),
                )
        return post_id

    def read_own_timeline(self, user: str, limit: int = TIMELINE_CAP) -> List[Tuple[str, str]]:
        """The user's timeline as (author, content) pairs, newest first."""
        txn = self.store.begin(session=self._session(user), read_only=True)
        timeline = txn.get(timeline_key(user), default=())
        posts = [
            txn.get(post_key(pid), default=None) for pid in timeline[:limit]
        ]
        txn.commit()
        return [p for p in posts if p is not None]

    def merge_branches(self) -> int:
        """Reconcile divergent branches; returns resolved key count.

        The paper's Retwis resolver: duplicate posts are deduplicated and
        timelines merged preserving post order (§7.2.2).
        """
        merge = self.store.begin_merge(session=self.store.session("retwis:merger"))
        if len(merge.read_states) < 2:
            merge.abort()
            return 0
        conflicts = merge.find_conflict_writes()
        retwis_merge_resolver(merge, conflicts)
        merge.commit()
        # Clients adopt the merged branch.
        merged_state = self.store.dag.resolve(merge.commit_id)
        for session in self.store.sessions():
            try:
                anchor = session.last_commit_state()
            except GarbageCollectedError:
                continue
            if self.store.dag.descendant_check(anchor, merged_state):
                session.last_commit_id = merge.commit_id
        return len(conflicts)


def retwis_merge_resolver(merge, conflicts) -> None:
    """Merge-mode resolution for every Retwis key family."""
    for key in conflicts:
        branches = merge.get_all(key)
        if not branches:
            continue
        if key.startswith("timeline:") or key.startswith("user:") and key.endswith(":posts"):
            merge.put(key, _merge_timelines(branches))
        elif key.startswith("user:"):
            union = frozenset().union(*branches)
            merge.put(key, union)
        else:
            # Post bodies are immutable; any branch's copy is fine.
            merge.put(key, branches[0])


class RetwisWorkload:
    """Benchmark driver: dynamic transaction programs per Retwis op.

    The follower graph is preloaded with a skewed in-degree (a few
    popular users), which is what makes posting contended. The same
    programs run against every system through the adapters.
    """

    def __init__(
        self,
        mix: str = READ_HEAVY,
        n_users: int = 100,
        follows_per_user: int = 10,
        posts_read: int = 10,
        graph_seed: int = 42,
    ):
        if mix not in MIX_RATIOS:
            raise ValueError("unknown Retwis mix %r" % mix)
        self.mix = mix
        self.n_users = n_users
        self.posts_read = posts_read
        self._users = ["u%04d" % i for i in range(n_users)]
        rng = random.Random(graph_seed)
        self._followers: Dict[str, set] = {u: set() for u in self._users}
        self._following: Dict[str, set] = {u: set() for u in self._users}
        for user in self._users:
            for _ in range(follows_per_user):
                # Quadratic skew: low-index users are popular.
                target = self._users[int(rng.random() ** 2 * n_users)]
                if target != user:
                    self._following[user].add(target)
                    self._followers[target].add(user)
        self._post_seq = itertools.count(1)

    @property
    def preload(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        for user in self._users:
            data[followers_key(user)] = frozenset(self._followers[user])
            data[following_key(user)] = frozenset(self._following[user])
            data[posts_key(user)] = ()
            data[timeline_key(user)] = ()
        return data

    def next_txn(self, rng: random.Random) -> TxnSpec:
        read_frac, follow_frac, _post_frac = MIX_RATIOS[self.mix]
        user = rng.choice(self._users)
        roll = rng.random()
        if roll < read_frac:
            return TxnSpec(
                program=lambda: self._read_timeline_program(user),
                read_only=True,
            )
        if roll < read_frac + follow_frac:
            target = rng.choice(self._users)
            return TxnSpec(
                program=lambda: self._follow_program(user, target),
                write_hint=frozenset(
                    [following_key(user), followers_key(target)]
                ),
            )
        post_id = (next(self._post_seq), user)
        return TxnSpec(
            program=lambda: self._post_program(user, post_id),
            write_hint=frozenset([posts_key(user), post_key(post_id)]),
        )

    def _read_timeline_program(self, user: str):
        timeline = yield ("r", timeline_key(user))
        for post_id in (timeline or ())[: self.posts_read]:
            yield ("r", post_key(post_id))

    def _follow_program(self, user: str, target: str):
        following = yield ("r", following_key(user))
        yield ("w", following_key(user), (following or frozenset()) | {target})
        followers = yield ("r", followers_key(target))
        yield ("w", followers_key(target), (followers or frozenset()) | {user})

    def _post_program(self, user: str, post_id: Tuple):
        yield ("w", post_key(post_id), (user, "content-%s-%s" % post_id))
        posts = yield ("r", posts_key(user))
        yield ("w", posts_key(user), _push(posts or (), post_id))
        followers = yield ("r", followers_key(user))
        for follower in sorted((followers or frozenset()) | {user}):
            timeline = yield ("r", timeline_key(follower))
            yield ("w", timeline_key(follower), _push(timeline or (), post_id))
