"""The online game store of §5.2 (Figure 4).

The store sells board games and extension packs that are only playable
with the corresponding board game. Stock is a counter per item, each
customer has a cart, and each item remembers which carts hold it. Buying
is the unmodified sequential transaction of Figure 4 (left); the merge
transaction (right) reconciles oversold items: counters merge three-way,
and when stock goes negative the application picks which carts keep the
item — here, maximizing overall cart value, with apologies (and
dependent-item removal) for the others.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.store import ClientSession, TardisStore
from repro.errors import GarbageCollectedError, KeyNotFound


def _stock_key(item: str) -> str:
    return "item:%s:stock" % item


def _carts_key(item: str) -> str:
    return "item:%s:carts" % item


def _cart_key(customer: str) -> str:
    return "cart:%s" % customer


def _requires_key(item: str) -> str:
    return "item:%s:requires" % item


def _apology_key(customer: str) -> str:
    return "apology:%s" % customer


class GameStore:
    """Shopping carts over TARDiS with oversell resolution at merge."""

    def __init__(self, store: TardisStore):
        self.store = store

    def _session(self, customer: str) -> ClientSession:
        return self.store.session("shop:%s" % customer)

    # -- catalogue management ------------------------------------------------

    def stock_item(self, item: str, quantity: int, requires: Optional[str] = None) -> None:
        with self.store.begin(session=self.store.session("shop:admin")) as txn:
            txn.put(_stock_key(item), quantity)
            txn.put(_carts_key(item), frozenset())
            txn.put(_requires_key(item), requires)

    # -- the Figure 4 buy transaction -----------------------------------------

    def buy(self, customer: str, item: str) -> bool:
        """Add ``item`` to the cart and decrement stock (one transaction).

        Returns False without buying when the item is out of stock on
        this branch or a required base item is missing from the cart.
        """
        with self.store.begin(session=self._session(customer)) as txn:
            stock = txn.get(_stock_key(item))
            if stock <= 0:
                return False
            required = txn.get(_requires_key(item), default=None)
            cart = txn.get(_cart_key(customer), default=())
            if required is not None and required not in cart:
                return False
            txn.put(_cart_key(customer), tuple(cart) + (item,))
            txn.put(_stock_key(item), stock - 1)
            txn.put(_carts_key(item), txn.get(_carts_key(item)) | {customer})
        return True

    def cart(self, customer: str) -> Tuple[str, ...]:
        return self.store.get(
            _cart_key(customer), default=(), session=self._session(customer)
        )

    def stock(self, item: str) -> int:
        return self.store.get(_stock_key(item), default=0)

    def apologized_to(self, customer: str) -> bool:
        return bool(self.store.get(_apology_key(customer), default=False))

    # -- the Figure 4 merge transaction -----------------------------------------

    def merge(self, cart_value: Optional[Dict[str, int]] = None) -> List[str]:
        """Reconcile branches; returns the customers who lost items.

        For every conflicting item the stock merges three-way from the
        fork point. Items oversold (merged stock < 0) are confirmed for
        the most valuable carts until the fork-point stock runs out; the
        remaining carts lose the item, any items requiring it, and get
        an apology (§5.2).
        """
        store = self.store
        merge = store.begin_merge(session=store.session("shop:merger"))
        if len(merge.read_states) < 2:
            merge.abort()
            return []
        losers: List[str] = []
        conflicts = merge.find_conflict_writes()
        forks = merge.find_fork_points()
        fork = forks[0] if forks else None
        items = sorted(
            {key.split(":")[1] for key in conflicts if key.startswith("item:")}
        )
        carts: Dict[str, Tuple[str, ...]] = {}

        def cart_of(customer: str) -> Tuple[str, ...]:
            if customer not in carts:
                values = merge.get_all(_cart_key(customer))
                flat: Tuple[str, ...] = ()
                for branch in values:
                    if len(branch) > len(flat):
                        flat = tuple(branch)
                carts[customer] = flat
            return carts[customer]

        for item in items:
            fork_stock = (
                merge.get_for_id(_stock_key(item), fork, default=0) if fork else 0
            )
            stocks = merge.get_all(_stock_key(item))
            new_stock = fork_stock + sum(s - fork_stock for s in stocks)
            holders: set = set()
            for branch_holders in merge.get_all(_carts_key(item)):
                holders |= set(branch_holders)
            if new_stock >= 0:
                merge.put(_stock_key(item), new_stock)
                merge.put(_carts_key(item), frozenset(holders))
                continue
            # Oversold: orders since the fork point, best carts first.
            fork_holders = (
                merge.get_for_id(_carts_key(item), fork, default=frozenset())
                if fork
                else frozenset()
            )
            contested = sorted(
                holders - fork_holders,
                key=lambda c: (cart_value or {}).get(c, len(cart_of(c))),
                reverse=True,
            )
            budget = fork_stock
            kept = set(fork_holders)
            for customer in contested:
                if budget > 0:
                    budget -= 1
                    kept.add(customer)
                    continue
                losers.append(customer)
                self._strip(merge, customer, item)
            merge.put(_stock_key(item), 0)
            merge.put(_carts_key(item), frozenset(kept))

        # Non-item conflicts (carts themselves): keep the longest branch
        # value unless the oversell pass already rewrote it.
        for key in conflicts:
            if key.startswith("cart:") and key not in merge.writes:
                merge.put(key, cart_of(key.split(":", 1)[1]))
        merge.commit()
        for session in store.sessions():
            try:
                anchor = session.last_commit_state()
            except GarbageCollectedError:
                continue
            if store.dag.descendant_check(anchor, store.dag.resolve(merge.commit_id)):
                session.last_commit_id = merge.commit_id
        return losers

    def _strip(self, merge, customer: str, item: str) -> None:
        """Remove ``item`` and everything requiring it from the cart."""
        values = merge.get_all(_cart_key(customer))
        cart: Tuple[str, ...] = ()
        for branch in values:
            if len(branch) > len(cart):
                cart = tuple(branch)
        removed = {item}
        changed = True
        while changed:
            changed = False
            for other in cart:
                if other in removed:
                    continue
                requirement = merge.get(_requires_key(other), default=None)
                if requirement in removed:
                    removed.add(other)
                    changed = True
        merge.put(_cart_key(customer), tuple(i for i in cart if i not in removed))
        merge.put(_apology_key(customer), True)
