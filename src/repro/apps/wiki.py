"""The weakly-consistent Wikipedia scenario of §2 (Figure 1).

A page about the controversial Mr. Banditoni consists of three objects —
content, references, image — replicated at two sites. Alice (site A) and
Bruno (site B) write conflicting content; Carlo and Davide then read
their local site's content and update the references and image *to
match* it. Nothing violates causal consistency, yet once the sites
exchange operations the page is incoherent: the content has a
write-write conflict, and the references and image disagree purely
semantically (no conflict on either key!).

On TARDiS the two editing sessions are two branches. The conflict
tracker reports only ``content`` as conflicting, but the branches carry
the *context*: a moderator reads each branch as a coherent page and
resolves the whole page atomically in one merge transaction — exactly
the capability §2 argues per-object resolution cannot offer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.store import TardisStore
from repro.replication import Cluster


@dataclass
class PageVersion:
    """A coherent snapshot of the page on one branch."""

    content: str
    references: str
    image: str

    def coherent(self) -> bool:
        """All three objects argue the same side."""
        sides = {side_of(self.content), side_of(self.references), side_of(self.image)}
        sides.discard("neutral")
        return len(sides) <= 1


def side_of(text: str) -> str:
    if "pro" in text:
        return "pro"
    if "anti" in text:
        return "anti"
    return "neutral"


class WikiPage:
    """The three-object page over one TARDiS site."""

    def __init__(self, store: TardisStore, page: str = "banditoni"):
        self.store = store
        self.page = page

    def _key(self, part: str) -> str:
        return "wiki:%s:%s" % (self.page, part)

    def initialize(self, content: str, references: str, image: str) -> None:
        with self.store.begin(session=self.store.session("wiki:init")) as txn:
            txn.put(self._key("content"), content)
            txn.put(self._key("references"), references)
            txn.put(self._key("image"), image)

    def edit(self, editor: str, part: str, new_text: str) -> None:
        with self.store.begin(session=self.store.session("wiki:%s" % editor)) as txn:
            txn.get(self._key(part))  # read-modify-write
            txn.put(self._key(part), new_text)

    def edit_to_match_content(self, editor: str, part: str, make_text) -> None:
        """Read the content, update ``part`` to agree with it (Carlo/Davide)."""
        with self.store.begin(session=self.store.session("wiki:%s" % editor)) as txn:
            content = txn.get(self._key("content"))
            txn.put(self._key(part), make_text(content))

    def read(self, reader: str = "reader") -> PageVersion:
        txn = self.store.begin(
            session=self.store.session("wiki:%s" % reader), read_only=True
        )
        page = PageVersion(
            content=txn.get(self._key("content")),
            references=txn.get(self._key("references")),
            image=txn.get(self._key("image")),
        )
        txn.commit()
        return page

    def branch_versions(self) -> List[PageVersion]:
        """One coherent page snapshot per current branch."""
        merge = self.store.begin_merge(session=self.store.session("wiki:inspect"))
        versions = []
        for head in merge.parents:
            versions.append(
                PageVersion(
                    content=merge.get_for_id(self._key("content"), head),
                    references=merge.get_for_id(self._key("references"), head),
                    image=merge.get_for_id(self._key("image"), head),
                )
            )
        merge.abort()
        return versions

    def moderate(self, choose) -> PageVersion:
        """Atomically resolve the whole page: ``choose(versions)`` picks
        (or constructs) the winning PageVersion (the moderator role)."""
        merge = self.store.begin_merge(session=self.store.session("wiki:moderator"))
        versions = []
        for head in merge.parents:
            versions.append(
                PageVersion(
                    content=merge.get_for_id(self._key("content"), head),
                    references=merge.get_for_id(self._key("references"), head),
                    image=merge.get_for_id(self._key("image"), head),
                )
            )
        resolved = choose(versions)
        merge.put(self._key("content"), resolved.content)
        merge.put(self._key("references"), resolved.references)
        merge.put(self._key("image"), resolved.image)
        merge.commit()
        return resolved


def run_banditoni_scenario(
    latency_ms: float = 20.0,
) -> Dict[str, object]:
    """Replay Figure 1 end to end on a two-site cluster.

    Returns the incoherent naive view (deterministic-writer-wins style
    flattening), the per-branch coherent views, and the moderated result.
    """
    cluster = Cluster(sites=["A", "B"], default_latency_ms=latency_ms)
    site_a, site_b = cluster.stores["A"], cluster.stores["B"]
    page_a, page_b = WikiPage(site_a), WikiPage(site_b)

    page_a.initialize("neutral stub", "neutral refs", "neutral portrait")
    cluster.run(until=latency_ms * 4)

    # (b) Alice and Bruno edit the content concurrently.
    page_a.edit("alice", "content", "pro-banditoni manifesto")
    page_b.edit("bruno", "content", "anti-banditoni expose")
    # (c) Carlo and Davide align references / image with what they read.
    page_a.edit_to_match_content(
        "carlo", "references", lambda c: "%s references" % side_of(c)
    )
    page_b.edit_to_match_content(
        "davide", "image", lambda c: "%s caricature" % side_of(c)
    )
    # (d) Operations reach the other site.
    cluster.run(until=latency_ms * 20)

    branches = page_a.branch_versions()
    # The "syntactic flattening" a DWW store would produce: newest value
    # per object, regardless of branch.
    merge = site_a.begin_merge(session=site_a.session("wiki:naive"))
    naive = PageVersion(
        content=max(
            (
                (sid, v)
                for sid, v in site_a._read_candidates(
                    "wiki:banditoni:content", merge.read_states, merge.trace
                )
            ),
        )[1],
        references=merge.get_all("wiki:banditoni:references")[0],
        image=merge.get_all("wiki:banditoni:image")[0],
    )
    merge.abort()

    moderated = page_a.moderate(lambda versions: max(versions, key=lambda v: v.content))
    cluster.run(until=latency_ms * 40)
    return {
        "branches": branches,
        "naive": naive,
        "moderated": moderated,
        "converged": cluster.converged("wiki:banditoni:content"),
        "cluster": cluster,
    }
