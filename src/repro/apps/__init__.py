"""ALPS applications from the paper (§2, §5.2, §7.2.2).

* :mod:`repro.apps.retwis` — the Twitter clone used for Figure 14(c,d):
  accounts, follows, posts pushed to follower timelines, and the
  branch-merge resolver that reconciles timelines.
* :mod:`repro.apps.shopping` — the §5.2 online game store: carts,
  stock counters, oversell resolution at merge time (Figure 4).
* :mod:`repro.apps.wiki` — the §2 weakly-consistent Wikipedia scenario
  (Figure 1): the write-skew anomaly and its branch-based resolution.
"""

from repro.apps.retwis import RetwisApp, RetwisWorkload, retwis_merge_resolver
from repro.apps.shopping import GameStore
from repro.apps.wiki import WikiPage, run_banditoni_scenario

__all__ = [
    "RetwisApp",
    "RetwisWorkload",
    "retwis_merge_resolver",
    "GameStore",
    "WikiPage",
    "run_banditoni_scenario",
]
