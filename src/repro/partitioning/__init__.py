"""Data partitioning within a datacenter (the §6.4 extension).

The paper's prototype stores a full copy of the database at every site
but sketches the extension: "executing distributed transactions within
a datacenter (with the State DAG collocated with the transaction
manager) and replicating transactions asynchronously across
datacenters", following COPS.

This package implements that sketch. A :class:`PartitionedStore` is one
datacenter: a single transaction manager owns the consistency layer
(State DAG, constraint engine, sessions — unchanged), while records are
hash-partitioned across N shards, each with its own key-version mapping
and record B-tree. Transactions therefore span shards but serialize
their begin/commit decisions through the collocated DAG, exactly as the
paper proposes; cross-datacenter replication is unchanged (the
replicator speaks state ids, not shards).
"""

from repro.partitioning.sharded import ShardedRecordStore, PartitionedStore

__all__ = ["ShardedRecordStore", "PartitionedStore"]
