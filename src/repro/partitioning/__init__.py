"""Data partitioning within a datacenter (the §6.4 extension).

The paper's prototype stores a full copy of the database at every site
but sketches the extension: "executing distributed transactions within
a datacenter (with the State DAG collocated with the transaction
manager) and replicating transactions asynchronously across
datacenters", following COPS.

This package implements that sketch at three levels behind one
interface. A :class:`ShardRouter` (consistent-hash ring with virtual
nodes) decides key placement; a :class:`ShardedRecordStore` fans record
operations out to N in-process shards; a
:class:`ProcShardedRecordStore` moves those shards into worker
processes, batching requests over pipes so version walks run outside
the coordinator's GIL. A :class:`PartitionedStore` is one datacenter: a
single transaction manager owns the consistency layer (State DAG,
constraint engine, sessions — unchanged), while records are partitioned
across the shards. Transactions therefore span shards but serialize
their begin/commit decisions through the collocated DAG, exactly as the
paper proposes; cross-datacenter replication is unchanged (the
replicator speaks state ids, not shards).

Importing this package registers the ``"sharded"`` and
``"proc-sharded"`` record stores with the engine registry, making
``engine="proc-sharded"`` a drop-in spec anywhere a store accepts an
engine name (``TardisStore``, ``tardis serve``, the sim adapters).
"""

from typing import Any, Optional

from repro.partitioning.router import (
    ShardRouter,
    default_shard_of,
    legacy_shard_of,
    stable_key_bytes,
)
from repro.partitioning.sharded import (
    PartitionedStore,
    ShardedRecordStore,
    StagedShardCommit,
)
from repro.partitioning.workers import ProcShardedRecordStore
from repro.storage.engine import register_record_store

__all__ = [
    "ShardRouter",
    "ShardedRecordStore",
    "ProcShardedRecordStore",
    "PartitionedStore",
    "StagedShardCommit",
    "default_shard_of",
    "legacy_shard_of",
    "stable_key_bytes",
]


def _make_sharded(
    engine: Any = None,
    btree_degree: int = 16,
    seed: Optional[int] = 0,
    cache: bool = True,
    shards: Optional[int] = None,
    shard_of: Any = None,
    **_: Any,
) -> ShardedRecordStore:
    return ShardedRecordStore(
        n_shards=shards or 4,
        btree_degree=btree_degree,
        seed=seed,
        shard_of=shard_of,
        cache=cache,
        engine=engine,
    )


def _make_proc_sharded(
    engine: Any = None,
    btree_degree: int = 16,
    seed: Optional[int] = 0,
    cache: bool = True,
    shards: Optional[int] = None,
    shard_workers: Optional[int] = None,
    shard_of: Any = None,
    worker_timeout: Optional[float] = None,
    **_: Any,
) -> ProcShardedRecordStore:
    workers = shard_workers or 4
    options: dict = {}
    if worker_timeout is not None:
        options["timeout"] = worker_timeout
    return ProcShardedRecordStore(
        n_shards=shards or workers,
        n_workers=workers,
        btree_degree=btree_degree,
        seed=seed,
        shard_of=shard_of,
        cache=cache,
        engine=engine,
        **options,
    )


register_record_store("sharded", _make_sharded, overwrite=True)
register_record_store("proc-sharded", _make_proc_sharded, overwrite=True)
