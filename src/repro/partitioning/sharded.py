"""Sharded record storage and the partitioned datacenter store (§6.4).

``ShardedRecordStore`` exposes the same interface as
:class:`~repro.core.versions.VersionedRecordStore` but routes every key
through a :class:`~repro.partitioning.router.ShardRouter` to one of N
shards; each shard keeps its own key-version skip lists and record
engine, as separate storage nodes would. The process-level variant
(:class:`~repro.partitioning.workers.ProcShardedRecordStore`) speaks
the same interface over worker pipes.

Both sharded stores add the *staged commit* contract the
:class:`~repro.core.commit.CommitPipeline` drives:

* ``prepare_commit(writes)`` groups the write set into per-shard
  batches (ascending shard order, the router's ``plan`` order) and
  validates every target shard *before* the DAG state exists;
* ``install_commit(staged, state)`` inserts the record versions once
  the state is installed;
* ``abandon_commit(staged)`` releases a prepared batch when the commit
  cannot proceed.

``PartitionedStore`` is a drop-in :class:`~repro.core.store.TardisStore`
whose storage layer is sharded. All consistency decisions (read-state
selection, commit rippling, branching, merging, GC marking) happen at
the transaction manager where the State DAG lives; only record reads,
writes, and pruning fan out to shards. Per-shard access counters are
exported as the ``tardis_shard_access_total`` metric (one ``@s<i>``
series per shard) so the data distribution is observable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.state_dag import State, StateDAG
from repro.core.store import TardisStore
from repro.core.versions import VersionedRecordStore
from repro.obs import metrics as _met
from repro.partitioning.router import (
    ShardRouter,
    default_shard_of,
    legacy_shard_of,
)

__all__ = [
    "default_shard_of",
    "legacy_shard_of",
    "StagedShardCommit",
    "ShardedRecordStore",
    "PartitionedStore",
]


class StagedShardCommit:
    """A write set grouped into per-shard batches, ready to install.

    ``plan`` is ``[(shard_index, [(key, value), ...]), ...]`` in
    ascending shard order; ``token`` identifies the staged buffers at
    process-level workers (unused by the in-process store).
    """

    __slots__ = ("plan", "token")

    def __init__(self, plan: List[Tuple[int, List[Tuple[Any, Any]]]], token: int = 0):
        self.plan = plan
        self.token = token

    @property
    def n_shards(self) -> int:
        """Number of distinct shards the commit touches."""
        return len(self.plan)


class ShardedRecordStore:
    """N independent record stores behind the VersionedRecordStore API."""

    # Guarded by the owning TardisStore's ``_lock`` (the store treats
    # the sharded record store exactly like a flat one); enforced
    # dynamically by the lockset checker, not the static rule.
    _GUARDED_BY = {
        "accesses": "external:TardisStore._lock",
    }

    def __init__(
        self,
        n_shards: int = 4,
        btree_degree: int = 16,
        seed: Optional[int] = 0,
        shard_of=None,
        cache: bool = True,
        engine: Any = None,
        replicas: int = 128,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self.router = ShardRouter(n_shards, replicas=replicas, shard_of=shard_of)
        self.cache_enabled = cache
        self._btree_degree = btree_degree
        self._seed = seed
        self._engine = engine
        self.shards: List[VersionedRecordStore] = [
            self._make_shard(i) for i in range(n_shards)
        ]
        #: per-shard operation counters (reads + writes), for balance
        #: inspection and the simulation's shard-RPC accounting.
        self.accesses: List[int] = [0] * n_shards
        #: hot per-shard metric counters, re-resolved when the default
        #: registry changes identity (benchmark harnesses swap it).
        self._hot_registry = None
        self._hot_access: List[Any] = []

    def _make_shard(self, index: int) -> VersionedRecordStore:
        return VersionedRecordStore(
            btree_degree=self._btree_degree,
            seed=None if self._seed is None else self._seed + 1000 * index,
            cache=self.cache_enabled,
            engine=self._engine,
        )

    def shard_index(self, key: Any) -> int:
        return self.router.shard_of(key)

    def _note_access(self, index: int, count: int = 1) -> None:
        self.accesses[index] += count
        m = _met.DEFAULT
        if not m.enabled:
            return
        if self._hot_registry is not m:
            self._hot_registry = m
            self._hot_access = [
                m.counter("tardis_shard_access_total@s%d" % i)
                for i in range(self.n_shards)
            ]
        self._hot_access[index].inc(count)

    def _shard(self, key: Any) -> VersionedRecordStore:
        index = self.shard_index(key)
        self._note_access(index)
        return self.shards[index]

    # -- VersionedRecordStore interface ------------------------------------

    def write(self, key: Any, state_id, value: Any) -> None:
        self._shard(key).write(key, state_id, value)

    def read_visible(
        self, key, read_state: State, dag: StateDAG, scanned=None, hits=None
    ):
        return self._shard(key).read_visible(key, read_state, dag, scanned, hits)

    def read_visible_many(
        self, keys, read_state: State, dag: StateDAG, scanned=None, hits=None
    ) -> List[Optional[Tuple[Any, Any]]]:
        """Batched :meth:`read_visible`; results align with ``keys``.

        The in-process store gains nothing from batching (same walks,
        same interpreter) — the method exists so callers can hand whole
        read sets to the storage layer and let the process-level store
        scatter them across workers in parallel.
        """
        return [
            self.read_visible(key, read_state, dag, scanned, hits) for key in keys
        ]

    def read_candidates(
        self, key, read_states, dag: StateDAG, scanned=None, hits=None
    ):
        return self._shard(key).read_candidates(
            key, read_states, dag, scanned, hits
        )

    def cache_info(self):
        """Aggregate visibility-cache stats across all shards."""
        totals = {"enabled": self.cache_enabled, "size": 0, "hits": 0,
                  "misses": 0, "invalidations": 0}
        for shard in self.shards:
            info = shard.cache_info()
            for field in ("size", "hits", "misses", "invalidations"):
                totals[field] += info[field]
        return totals

    # -- staged commits (driven by the CommitPipeline) ---------------------

    def prepare_commit(self, writes: Dict[Any, Any]) -> StagedShardCommit:
        """Group ``writes`` into the deterministic per-shard plan.

        In-process shards cannot fail independently, so preparation is
        pure planning; the process-level store overrides this with real
        staging and liveness checks.
        """
        batches: Dict[int, List[Tuple[Any, Any]]] = {}
        for key, value in writes.items():
            batches.setdefault(self.shard_index(key), []).append((key, value))
        return StagedShardCommit(sorted(batches.items()))

    def install_commit(self, staged: StagedShardCommit, state: State) -> None:
        """Insert the staged record versions, ascending shard order."""
        for shard_index, items in staged.plan:
            shard = self.shards[shard_index]
            self._note_access(shard_index, len(items))
            for key, value in items:
                shard.write(key, state.id, value)

    def abandon_commit(self, staged: StagedShardCommit) -> None:
        """Release a prepared commit that will not install (no-op here)."""

    # -- maintenance -------------------------------------------------------

    def promote_and_prune(self, dag: StateDAG) -> Tuple[int, int]:
        promoted = dropped = 0
        for shard in self.shards:
            p, d = shard.promote_and_prune(dag)
            promoted += p
            dropped += d
        return promoted, dropped

    def num_records(self) -> int:
        return sum(s.num_records() for s in self.shards)

    def num_keys(self) -> int:
        return sum(s.num_keys() for s in self.shards)

    def num_versions(self, key: Any) -> int:
        return self.shards[self.shard_index(key)].num_versions(key)

    def keys(self) -> Iterator[Any]:
        for shard in self.shards:
            yield from shard.keys()

    def versions_of(self, key: Any) -> List:
        return self.shards[self.shard_index(key)].versions_of(key)

    def items_at(self, state: State, dag: StateDAG):
        for shard in self.shards:
            yield from shard.items_at(state, dag)

    @property
    def records(self):
        """Record lookup across shards (read-only facade)."""
        return _ShardedRecords(self)

    # -- distribution introspection ----------------------------------------

    def balance(self) -> List[int]:
        """Records per shard."""
        return [s.num_records() for s in self.shards]

    def rebalance(self, n_shards: int) -> List[Tuple[Any, int, int]]:
        """Re-shard in place to ``n_shards`` (offline migration helper).

        Uses the router's :meth:`~ShardRouter.migration_plan` to find
        keys whose owner changes, then moves each key's whole version
        list and records to the new shard. Returns the executed plan.
        The caller must hold the store lock and quiesce transactions —
        this is the maintenance-window path, not an online migration.
        """
        target = self.router.rebalanced(n_shards)
        all_keys = list(self.keys())
        plan = self.router.migration_plan(all_keys, target)
        while len(self.shards) < n_shards:
            self.shards.append(self._make_shard(len(self.shards)))
            self.accesses.append(0)
        for key, old, new in plan:
            source, dest = self.shards[old], self.shards[new]
            for state_id in source.versions_of(key):
                dest.write(key, state_id, source.records.get((key, state_id)))
                source.records.remove((key, state_id))
            source._versions.pop(key, None)
        if len(self.shards) > n_shards:
            for shard in self.shards[n_shards:]:
                if shard.num_records():
                    raise ValueError("shrink left records behind")
            del self.shards[n_shards:]
            del self.accesses[n_shards:]
        self.n_shards = n_shards
        self.router = target
        self._hot_registry = None  # per-shard counter list changed shape
        return plan


class _ShardedRecords:
    """Facade matching the BTree ``get``/``__len__`` used by peers/fetch."""

    def __init__(self, store: ShardedRecordStore):
        self._store = store

    def get(self, composite_key, default=None):
        key, _sid = composite_key
        shard = self._store.shards[self._store.shard_index(key)]
        return shard.records.get(composite_key, default)

    def __len__(self) -> int:
        return self._store.num_records()


class PartitionedStore(TardisStore):
    """One datacenter: a transaction manager over N record shards.

    ``shard_workers`` selects the process-level plane (each worker owns
    ``n_shards / workers`` shards in its own interpreter); without it
    the shards live in-process. Either way the DAG, sessions, and
    constraint logic stay here, at the transaction manager.
    """

    def __init__(
        self,
        site: str,
        n_shards: int = 4,
        shard_of=None,
        shard_workers: Optional[int] = None,
        **kwargs,
    ):
        kwargs.setdefault(
            "engine", "proc-sharded" if shard_workers else "sharded"
        )
        kwargs.setdefault("btree_degree", 16)
        kwargs.setdefault("seed", 0)
        super().__init__(
            site,
            shards=n_shards,
            shard_workers=shard_workers,
            shard_of=shard_of,
            **kwargs,
        )

    @property
    def n_shards(self) -> int:
        return self.versions.n_shards

    def shard_balance(self) -> List[int]:
        return self.versions.balance()

    def shard_accesses(self) -> List[int]:
        return list(self.versions.accesses)

    def __repr__(self) -> str:
        return "<PartitionedStore site=%s shards=%d states=%d records=%d>" % (
            self.site,
            self.n_shards,
            len(self.dag),
            self.versions.num_records(),
        )
