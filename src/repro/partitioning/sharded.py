"""Sharded record storage and the partitioned datacenter store (§6.4).

``ShardedRecordStore`` exposes the same interface as
:class:`~repro.core.versions.VersionedRecordStore` but routes every key
to one of N shards by stable hash; each shard keeps its own key-version
skip lists and record B-tree, as separate storage nodes would.

``PartitionedStore`` is a drop-in :class:`~repro.core.store.TardisStore`
whose storage layer is sharded. All consistency decisions (read-state
selection, commit rippling, branching, merging, GC marking) happen at
the transaction manager where the State DAG lives; only record reads,
writes, and pruning fan out to shards. Per-shard access counters make
the data distribution observable.
"""

from __future__ import annotations

import zlib
from typing import Any, Iterator, List, Optional, Tuple

from repro.core.state_dag import State, StateDAG
from repro.core.store import TardisStore
from repro.core.versions import VersionedRecordStore


def default_shard_of(key: Any, n_shards: int) -> int:
    """Stable hash partitioning (CRC32 of the key's repr)."""
    return zlib.crc32(repr(key).encode()) % n_shards


class ShardedRecordStore:
    """N independent record stores behind the VersionedRecordStore API."""

    # Guarded by the owning TardisStore's ``_lock`` (the store treats
    # the sharded record store exactly like a flat one); enforced
    # dynamically by the lockset checker, not the static rule.
    _GUARDED_BY = {
        "accesses": "external:TardisStore._lock",
    }

    def __init__(
        self,
        n_shards: int = 4,
        btree_degree: int = 16,
        seed: Optional[int] = 0,
        shard_of=None,
        cache: bool = True,
    ):
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self._shard_of = shard_of or default_shard_of
        self.cache_enabled = cache
        self.shards: List[VersionedRecordStore] = [
            VersionedRecordStore(
                btree_degree=btree_degree,
                seed=None if seed is None else seed + 1000 * i,
                cache=cache,
            )
            for i in range(n_shards)
        ]
        #: per-shard operation counters (reads + writes), for balance
        #: inspection and the simulation's shard-RPC accounting.
        self.accesses: List[int] = [0] * n_shards

    def shard_index(self, key: Any) -> int:
        return self._shard_of(key, self.n_shards)

    def _shard(self, key: Any) -> VersionedRecordStore:
        index = self.shard_index(key)
        self.accesses[index] += 1
        return self.shards[index]

    # -- VersionedRecordStore interface ------------------------------------

    def write(self, key: Any, state_id, value: Any) -> None:
        self._shard(key).write(key, state_id, value)

    def read_visible(
        self, key, read_state: State, dag: StateDAG, scanned=None, hits=None
    ):
        return self._shard(key).read_visible(key, read_state, dag, scanned, hits)

    def read_candidates(
        self, key, read_states, dag: StateDAG, scanned=None, hits=None
    ):
        return self._shard(key).read_candidates(
            key, read_states, dag, scanned, hits
        )

    def cache_info(self):
        """Aggregate visibility-cache stats across all shards."""
        totals = {"enabled": self.cache_enabled, "size": 0, "hits": 0,
                  "misses": 0, "invalidations": 0}
        for shard in self.shards:
            info = shard.cache_info()
            for field in ("size", "hits", "misses", "invalidations"):
                totals[field] += info[field]
        return totals

    def promote_and_prune(self, dag: StateDAG) -> Tuple[int, int]:
        promoted = dropped = 0
        for shard in self.shards:
            p, d = shard.promote_and_prune(dag)
            promoted += p
            dropped += d
        return promoted, dropped

    def num_records(self) -> int:
        return sum(s.num_records() for s in self.shards)

    def num_keys(self) -> int:
        return sum(s.num_keys() for s in self.shards)

    def num_versions(self, key: Any) -> int:
        return self.shards[self.shard_index(key)].num_versions(key)

    def keys(self) -> Iterator[Any]:
        for shard in self.shards:
            yield from shard.keys()

    def versions_of(self, key: Any) -> List:
        return self.shards[self.shard_index(key)].versions_of(key)

    def items_at(self, state: State, dag: StateDAG):
        for shard in self.shards:
            yield from shard.items_at(state, dag)

    @property
    def records(self):
        """Record lookup across shards (read-only facade)."""
        return _ShardedRecords(self)

    # -- distribution introspection ----------------------------------------

    def balance(self) -> List[int]:
        """Records per shard."""
        return [s.num_records() for s in self.shards]


class _ShardedRecords:
    """Facade matching the BTree ``get``/``__len__`` used by peers/fetch."""

    def __init__(self, store: ShardedRecordStore):
        self._store = store

    def get(self, composite_key, default=None):
        key, _sid = composite_key
        shard = self._store.shards[self._store.shard_index(key)]
        return shard.records.get(composite_key, default)

    def __len__(self) -> int:
        return self._store.num_records()


class PartitionedStore(TardisStore):
    """One datacenter: a transaction manager over N record shards."""

    def __init__(
        self,
        site: str,
        n_shards: int = 4,
        shard_of=None,
        **kwargs,
    ):
        btree_degree = kwargs.pop("btree_degree", 16)
        seed = kwargs.pop("seed", 0)
        super().__init__(site, btree_degree=btree_degree, seed=seed, **kwargs)
        # Replace the monolithic storage layer with the sharded one; the
        # consistency layer (DAG, constraints, sessions) is untouched.
        # The commit pipeline must be repointed too — it holds the
        # version-store reference used for write installation.
        self.versions = ShardedRecordStore(
            n_shards=n_shards,
            btree_degree=btree_degree,
            seed=seed,
            shard_of=shard_of,
            cache=self.read_cache,
        )
        self.pipeline.versions = self.versions

    @property
    def n_shards(self) -> int:
        return self.versions.n_shards

    def shard_balance(self) -> List[int]:
        return self.versions.balance()

    def shard_accesses(self) -> List[int]:
        return list(self.versions.accesses)

    def __repr__(self) -> str:
        return "<PartitionedStore site=%s shards=%d states=%d records=%d>" % (
            self.site,
            self.n_shards,
            len(self.dag),
            self.versions.num_records(),
        )
