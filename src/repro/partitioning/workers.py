"""Process-level shard workers: the ``proc-sharded`` storage plane.

The in-process :class:`~repro.partitioning.sharded.ShardedRecordStore`
shards keys but still runs every version walk under one GIL. This
module moves the shards into worker *processes*: N workers, each
holding the record shards it owns (one
:class:`~repro.core.versions.VersionedRecordStore` per shard, so a
worker can own several shards — the partial-replication shape), driven
over duplex pipes with batched request/response messages.

The hard part is that a shard worker must answer visibility questions
— *is version state x an ancestor of read state y?* — without holding
the State DAG, which lives (and mutates) in the coordinator. The
worker keeps a :class:`_ShardDagView`: a mask table mapping every
version state id it stores to its resolved ``(live_id, path_mask)``
pair, enough to run Figure 7's ``descendant_check`` and the promotion
logic verbatim against the real ``VersionedRecordStore`` code. The
coordinator owns keeping that table honest:

* every write/install ships the committing state's ``(id, mask)``;
* every read carries the read state's ``(id, mask)`` inline;
* when the DAG's ``(destructive_gen, retro_updates)`` fingerprint
  moves (GC splice-out, fork retirement, retroactive mask widening),
  the coordinator re-resolves every id it ever shipped to that worker
  and sends the delta — plus a destructive bump so the worker's
  visibility cache drops, mirroring the flat store's epoch rule.

Failure model: a dead or unresponsive worker surfaces as
:class:`~repro.errors.ShardUnavailableError` on reads and turns a
commit into a typed :class:`~repro.errors.CrossShardAbort` *before*
the DAG state is created (the CommitPipeline prepares shard batches
first), so a worker crash never leaves a committed-looking state whose
writes were lost. Multi-shard commits stage their batches on every
target worker in ascending shard order, then install with the state id
once the DAG accepted the commit; single-shard commits skip staging
and install in one hop.
"""

from __future__ import annotations

import itertools
import multiprocessing
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.core.state_dag import State, StateDAG
from repro.core.versions import VersionedRecordStore
from repro.errors import GarbageCollectedError, ShardError, ShardUnavailableError
from repro.obs import metrics as _met
from repro.partitioning.router import ShardRouter
from repro.partitioning.sharded import StagedShardCommit

__all__ = ["ProcShardedRecordStore"]

#: default seconds to wait for one worker reply before declaring the
#: worker dead (covers scheduling noise; real replies are sub-ms).
WORKER_TIMEOUT = 30.0


class _StateView:
    """The two fields of a State that visibility checks consume."""

    __slots__ = ("id", "path_mask")

    def __init__(self, state_id, path_mask):
        self.id = state_id
        self.path_mask = path_mask


class _ShardDagView:
    """The worker-side stand-in for the coordinator's StateDAG.

    Implements exactly the surface ``VersionedRecordStore`` touches:
    ``resolve`` (promotion-aware, raising
    :class:`~repro.errors.GarbageCollectedError` for dropped ids),
    ``descendant_check`` (Figure 7 mask-subset test), and the
    destructive generation that gates the visibility cache.
    """

    __slots__ = ("destructive_gen", "table")

    def __init__(self):
        self.destructive_gen = 0
        #: state id -> (live_id, path_mask) | None (GC'd without heir).
        self.table: Dict[Any, Optional[Tuple[Any, int]]] = {}

    def apply_sync(self, masks, bump) -> None:
        self.table.update(masks)
        if bump:
            self.destructive_gen += 1

    def resolve(self, state_id) -> _StateView:
        entry = self.table.get(state_id)
        if entry is None:
            raise GarbageCollectedError(state_id)
        return _StateView(entry[0], entry[1])

    def descendant_check(self, x, y) -> bool:
        if x.id == y.id:
            return True
        if x.id > y.id:
            return False
        x_mask = x.path_mask
        return x_mask & y.path_mask == x_mask

    def mark_destructive(self) -> None:
        self.destructive_gen += 1


def _dispatch(stores, view, staged, cmd):
    """Execute one command tuple against this worker's shard stores."""
    op = cmd[0]
    if op == "read_many":
        _, shard, keys, rid, rmask = cmd
        read_state = _StateView(rid, rmask)
        scanned, hits = [0], [0]
        store = stores[shard]
        results = [
            store.read_visible(key, read_state, view, scanned, hits)
            for key in keys
        ]
        return results, scanned[0], hits[0]
    if op == "write":
        _, shard, items, sid = cmd
        store = stores[shard]
        for key, value in items:
            store.write(key, sid, value)
        return len(items)
    if op == "stage":
        _, shard, token, items = cmd
        staged[(shard, token)] = items
        return True
    if op == "install":
        _, shard, token, sid = cmd
        store = stores[shard]
        for key, value in staged.pop((shard, token)):
            store.write(key, sid, value)
        return True
    if op == "abandon":
        _, shard, token = cmd
        staged.pop((shard, token), None)
        return True
    if op == "read_candidates":
        _, shard, key, states = cmd
        views = [_StateView(sid, mask) for sid, mask in states]
        scanned, hits = [0], [0]
        result = stores[shard].read_candidates(key, views, view, scanned, hits)
        return result, scanned[0], hits[0]
    if op == "promote":
        promoted = dropped = 0
        for store in stores.values():
            p, d = store.promote_and_prune(view)
            promoted += p
            dropped += d
        return promoted, dropped
    if op == "items_at":
        _, shard, sid, mask = cmd
        return list(stores[shard].items_at(_StateView(sid, mask), view))
    if op == "num_versions":
        return stores[cmd[1]].num_versions(cmd[2])
    if op == "versions_of":
        return stores[cmd[1]].versions_of(cmd[2])
    if op == "keys":
        return list(stores[cmd[1]].keys())
    if op == "record_get":
        _, shard, composite, default = cmd
        return stores[shard].records.get(composite, default)
    if op == "stats":
        _, shard = cmd
        store = stores[shard]
        return {
            "records": store.num_records(),
            "keys": store.num_keys(),
            "cache": store.cache_info(),
        }
    if op == "ping":
        return "pong"
    raise ValueError("unknown shard worker op %r" % (op,))


def shard_worker_main(conn, spec) -> None:
    """Entry point of one shard worker process.

    ``spec`` carries the shards this worker owns and the per-shard
    engine options; everything must survive pickling through the spawn
    start method, so engines are named, never instances. The loop
    applies the piggybacked mask sync, runs the command batch, and
    replies ``(batch_id, ok, payload)``; any exception is marshalled
    back for the coordinator to re-raise typed, because a worker that
    dies on a bad command would turn one poisoned request into a whole
    dead shard.
    """
    view = _ShardDagView()
    stores: Dict[int, VersionedRecordStore] = {}
    seed = spec["seed"]
    for shard in spec["shards"]:
        stores[shard] = VersionedRecordStore(
            btree_degree=spec["btree_degree"],
            seed=None if seed is None else seed + 1000 * shard,
            cache=spec["cache"],
            engine=spec["engine"],
        )
    staged: Dict[Tuple[int, int], List[Tuple[Any, Any]]] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:  # graceful shutdown sentinel
            break
        batch_id, sync, cmds = message
        if sync is not None:
            view.apply_sync(sync[0], sync[1])
        ok = True
        payload: Any
        try:
            payload = [_dispatch(stores, view, staged, cmd) for cmd in cmds]
        except GarbageCollectedError as exc:
            ok, payload = False, ("gc", exc.state_id)
        # Marshalled and re-raised typed by the coordinator's collect();
        # swallowing here keeps the shard alive across a poisoned request.
        except Exception as exc:  # tardis: ignore[bare-except]
            ok, payload = False, ("error", "%s: %s" % (type(exc).__name__, exc))
        try:
            conn.send((batch_id, ok, payload))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _WorkerHandle:
    """Coordinator-side endpoint of one worker: pipe + liveness state.

    Requests and replies travel strictly in order on the duplex pipe;
    ``request`` sends, ``collect`` receives the oldest outstanding
    reply — the split is what lets scatter/gather sends go out to every
    worker before any reply is awaited.
    """

    __slots__ = ("index", "shards", "process", "conn", "alive", "_inflight")

    # The handle is only ever driven by the coordinator, which itself
    # runs under the owning TardisStore's lock — liveness flag and the
    # in-order outstanding-batch queue included. Enforced dynamically by
    # the lockset checker; the lock-order rule sees the guard too.
    _GUARDED_BY = {
        "alive": "external:TardisStore._lock",
        "_inflight": "external:TardisStore._lock",
    }

    def __init__(self, index, shards, process, conn):
        self.index = index
        self.shards = shards
        self.process = process
        self.conn = conn
        self.alive = True
        self._inflight: List[int] = []

    def check_alive(self) -> None:
        if not self.alive or not self.process.is_alive():
            self.alive = False
            raise ShardUnavailableError(self.index, "worker process is dead")

    def request(self, batch_id, sync, cmds) -> None:
        self.check_alive()
        try:
            self.conn.send((batch_id, sync, cmds))
        except (BrokenPipeError, OSError) as exc:
            self.alive = False
            raise ShardUnavailableError(self.index, "send failed: %s" % exc)
        self._inflight.append(batch_id)

    def collect(self, timeout):
        batch_id = self._inflight.pop(0)
        try:
            if not self.conn.poll(timeout):
                self.alive = False
                raise ShardUnavailableError(
                    self.index, "no reply within %.1fs" % timeout
                )
            reply = self.conn.recv()
        except (EOFError, OSError) as exc:
            self.alive = False
            raise ShardUnavailableError(self.index, "worker died: %s" % exc)
        reply_id, ok, payload = reply
        if reply_id != batch_id:
            self.alive = False
            raise ShardUnavailableError(
                self.index, "protocol desync (%r != %r)" % (reply_id, batch_id)
            )
        if not ok:
            kind, detail = payload
            if kind == "gc":
                raise GarbageCollectedError(detail)
            raise ShardError("worker %d: %s" % (self.index, detail))
        return payload

    def shutdown(self, timeout=2.0) -> bool:
        """Graceful stop; returns True when the process exited in time."""
        if self.process.is_alive() and self.alive:
            try:
                self.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        self.process.join(timeout)
        graceful = not self.process.is_alive()
        if not graceful:
            self.process.terminate()
            self.process.join(1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(1.0)
        self.conn.close()
        self.alive = False
        return graceful

    def kill(self) -> None:
        """Hard-kill the worker (fault injection for tests)."""
        self.process.kill()
        self.process.join(2.0)
        self.alive = False


class ProcShardedRecordStore:
    """N record shards spread over worker processes, one pipe each.

    Speaks the same interface as
    :class:`~repro.partitioning.sharded.ShardedRecordStore` (reads,
    staged commits, promotion, introspection) so
    ``engine="proc-sharded"`` is a drop-in at the store layer. With
    ``n_shards > n_workers`` worker ``w`` owns shards ``{i : i %
    n_workers == w}`` — the partial-replication shape where one
    process serves several logical shards.

    Every method runs under the owning TardisStore's lock (external
    guard below); the pipes themselves are single-owner so there is no
    coordinator-side concurrency to manage beyond that.
    """

    # Guarded by the owning TardisStore's ``_lock``, like the flat and
    # in-process sharded stores; enforced dynamically by the lockset
    # checker, not the static rule.
    _GUARDED_BY = {
        "accesses": "external:TardisStore._lock",
        "_handles": "external:TardisStore._lock",
        "_shipped": "external:TardisStore._lock",
        "_fingerprint": "external:TardisStore._lock",
        "_batch_ids": "external:TardisStore._lock",
        "_tokens": "external:TardisStore._lock",
        "_dag": "external:TardisStore._lock",
        "leaked_workers": "external:TardisStore._lock",
        "_closed": "external:TardisStore._lock",
        "_hot_registry": "external:TardisStore._lock",
        "_hot_access": "external:TardisStore._lock",
    }

    def __init__(
        self,
        n_shards: int = 4,
        n_workers: Optional[int] = None,
        btree_degree: int = 16,
        seed: Optional[int] = 0,
        shard_of=None,
        cache: bool = True,
        engine: Any = None,
        replicas: int = 128,
        timeout: float = WORKER_TIMEOUT,
        start_method: str = "spawn",
    ):
        if n_workers is None:
            n_workers = n_shards
        if n_shards < 1 or n_workers < 1:
            raise ValueError("need at least one shard and one worker")
        if n_workers > n_shards:
            raise ValueError(
                "%d workers for %d shards: a worker must own at least one shard"
                % (n_workers, n_shards)
            )
        if engine is not None and not isinstance(engine, str):
            raise ValueError(
                "proc-sharded workers need a *named* engine (instances "
                "cannot cross the process boundary): %r" % (engine,)
            )
        self.n_shards = n_shards
        self.n_workers = n_workers
        self.router = ShardRouter(n_shards, replicas=replicas, shard_of=shard_of)
        self.cache_enabled = cache
        self.timeout = timeout
        self.accesses: List[int] = [0] * n_shards
        self._hot_registry = None
        self._hot_access: List[Any] = []
        #: DAG bound by the owning store (bind_dag); mask syncs and
        #: commit installs resolve against it.
        self._dag: Optional[StateDAG] = None
        #: per worker: {state_id: (live_id, mask) | None} as last shipped.
        self._shipped: List[Dict[Any, Optional[Tuple[Any, int]]]] = [
            {} for _ in range(n_workers)
        ]
        #: per worker: (destructive_gen, retro_updates) at the last sync.
        self._fingerprint: List[Tuple[int, int]] = [(0, 0)] * n_workers
        self._batch_ids = itertools.count(1)
        self._tokens = itertools.count(1)
        ctx = multiprocessing.get_context(start_method)
        self._handles: List[_WorkerHandle] = []
        for worker in range(n_workers):
            owned = [s for s in range(n_shards) if s % n_workers == worker]
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            spec = {
                "shards": owned,
                "btree_degree": btree_degree,
                "seed": seed,
                "cache": cache,
                "engine": engine or "btree",
            }
            process = ctx.Process(
                target=shard_worker_main,
                args=(child_conn, spec),
                name="tardis-shard-%d" % worker,
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._handles.append(
                _WorkerHandle(worker, owned, process, parent_conn)
            )
        self._closed = False
        self.leaked_workers = 0

    # -- routing helpers ---------------------------------------------------

    def bind_dag(self, dag: StateDAG) -> None:
        """Attach the coordinator's DAG (mask-sync source of truth)."""
        self._dag = dag

    def shard_index(self, key: Any) -> int:
        return self.router.shard_of(key)

    def worker_of(self, shard: int) -> _WorkerHandle:
        return self._handles[shard % self.n_workers]

    def _note_access(self, index: int, count: int = 1) -> None:
        self.accesses[index] += count
        m = _met.DEFAULT
        if not m.enabled:
            return
        if self._hot_registry is not m:
            self._hot_registry = m
            self._hot_access = [
                m.counter("tardis_shard_access_total@s%d" % i)
                for i in range(self.n_shards)
            ]
        self._hot_access[index].inc(count)

    # -- mask synchronization ----------------------------------------------

    def _sync_for(self, handle: _WorkerHandle, extra=None):
        """The piggyback sync payload for one outbound batch, or None.

        ``extra`` maps state ids the batch itself introduces (the
        committing state) to their ``(live_id, mask)`` entries. The
        expensive part — re-resolving every shipped id — only runs when
        the DAG's destructive/retro fingerprint moved since the last
        batch to this worker, which happens at GC/fork-retire/retro
        rates, not per commit.
        """
        dag = self._dag
        shipped = self._shipped[handle.index]
        masks: Dict[Any, Optional[Tuple[Any, int]]] = {}
        bump = False
        if dag is not None:
            fingerprint = (dag.destructive_gen, dag.retro_updates)
            if self._fingerprint[handle.index] != fingerprint:
                bump = (
                    dag.destructive_gen
                    != self._fingerprint[handle.index][0]
                )
                for sid in list(shipped):
                    try:
                        live = dag.resolve(sid)
                        entry = (live.id, live.path_mask)
                    except GarbageCollectedError:
                        entry = None
                    if shipped[sid] != entry:
                        shipped[sid] = entry
                        masks[sid] = entry
                self._fingerprint[handle.index] = fingerprint
        if extra:
            for sid, entry in extra.items():
                if shipped.get(sid, False) != entry:
                    shipped[sid] = entry
                    masks[sid] = entry
        if not masks and not bump:
            return None
        return (masks, bump)

    def _call(self, shard: int, cmd, extra=None):
        """One command to one shard's worker, synchronously."""
        handle = self.worker_of(shard)
        batch_id = next(self._batch_ids)
        handle.request(batch_id, self._sync_for(handle, extra), [cmd])
        return handle.collect(self.timeout)[0]

    # -- VersionedRecordStore interface ------------------------------------

    def write(self, key: Any, state_id, value: Any) -> None:
        """Single-version install (recovery/replication replay path)."""
        shard = self.shard_index(key)
        self._note_access(shard)
        extra = self._state_entry(state_id)
        self._call(shard, ("write", shard, [(key, value)], state_id), extra)

    def _state_entry(self, state_id):
        dag = self._dag
        if dag is None:
            return None
        try:
            live = dag.resolve(state_id)
        except GarbageCollectedError:
            return {state_id: None}
        return {state_id: (live.id, live.path_mask)}

    def read_visible(
        self, key, read_state: State, dag: StateDAG, scanned=None, hits=None
    ):
        shard = self.shard_index(key)
        self._note_access(shard)
        results, n_scanned, n_hits = self._call(
            shard,
            ("read_many", shard, [key], read_state.id, read_state.path_mask),
        )
        if scanned is not None:
            scanned[0] += n_scanned
        if hits is not None:
            hits[0] += n_hits
        return results[0]

    def read_visible_many(
        self, keys, read_state: State, dag: StateDAG, scanned=None, hits=None
    ) -> List[Optional[Tuple[Any, Any]]]:
        """Scatter a read batch across workers, gather in send order.

        This is the parallel read path: every involved worker walks its
        shards' version lists concurrently in its own interpreter while
        the coordinator waits, so a batch over W workers costs roughly
        1/W of the in-process walk time plus one round trip.
        """
        keys = list(keys)
        out: List[Any] = [None] * len(keys)
        per_shard: Dict[int, Tuple[List[int], List[Any]]] = {}
        for position, key in enumerate(keys):
            shard = self.shard_index(key)
            positions, batch = per_shard.setdefault(shard, ([], []))
            positions.append(position)
            batch.append(key)
        per_worker: Dict[int, List[int]] = {}
        for shard in sorted(per_shard):
            self._note_access(shard, len(per_shard[shard][1]))
            per_worker.setdefault(shard % self.n_workers, []).append(shard)
        sends = []
        for worker_index in sorted(per_worker):
            handle = self._handles[worker_index]
            shards = per_worker[worker_index]
            cmds = [
                (
                    "read_many",
                    shard,
                    per_shard[shard][1],
                    read_state.id,
                    read_state.path_mask,
                )
                for shard in shards
            ]
            batch_id = next(self._batch_ids)
            handle.request(batch_id, self._sync_for(handle), cmds)
            sends.append((handle, shards))
        for handle, shards in sends:
            payload = handle.collect(self.timeout)
            for shard, (results, n_scanned, n_hits) in zip(shards, payload):
                positions = per_shard[shard][0]
                for position, hit in zip(positions, results):
                    out[position] = hit
                if scanned is not None:
                    scanned[0] += n_scanned
                if hits is not None:
                    hits[0] += n_hits
        return out

    def read_candidates(
        self, key, read_states, dag: StateDAG, scanned=None, hits=None
    ):
        shard = self.shard_index(key)
        self._note_access(shard)
        states = [(state.id, state.path_mask) for state in read_states]
        result, n_scanned, n_hits = self._call(
            shard, ("read_candidates", shard, key, states)
        )
        if scanned is not None:
            scanned[0] += n_scanned
        if hits is not None:
            hits[0] += n_hits
        return result

    # -- staged commits (driven by the CommitPipeline) ---------------------

    def prepare_commit(self, writes: Dict[Any, Any]) -> StagedShardCommit:
        """Plan, liveness-check, and (multi-shard) stage the write set.

        Runs *before* the DAG state exists. Single-shard commits only
        verify the worker is alive — the write itself goes out in one
        hop at install time. Multi-shard commits ship each per-shard
        batch to its worker as a staged buffer, in ascending shard
        order; a failure abandons every already-staged buffer and
        raises, leaving nothing installed anywhere.
        """
        batches: Dict[int, List[Tuple[Any, Any]]] = {}
        for key, value in writes.items():
            batches.setdefault(self.shard_index(key), []).append((key, value))
        plan = sorted(batches.items())
        staged = StagedShardCommit(plan, token=next(self._tokens))
        if len(plan) <= 1:
            for shard_index, _items in plan:
                self.worker_of(shard_index).check_alive()
            return staged
        staged_shards: List[int] = []
        try:
            for shard_index, items in plan:
                self._call(
                    shard_index, ("stage", shard_index, staged.token, items)
                )
                staged_shards.append(shard_index)
        except (ShardError, ShardUnavailableError):
            for shard_index in staged_shards:
                try:
                    self._call(
                        shard_index, ("abandon", shard_index, staged.token)
                    )
                except (ShardError, ShardUnavailableError):
                    pass  # that worker is gone; its buffer died with it
            raise
        return staged

    def install_commit(self, staged: StagedShardCommit, state: State) -> None:
        """Install the prepared batches under the committed state id.

        Single-shard: one combined write message (the one-hop fast
        path). Multi-shard: an install message per staged buffer, in
        the same ascending shard order as prepare. A worker death in
        this window (after the DAG accepted the state) marks the shard
        unavailable and raises; the shard was already lost, and every
        subsequent operation touching it fails the same way.
        """
        extra = {state.id: (state.id, state.path_mask)}
        if staged.n_shards == 1:
            shard_index, items = staged.plan[0]
            self._note_access(shard_index, len(items))
            self._call(
                shard_index, ("write", shard_index, items, state.id), extra
            )
            return
        sends = []
        for shard_index, items in staged.plan:
            self._note_access(shard_index, len(items))
            handle = self.worker_of(shard_index)
            batch_id = next(self._batch_ids)
            handle.request(
                batch_id,
                self._sync_for(handle, extra),
                [("install", shard_index, staged.token, state.id)],
            )
            sends.append(handle)
        for handle in sends:
            handle.collect(self.timeout)

    def abandon_commit(self, staged: StagedShardCommit) -> None:
        """Drop staged buffers for a commit that will not install."""
        if staged.n_shards <= 1:
            return
        for shard_index, _items in staged.plan:
            try:
                self._call(shard_index, ("abandon", shard_index, staged.token))
            except (ShardError, ShardUnavailableError):
                pass

    # -- maintenance -------------------------------------------------------

    def promote_and_prune(self, dag: StateDAG) -> Tuple[int, int]:
        """Run record promotion on every worker (its own walk, §6.3)."""
        promoted = dropped = 0
        for handle in self._handles:
            batch_id = next(self._batch_ids)
            handle.request(batch_id, self._sync_for(handle), [("promote",)])
            p, d = handle.collect(self.timeout)[0]
            promoted += p
            dropped += d
        if promoted or dropped:
            # Workers bumped their own view epochs inside promote; this
            # bump keeps the coordinator DAG's watermark in step (the
            # flat store does the same after rewriting version lists).
            dag.mark_destructive()
        return promoted, dropped

    def cache_info(self):
        totals = {"enabled": self.cache_enabled, "size": 0, "hits": 0,
                  "misses": 0, "invalidations": 0}
        for shard in range(self.n_shards):
            info = self._call(shard, ("stats", shard))["cache"]
            for field in ("size", "hits", "misses", "invalidations"):
                totals[field] += info[field]
        return totals

    def num_records(self) -> int:
        return sum(
            self._call(shard, ("stats", shard))["records"]
            for shard in range(self.n_shards)
        )

    def num_keys(self) -> int:
        return sum(
            self._call(shard, ("stats", shard))["keys"]
            for shard in range(self.n_shards)
        )

    def num_versions(self, key: Any) -> int:
        shard = self.shard_index(key)
        return self._call(shard, ("num_versions", shard, key))

    def keys(self):
        for shard in range(self.n_shards):
            yield from self._call(shard, ("keys", shard))

    def versions_of(self, key: Any) -> List:
        shard = self.shard_index(key)
        return self._call(shard, ("versions_of", shard, key))

    def items_at(self, state: State, dag: StateDAG):
        for shard in range(self.n_shards):
            yield from self._call(
                shard, ("items_at", shard, state.id, state.path_mask)
            )

    @property
    def records(self):
        return _ProcShardedRecords(self)

    def balance(self) -> List[int]:
        return [
            self._call(shard, ("stats", shard))["records"]
            for shard in range(self.n_shards)
        ]

    # -- lifecycle ---------------------------------------------------------

    def workers_alive(self) -> int:
        return sum(1 for handle in self._handles if handle.process.is_alive())

    def worker_health(self, ping: bool = True, ping_timeout: float = 1.0) -> List[Dict[str, Any]]:
        """Per-worker liveness and coordinator-side queue depth.

        The cheap live-health probe the obs sampler polls: process
        liveness plus ``queue_depth`` (batches sent, reply not yet
        collected — nonzero only mid scatter/gather). With ``ping=True``
        each idle live worker also answers one ``ping`` round trip,
        timed as ``ping_ms``, so a wedged-but-running process shows up
        dead instead of healthy. Runs under the owning store's lock like
        every other coordinator method; a failed ping marks the handle
        dead but never raises.
        """
        out: List[Dict[str, Any]] = []
        for handle in self._handles:
            alive = handle.alive and handle.process.is_alive()
            entry: Dict[str, Any] = {
                "worker": handle.index,
                "shards": list(handle.shards),
                "alive": bool(alive),
                "queue_depth": len(handle._inflight),
                "pid": handle.process.pid,
            }
            if ping and alive and not handle._inflight:
                started = time.perf_counter()
                try:
                    handle.request(next(self._batch_ids), None, [("ping",)])
                    handle.collect(ping_timeout)
                    entry["ping_ms"] = (time.perf_counter() - started) * 1000.0
                except (ShardError, ShardUnavailableError):
                    entry["alive"] = False
            out.append(entry)
        return out

    def kill_worker(self, worker_index: int) -> None:
        """Fault injection: hard-kill one worker (tests, chaos runs)."""
        self._handles[worker_index].kill()

    def close(self) -> int:
        """Stop every worker; returns how many had to be force-killed.

        Idempotent. A worker that exits on the shutdown sentinel within
        its grace period is a clean stop; anything still running after
        that is terminated and counted in ``leaked_workers`` — the
        number the serve report and the CI smoke gate watch.
        """
        if self._closed:
            return self.leaked_workers
        self._closed = True
        leaked = 0
        for handle in self._handles:
            was_alive = handle.process.is_alive()
            graceful = handle.shutdown()
            if was_alive and not graceful:
                leaked += 1
        self.leaked_workers = leaked
        return leaked


class _ProcShardedRecords:
    """Record-lookup facade over the workers (peers/fetch path)."""

    def __init__(self, store: ProcShardedRecordStore):
        self._store = store

    def get(self, composite_key, default=None):
        key, _sid = composite_key
        shard = self._store.shard_index(key)
        return self._store._call(
            shard, ("record_get", shard, composite_key, default)
        )

    def __len__(self) -> int:
        return self._store.num_records()
