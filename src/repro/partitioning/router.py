"""Shard routing: stable key serialization and the consistent-hash ring.

The shard plane needs one answer, fast and forever stable: *which shard
owns this key?* Two layers provide it:

* :func:`stable_key_bytes` — a type-tagged serialization of a record
  key whose bytes are identical for keys that compare equal. The old
  router hashed ``repr(key)``, and reprs drift across equal-but-distinct
  spellings: ``5``, ``5.0`` and ``True`` are *one* dict key in Python
  (they compare equal and hash equal) yet repr to three different
  strings, so a write to ``5`` landed on a different shard than a read
  of ``5.0``. The stable form normalizes equal numbers to one tag and
  prefixes every type so ``"5"`` (a string) still routes independently
  of ``5`` (a number). :func:`legacy_shard_of` keeps the old behaviour
  as a compat shim for fixtures pinned to the historical placement.

* :class:`ShardRouter` — a consistent-hash ring with virtual nodes.
  Each shard owns ``replicas`` pseudo-random points on a 32-bit ring; a
  key belongs to the first shard point at or after its own hash
  (wrapping). Virtual nodes smooth the distribution and give the
  rebalance property the modulo hash lacks: growing from N to N+1
  shards moves only ~1/(N+1) of the keyspace instead of nearly all of
  it. :meth:`ShardRouter.plan` groups a key batch into per-shard op
  batches in ascending shard order — the deterministic order every
  multi-shard operation (cross-shard commit prepare/install, scatter
  reads) uses, so two coordinators can never stage the same pair of
  shards in opposite orders.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "stable_key_bytes",
    "stable_shard_of",
    "default_shard_of",
    "legacy_shard_of",
    "ShardRouter",
]


def stable_key_bytes(key: Any) -> bytes:
    """Type-tagged bytes for ``key``, identical for equal keys.

    Numbers that compare equal (``5``, ``5.0``, ``True``) map to one
    serialization because they are one dict key; every other type gets
    its own tag so cross-type repr collisions cannot alias shards.
    Tuples serialize element-wise (composite keys route stably); other
    types fall back to ``repr`` — callers using exotic key types with a
    repr that varies between equal values should pass their own
    ``shard_of``.
    """
    if key is None:
        return b"n:"
    if isinstance(key, (bool, int, float)):
        if isinstance(key, float) and not key.is_integer():
            return b"f:" + repr(key).encode("ascii")
        return b"i:%d" % int(key)
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    if isinstance(key, (bytes, bytearray)):
        return b"b:" + bytes(key)
    if isinstance(key, tuple):
        parts = b",".join(stable_key_bytes(item) for item in key)
        return b"t:%d:" % len(key) + parts
    return b"o:" + repr(key).encode("utf-8", "backslashreplace")


def stable_shard_of(key: Any, n_shards: int) -> int:
    """Modulo partitioning over the stable key hash."""
    return zlib.crc32(stable_key_bytes(key)) % n_shards


#: the default key-to-shard function (stable serialization; see module
#: docstring for why repr-based hashing was wrong).
default_shard_of = stable_shard_of


def legacy_shard_of(key: Any, n_shards: int) -> int:
    """Compat shim: the historical ``repr``-based CRC32 partitioning.

    Only for fixtures pinned to the old placement; new code must not
    use it (equal-but-distinct keys drift, module docstring).
    """
    return zlib.crc32(repr(key).encode()) % n_shards


def _ring_points(n_shards: int, replicas: int) -> Tuple[List[int], List[int]]:
    ring: List[Tuple[int, int]] = []
    for shard in range(n_shards):
        for vnode in range(replicas):
            ring.append((zlib.crc32(b"vn:%d:%d" % (shard, vnode)), shard))
    ring.sort()
    return [point for point, _ in ring], [shard for _, shard in ring]


class ShardRouter:
    """Key-to-shard placement: consistent-hash ring with virtual nodes.

    ``shard_of`` overrides the ring with a custom ``(key, n_shards) ->
    index`` function (tests and workloads that want an exact placement).
    The ring itself is a pure function of ``(n_shards, replicas)`` —
    no instance state feeds it — so every router with the same shape
    agrees on placement, including across processes.
    """

    __slots__ = ("n_shards", "replicas", "_shard_of", "_points", "_owners")

    def __init__(
        self,
        n_shards: int,
        replicas: int = 128,
        shard_of: Optional[Callable[[Any, int], int]] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if replicas < 1:
            raise ValueError("need at least one virtual node per shard")
        self.n_shards = n_shards
        self.replicas = replicas
        self._shard_of = shard_of
        self._points: List[int] = []
        self._owners: List[int] = []
        if shard_of is None:
            self._points, self._owners = _ring_points(n_shards, replicas)

    def shard_of(self, key: Any) -> int:
        """The shard index owning ``key``."""
        if self._shard_of is not None:
            return self._shard_of(key, self.n_shards)
        point = zlib.crc32(stable_key_bytes(key))
        index = bisect.bisect_left(self._points, point)
        if index == len(self._points):
            index = 0  # wrap past the highest vnode
        return self._owners[index]

    def plan(self, keys: Iterable[Any]) -> Dict[int, List[Any]]:
        """Group ``keys`` into per-shard batches, ascending shard order.

        The returned dict's iteration order *is* the deterministic
        multi-shard operation order (ascending shard index); within a
        batch, keys keep their input order.
        """
        batches: Dict[int, List[Any]] = {}
        for key in keys:
            batches.setdefault(self.shard_of(key), []).append(key)
        return dict(sorted(batches.items()))

    # -- rebalance / migration hooks ------------------------------------

    def rebalanced(self, n_shards: int) -> "ShardRouter":
        """A router for a grown/shrunk shard count on the same ring."""
        return ShardRouter(
            n_shards, replicas=self.replicas, shard_of=self._shard_of
        )

    def migration_plan(
        self, keys: Iterable[Any], target: "ShardRouter"
    ) -> List[Tuple[Any, int, int]]:
        """Keys whose owner changes under ``target``.

        Returns ``(key, old_shard, new_shard)`` triples sorted by
        ``(old_shard, new_shard)`` — the per-source-shard batch order a
        migration executor drains them in. With the ring, resizing
        N -> N+1 moves ~1/(N+1) of the keys; a custom ``shard_of``
        moves whatever that function says.
        """
        moves = []
        for key in keys:
            old = self.shard_of(key)
            new = target.shard_of(key)
            if old != new:
                moves.append((key, old, new))
        moves.sort(key=lambda move: (move[1], move[2]))
        return moves

    def __repr__(self) -> str:
        return "<ShardRouter shards=%d replicas=%d custom=%s>" % (
            self.n_shards,
            self.replicas,
            self._shard_of is not None,
        )
