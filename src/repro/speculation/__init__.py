"""Speculative execution on branches (the paper's §9 future work).

The paper closes: "we believe that TARDiS' ability to efficiently
distinguish between concurrent threads of execution makes it a strong
candidate for concurrency control systems based on speculation."

This package prototypes that idea. A site executes client transactions
*immediately* on a speculative branch instead of waiting a wide-area
round-trip for the global commit order; when the confirmed order
arrives, speculation either stands (the common case — the branch is
promoted to the confirmed trunk) or is abandoned and replayed on top of
the confirmed prefix (misspeculation). Branches make both outcomes
cheap: no rollback machinery, no locks held across the WAN, and readers
can choose between confirmed-only and speculative views at any time.
"""

from repro.speculation.executor import SpeculativeExecutor, Speculation

__all__ = ["SpeculativeExecutor", "Speculation"]
