"""Speculation over TARDiS branches (§9 future work prototype).

Model: a geo-replicated system where the *global* serialization order of
update transactions is decided elsewhere (a sequencer, a consensus
group) and arrives at each site with wide-area delay. Waiting for it
before answering clients costs an RTT per transaction; executing
immediately risks having speculated against the wrong prefix.

With TARDiS, the site executes client transactions at once on a
**speculative branch** anchored at the last *confirmed* state. When a
batch of the confirmed order arrives:

* if none of the confirmed remote transactions conflict with the
  pending speculation (write sets vs speculative read sets), the remote
  transactions are applied and the speculative branch is merged over
  them — speculation stands, and the client latency was ~0 instead of
  an RTT;
* otherwise the speculative branch is abandoned (it is just a branch —
  nothing to roll back) and the speculated transactions re-execute on
  top of the new confirmed prefix, in order.

Readers choose their consistency: ``read_confirmed`` sees only the
confirmed trunk; ``read_speculative`` sees the freshest (speculative)
values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.constraints import (
    AncestorConstraint,
    SerializabilityConstraint,
    StateIdConstraint,
)
from repro.core.store import TardisStore
from repro.errors import TransactionAborted
from repro.obs import metrics as _met
from repro.obs import tracing as _trc

PENDING = "pending"
CONFIRMED = "confirmed"
REEXECUTED = "re-executed"
FAILED = "failed"


@dataclass
class Speculation:
    """One speculatively executed client transaction."""

    ticket: int
    program: Callable
    status: str = PENDING
    result: Any = None
    commit_id: Any = None
    read_keys: frozenset = frozenset()
    write_keys: frozenset = frozenset()
    executions: int = 1
    #: the exception that failed the program, when status == "failed".
    error: Optional[BaseException] = None


@dataclass
class RemoteTxn:
    """One transaction of the confirmed global order."""

    writes: Dict[Any, Any]
    read_keys: Tuple = ()


class SpeculativeExecutor:
    """Executes client programs speculatively; reconciles with the
    confirmed global order as it arrives."""

    def __init__(self, store: Optional[TardisStore] = None):
        self.store = store or TardisStore("spec")
        self._confirmed_session = self.store.session("spec:confirmed")
        self._spec_session = self.store.session("spec:speculative")
        self._confirmed_tip = self.store.dag.root.id
        self._spec_tip = self.store.dag.root.id
        self._pending: List[Speculation] = []
        self._tickets = 0
        self.misspeculations = 0
        self.confirmed_count = 0
        self.reexecutions = 0

    # -- client side ---------------------------------------------------------

    def submit(self, program: Callable) -> Speculation:
        """Execute ``program(txn)`` now, on the speculative branch.

        The returned :class:`Speculation` carries the program's result
        computed against the speculative state; its ``status`` moves to
        ``confirmed`` or ``re-executed`` once the global order covers it.
        """
        self._tickets += 1
        spec = Speculation(ticket=self._tickets, program=program)
        self._execute(spec, self._spec_session, anchor=self._spec_tip)
        self._spec_tip = spec.commit_id or self._spec_tip
        self._pending.append(spec)
        m = _met.DEFAULT
        if m.enabled:
            m.inc("tardis_spec_submit_total")
        return spec

    def _execute(self, spec: Speculation, session, anchor) -> None:
        txn = self.store.begin(
            StateIdConstraint([anchor]), session=session
        )
        try:
            spec.result = spec.program(txn)
        except Exception as exc:  # tardis: ignore[bare-except]
            # API contract (pinned by tests/test_speculation.py): a
            # program exception fails *this* speculation, future-style,
            # instead of unwinding the pipeline. The exception is kept
            # on the speculation rather than swallowed.
            txn.abort()
            spec.status = FAILED
            spec.error = exc
            return
        spec.read_keys = frozenset(txn.read_keys)
        spec.write_keys = frozenset(txn.writes)
        try:
            spec.commit_id = txn.commit(SerializabilityConstraint())
        except TransactionAborted:  # pragma: no cover - Ser from fresh tip
            spec.status = FAILED

    # -- reads -----------------------------------------------------------------

    def read_confirmed(self, key: Any, default: Any = None) -> Any:
        state = self.store.dag.resolve(self._confirmed_tip)
        hit = self.store.versions.read_visible(key, state, self.store.dag)
        return default if hit is None else hit[1]

    def read_speculative(self, key: Any, default: Any = None) -> Any:
        state = self.store.dag.resolve(self._spec_tip)
        hit = self.store.versions.read_visible(key, state, self.store.dag)
        return default if hit is None else hit[1]

    @property
    def pending(self) -> List[Speculation]:
        return [s for s in self._pending if s.status == PENDING]

    # -- the confirmed order arrives ----------------------------------------------

    def deliver_confirmed(self, remote_txns: List[RemoteTxn]) -> bool:
        """Apply a batch of the confirmed global order.

        Returns True when the pending speculation survived, False on a
        misspeculation (pending transactions were replayed).
        """
        pending = self.pending
        conflict = any(
            set(remote.writes) & (spec.read_keys | spec.write_keys)
            for remote in remote_txns
            for spec in pending
        )
        # Extend the confirmed trunk with the remote transactions.
        tip = self._confirmed_tip
        for remote in remote_txns:
            txn = self.store.begin(
                StateIdConstraint([tip]), session=self._confirmed_session
            )
            for key, value in remote.writes.items():
                txn.put(key, value)
            tip = txn.commit(SerializabilityConstraint())
        self._confirmed_tip = tip

        if not pending:
            self._spec_tip = self._confirmed_tip
            return True

        if not conflict:
            # Speculation stands: fold the speculative branch over the
            # confirmed trunk with one merge (speculative values win the
            # keys they wrote; they conflict with nothing by the check).
            if remote_txns:
                merge = self.store.begin_merge(
                    session=self._spec_session,
                    states=[self._confirmed_tip, self._spec_tip],
                )
                for spec in pending:
                    for key in spec.write_keys:
                        hit = self.store.versions.read_visible(
                            key,
                            self.store.dag.resolve(self._spec_tip),
                            self.store.dag,
                        )
                        if hit is not None:
                            merge.put(key, hit[1])
                merged_id = merge.commit()
                self._confirmed_tip = merged_id
                self._spec_tip = merged_id
            else:
                self._confirmed_tip = self._spec_tip
            for spec in pending:
                spec.status = CONFIRMED
                self.confirmed_count += 1
            self._pending = []
            m = _met.DEFAULT
            if m.enabled:
                m.inc("tardis_spec_confirm_total", len(pending))
            t = _trc.DEFAULT
            if t.enabled:
                t.event("spec.confirm", tickets=tuple(s.ticket for s in pending))
            return True

        # Misspeculation: abandon the branch, replay in ticket order on
        # the new confirmed prefix.
        self.misspeculations += 1
        m = _met.DEFAULT
        if m.enabled:
            m.inc("tardis_spec_misspec_total")
            m.inc("tardis_spec_reexec_total", len(pending))
        t = _trc.DEFAULT
        if t.enabled:
            t.event("spec.misspeculate", tickets=tuple(s.ticket for s in pending))
        self._spec_tip = self._confirmed_tip
        for spec in pending:
            spec.executions += 1
            self.reexecutions += 1
            self._execute(spec, self._spec_session, anchor=self._spec_tip)
            if spec.status != FAILED:
                self._spec_tip = spec.commit_id
                spec.status = REEXECUTED
        self._confirmed_tip = self._spec_tip
        self._pending = []
        return False

    # -- housekeeping -----------------------------------------------------------

    def collect_abandoned(self) -> int:
        """Garbage-collect abandoned speculative branches."""
        self._confirmed_session.last_commit_id = self._confirmed_tip
        self._confirmed_session.place_ceiling()
        stats = self.store.collect_garbage()
        return stats.states_removed
