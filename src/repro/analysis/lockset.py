"""Eraser-style dynamic lockset checker (``pytest -m lockset``).

The static ``lock-discipline`` rule can only see guards spelled
``self.<lock>``; fields guarded by an *owner's* lock (``_GUARDED_BY``
values like ``"external:TardisStore._lock"``) or by single-threaded
execution are invisible to it. This module checks those at runtime with
the classic lockset algorithm (Savage et al., "Eraser", SOSP 1997):

* every watched field carries a state machine
  ``VIRGIN -> EXCLUSIVE -> SHARED -> SHARED_MODIFIED``;
* from the second accessing thread on, the field's *candidate lockset*
  is intersected with the locks the accessing thread currently holds;
* a write observed in ``SHARED_MODIFIED`` with an empty candidate
  lockset is a race — no single lock consistently protected the field.

Unlike a stress test, this reports the race even when the interleaving
happens to be benign on this run: it needs only *one* unlocked access
from a second thread, which makes the planted-race test in
``tests/test_analysis.py`` deterministic.

Usage::

    checker = LocksetChecker()
    lock = checker.wrap_lock(threading.Lock(), name="store._lock")
    checker.watch(obj, "counter", "table")
    ... run threads ...
    checker.findings  # list of engine.Finding-shaped race reports

or, to intercept every lock created inside a block::

    with checker.install():
        store = TardisStore()
        ...

Counters ``tardis_lockset_tracked_total`` / ``tardis_lockset_races_total``
go to the obs registry so a lockset CI run leaves a machine-readable
trail alongside the JSON lint report.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import SEVERITY_ERROR, Finding
from repro.obs import metrics as _met

__all__ = ["LocksetChecker", "TrackedLock", "FieldState"]

# Field state machine (Eraser §3).
VIRGIN = "virgin"
EXCLUSIVE = "exclusive"
SHARED = "shared"
SHARED_MODIFIED = "shared-modified"


class TrackedLock:
    """Wrap a ``threading.Lock``/``RLock`` so the checker knows, per
    thread, which locks are held. RLock reentrancy is counted so the
    lock stays "held" until the outermost release."""

    def __init__(self, inner: Any, checker: "LocksetChecker", name: str):
        self._inner = inner
        self._checker = checker
        self.name = name

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = self._inner.acquire(*args, **kwargs)
        if acquired:
            self._checker._note_acquire(self)
        return acquired

    def release(self) -> None:
        self._checker._note_release(self)
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()


class FieldState:
    """Per-(object, field) lockset bookkeeping."""

    __slots__ = (
        "state",
        "first_thread",
        "lockset",
        "reported",
        "writer_threads",
    )

    def __init__(self) -> None:
        self.state = VIRGIN
        self.first_thread: Optional[int] = None
        self.lockset: Optional[Set[str]] = None  # None until shared
        self.reported = False
        self.writer_threads: Set[int] = set()


class LocksetChecker:
    """Collects lock-held sets per thread and runs the lockset state
    machine over accesses reported by watched attributes."""

    def __init__(self, registry: Optional[_met.MetricsRegistry] = None):
        self._registry = registry
        self._held: Dict[int, List[str]] = {}  # thread token -> lock-name stack
        self._fields: Dict[Tuple[int, str], FieldState] = {}
        self._meta: Dict[Tuple[int, str], Tuple[str, str]] = {}
        self._state_lock = threading.Lock()
        # threading.get_ident() values are recycled as soon as a thread is
        # joined, which would make a fresh thread look like the first
        # accessor (EXCLUSIVE forever, race missed). Hand out our own
        # monotonic per-thread tokens via a thread-local instead: a token
        # dies with its thread and is never reused.
        self._thread_tokens = threading.local()
        self._next_token = 0
        self.findings: List[Finding] = []

    def _thread_token(self) -> int:
        token = getattr(self._thread_tokens, "token", None)
        if token is None:
            with self._state_lock:
                self._next_token += 1
                token = self._next_token
            self._thread_tokens.token = token
        return token

    # -- lock tracking -----------------------------------------------------

    def wrap_lock(self, inner: Any, name: str) -> TrackedLock:
        return TrackedLock(inner, self, name)

    def _note_acquire(self, lock: TrackedLock) -> None:
        tid = self._thread_token()
        with self._state_lock:
            self._held.setdefault(tid, []).append(lock.name)

    def _note_release(self, lock: TrackedLock) -> None:
        tid = self._thread_token()
        with self._state_lock:
            stack = self._held.get(tid, [])
            # Remove the most recent matching entry (reentrant-safe).
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] == lock.name:
                    del stack[i]
                    break

    def held_by_current_thread(self) -> Set[str]:
        tid = self._thread_token()
        with self._state_lock:
            return set(self._held.get(tid, ()))

    @contextlib.contextmanager
    def install(self) -> Iterator["LocksetChecker"]:
        """Monkeypatch ``threading.Lock``/``RLock`` so every lock created
        inside the block is tracked (named by creation order)."""
        real_lock, real_rlock = threading.Lock, threading.RLock
        counter = [0]

        def make(factory: Any, kind: str) -> Any:
            def _new(*args: Any, **kwargs: Any) -> TrackedLock:
                counter[0] += 1
                return self.wrap_lock(
                    factory(*args, **kwargs), "%s-%d" % (kind, counter[0])
                )

            return _new

        threading.Lock = make(real_lock, "lock")  # type: ignore[misc]
        threading.RLock = make(real_rlock, "rlock")  # type: ignore[misc]
        try:
            yield self
        finally:
            threading.Lock = real_lock  # type: ignore[misc]
            threading.RLock = real_rlock  # type: ignore[misc]

    # -- field watching ----------------------------------------------------

    def watch(self, obj: Any, *fields: str, label: str = "") -> Any:
        """Instrument ``obj`` so reads/writes of ``fields`` feed the
        lockset state machine. Implemented by swapping ``obj.__class__``
        for a one-off subclass with data descriptors over the fields;
        instance state stays in ``obj.__dict__`` untouched."""
        cls = obj.__class__
        label = label or cls.__name__
        namespace: Dict[str, Any] = {}
        for field in fields:
            namespace[field] = _WatchedAttribute(field, self)
            key = (id(obj), field)
            with self._state_lock:
                self._fields[key] = FieldState()
                self._meta[key] = (label, field)
            self._count("tardis_lockset_tracked_total")
        watched_cls = type("Lockset%s" % cls.__name__, (cls,), namespace)
        obj.__class__ = watched_cls
        return obj

    def on_access(self, obj: Any, field: str, is_write: bool) -> None:
        key = (id(obj), field)
        held = self.held_by_current_thread()
        tid = self._thread_token()
        with self._state_lock:
            state = self._fields.get(key)
            if state is None:  # not watched (shouldn't happen)
                return
            self._advance(key, state, tid, held, is_write)

    # The Eraser state machine. Called with _state_lock held.
    def _advance(
        self,
        key: Tuple[int, str],
        st: FieldState,
        tid: int,
        held: Set[str],
        is_write: bool,
    ) -> None:
        if st.state == VIRGIN:
            st.state = EXCLUSIVE
            st.first_thread = tid
            if is_write:
                st.writer_threads.add(tid)
            return
        if st.state == EXCLUSIVE and tid == st.first_thread:
            if is_write:
                st.writer_threads.add(tid)
            return
        # Second thread (or beyond): start/refine the candidate lockset.
        if st.lockset is None:
            st.lockset = set(held)
        else:
            st.lockset &= held
        if is_write:
            st.writer_threads.add(tid)
            st.state = SHARED_MODIFIED
        elif st.state != SHARED_MODIFIED:
            st.state = SHARED
        if (
            st.state == SHARED_MODIFIED
            and not st.lockset
            and not st.reported
        ):
            st.reported = True
            label, field = self._meta[key]
            self.findings.append(
                Finding(
                    file="<runtime>",
                    line=0,
                    rule="lockset-race",
                    severity=SEVERITY_ERROR,
                    message=(
                        "field %s.%s accessed by %d thread(s) with no "
                        "consistently-held lock"
                        % (label, field, len(st.writer_threads) or 2)
                    ),
                    hint="guard every access with one common lock, or "
                    "document the external guard in _GUARDED_BY",
                )
            )
            self._count("tardis_lockset_races_total")

    @property
    def races(self) -> List[Finding]:
        return list(self.findings)

    def _count(self, name: str) -> None:
        registry = self._registry
        if registry is None and _met.DEFAULT.enabled:
            registry = _met.DEFAULT
        if registry is not None:
            registry.counter(name).inc()


class _WatchedAttribute:
    """Data descriptor routing attribute access through the checker."""

    def __init__(self, field: str, checker: LocksetChecker):
        self._field = field
        self._checker = checker

    def __get__(self, obj: Any, objtype: Any = None) -> Any:
        if obj is None:
            return self
        self._checker.on_access(obj, self._field, is_write=False)
        try:
            return obj.__dict__[self._field]
        except KeyError:
            raise AttributeError(self._field) from None

    def __set__(self, obj: Any, value: Any) -> None:
        self._checker.on_access(obj, self._field, is_write=True)
        obj.__dict__[self._field] = value

    def __delete__(self, obj: Any) -> None:
        self._checker.on_access(obj, self._field, is_write=True)
        del obj.__dict__[self._field]
