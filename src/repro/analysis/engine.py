"""The ``tardis check`` rule engine: AST lint over the reproduction itself.

The codebase carries invariants that nothing in Python enforces: fields
guarded by a lock only by convention (``_GUARDED_BY``), the rule that
every :class:`~repro.core.state_dag.StateDAG` mutator must move the
cache generation, a single catalogue of ``tardis_*`` metric names. This
module turns those conventions into machine-checked contracts, the same
way TARDiS itself turns concurrency anomalies into explicit branches
instead of silent corruption (§3-§4 of the paper).

Structure:

* :class:`SourceModule` — one parsed Python file: source, AST, and the
  ``# tardis: ignore[rule]`` suppressions extracted from its comments.
* :class:`Project` — every source module under ``src/repro`` plus the
  auxiliary corpora some rules cross-check (tests, ``docs/*.md``).
* :class:`Rule` — a check. Per-module rules implement
  :meth:`Rule.check_module`; whole-project rules (metric-name drift)
  implement :meth:`Rule.check_project`.
* :func:`run_check` — applies rules, filters suppressed findings, and
  returns a :class:`Report` whose JSON form feeds CI.

Suppressions: a finding on line ``N`` is dropped when line ``N`` carries
a comment ``# tardis: ignore[rule-id]`` (comma-separated ids, or ``*``
for all rules). ``# tardis: ignore-file[rule-id]`` anywhere in the file
suppresses the rule for the whole module. Suppressions are counted in
the report so a creeping suppression count is itself visible.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "SourceModule",
    "TextFile",
    "Project",
    "Rule",
    "Report",
    "baseline_key",
    "load_baseline",
    "load_project",
    "run_check",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: schema version of the JSON report (bump on breaking changes).
REPORT_SCHEMA = 1

_SUPPRESS_RE = re.compile(
    r"#\s*tardis:\s*(ignore-file|ignore)\s*\[\s*([A-Za-z0-9_*,\s-]+?)\s*\]"
)


@dataclass(frozen=True)
class Finding:
    """One structured lint finding."""

    file: str
    line: int
    rule: str
    severity: str
    message: str
    hint: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }

    def format(self) -> str:
        text = "%s:%d: %s: [%s] %s" % (
            self.file,
            self.line,
            self.severity,
            self.rule,
            self.message,
        )
        if self.hint:
            text += "  (hint: %s)" % self.hint
        return text

    def __str__(self) -> str:
        return self.format()


def _sort_key(finding: Finding) -> Tuple[str, int, str]:
    return (finding.file, finding.line, finding.rule)


class SourceModule:
    """One parsed Python source file plus its suppression table."""

    def __init__(self, path: Path, relpath: str, source: str):
        self.path = path
        self.relpath = relpath
        self.source = source
        self.tree = ast.parse(source, filename=relpath)
        #: line -> set of suppressed rule ids ("*" suppresses all rules).
        self.line_suppressions: Dict[int, Set[str]] = {}
        #: rule ids suppressed for the whole file.
        self.file_suppressions: Set[str] = set()
        self._scan_comments()

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceModule":
        source = path.read_text()
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        return cls(path, rel, source)

    def _scan_comments(self) -> None:
        reader = io.StringIO(self.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            kind, spec = match.group(1), match.group(2)
            rules = {part.strip() for part in spec.split(",") if part.strip()}
            if kind == "ignore-file":
                self.file_suppressions |= rules
            else:
                line = tok.start[0]
                self.line_suppressions.setdefault(line, set()).update(rules)

    def suppressed(self, line: int, rule: str) -> bool:
        if rule in self.file_suppressions or "*" in self.file_suppressions:
            return True
        rules = self.line_suppressions.get(line)
        return bool(rules) and (rule in rules or "*" in rules)


@dataclass
class TextFile:
    """A non-Python file some rules scan (docs, etc.)."""

    path: Path
    relpath: str
    text: str

    @classmethod
    def load(cls, path: Path, root: Path) -> "TextFile":
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        return cls(path, rel, path.read_text())


@dataclass
class Project:
    """Everything ``tardis check`` looks at in one run."""

    root: Path
    #: the library source modules (``src/repro/**.py``) — the lint target.
    modules: List[SourceModule] = field(default_factory=list)
    #: test modules (consumers of metric names; not linted per-module).
    test_modules: List[SourceModule] = field(default_factory=list)
    #: markdown docs (consumers of metric names).
    docs: List[TextFile] = field(default_factory=list)
    _class_index: Optional[Dict[str, List[Tuple["SourceModule", ast.ClassDef]]]] = field(
        default=None, init=False, repr=False
    )

    def module(self, suffix: str) -> Optional[SourceModule]:
        """The source module whose relpath ends with ``suffix``."""
        for module in self.modules:
            if module.relpath.replace("\\", "/").endswith(suffix):
                return module
        return None

    def doc(self, suffix: str) -> Optional[TextFile]:
        """The doc file whose relpath ends with ``suffix``."""
        for doc in self.docs:
            if doc.relpath.replace("\\", "/").endswith(suffix):
                return doc
        return None

    def classes(self) -> Dict[str, List[Tuple["SourceModule", ast.ClassDef]]]:
        """Whole-repo class index: name -> [(module, ClassDef), ...].

        The cross-file context for rules that resolve references between
        modules (lock-order's attribute-type inference); computed once
        per run and cached on the project.
        """
        if self._class_index is None:
            index: Dict[str, List[Tuple[SourceModule, ast.ClassDef]]] = {}
            for module in self.modules:
                for node in ast.walk(module.tree):
                    if isinstance(node, ast.ClassDef):
                        index.setdefault(node.name, []).append((module, node))
            self._class_index = index
        return self._class_index


class Rule:
    """Base class for checks. Subclasses set ``id`` and override one of
    the two hooks; findings they emit are filtered through suppressions
    by the engine, never by the rule."""

    id = "abstract"
    severity = SEVERITY_ERROR
    description = ""

    def check_module(self, module: SourceModule) -> List[Finding]:
        return []

    def check_project(self, project: Project) -> List[Finding]:
        return []


@dataclass
class Report:
    """Result of one ``run_check``: what CI gates on."""

    findings: List[Finding]
    suppressed: int
    rules: List[str]
    files_checked: int
    #: findings dropped because a ``--baseline`` report already records
    #: them — the "no *new* findings" CI mode.
    baselined: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        """Nonzero on any unsuppressed finding — the CI gate."""
        return 0 if self.ok else 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": REPORT_SCHEMA,
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules": list(self.rules),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "counts": {
                "error": len(self.errors),
                "warning": len(self.warnings),
            },
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def format(self) -> str:
        lines = [f.format() for f in self.findings]
        summary = (
            "tardis check: %d finding(s) (%d error, %d warning), "
            "%d suppressed, %d file(s)"
            % (
                len(self.findings),
                len(self.errors),
                len(self.warnings),
                self.suppressed,
                self.files_checked,
            )
        )
        if self.baselined:
            summary += ", %d baselined" % self.baselined
        lines.append(summary)
        return "\n".join(lines)


def _python_files(root: Path) -> List[Path]:
    return sorted(
        p
        for p in root.rglob("*.py")
        if "__pycache__" not in p.parts
    )


def load_project(
    src_root: Path,
    repo_root: Optional[Path] = None,
    tests_root: Optional[Path] = None,
    docs_root: Optional[Path] = None,
) -> Project:
    """Load the lint target.

    ``src_root`` is the ``repro`` package directory. ``repo_root`` (for
    relpaths and for locating ``tests/`` and ``docs/`` when not given
    explicitly) defaults to the nearest ancestor containing
    ``pyproject.toml``, falling back to ``src_root`` itself.
    """
    src_root = Path(src_root).resolve()
    if repo_root is None:
        repo_root = src_root
        for ancestor in src_root.parents:
            if (ancestor / "pyproject.toml").exists():
                repo_root = ancestor
                break
    repo_root = Path(repo_root).resolve()
    if tests_root is None:
        candidate = repo_root / "tests"
        tests_root = candidate if candidate.is_dir() else None
    if docs_root is None:
        candidate = repo_root / "docs"
        docs_root = candidate if candidate.is_dir() else None

    project = Project(root=repo_root)
    for path in _python_files(src_root):
        project.modules.append(SourceModule.load(path, repo_root))
    if tests_root is not None:
        for path in _python_files(Path(tests_root)):
            project.test_modules.append(SourceModule.load(path, repo_root))
    if docs_root is not None:
        for path in sorted(Path(docs_root).rglob("*.md")):
            project.docs.append(TextFile.load(path, repo_root))
    return project


def baseline_key(finding: Finding) -> Tuple[str, str, str]:
    """The identity a baseline matches on.

    Line numbers shift with every edit, so baselines match on
    ``(file, rule, message)`` — stable until the offending code itself
    changes, at which point the finding is (correctly) new again.
    """
    return (finding.file, finding.rule, finding.message)


def load_baseline(path: Path) -> Dict[Tuple[str, str, str], int]:
    """Load a prior ``--format=json`` report as a baseline.

    Returns a multiset of finding keys (a key may appear several times
    when one line of drift produces identical messages in two places).
    Raises :class:`ValueError` on a document that is not a report.
    """
    with open(path) as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "findings" not in doc:
        raise ValueError("%s is not a tardis check JSON report" % path)
    keys: Dict[Tuple[str, str, str], int] = {}
    for entry in doc["findings"]:
        key = (entry["file"], entry["rule"], entry["message"])
        keys[key] = keys.get(key, 0) + 1
    return keys


def run_check(
    project: Project,
    rules: Sequence[Rule],
    baseline: Optional[Dict[Tuple[str, str, str], int]] = None,
) -> Report:
    """Apply ``rules`` to ``project``; filter suppressions; sort findings.

    ``baseline`` (from :func:`load_baseline`) drops findings already
    recorded in a prior report, so CI can gate on "no new findings"
    without requiring a zero-count repo; dropped findings are counted
    in ``Report.baselined``.
    """
    modules_by_rel = {m.relpath: m for m in project.modules}
    raw: List[Finding] = []
    for rule in rules:
        for module in project.modules:
            raw.extend(rule.check_module(module))
        raw.extend(rule.check_project(project))

    kept: List[Finding] = []
    suppressed = 0
    baselined = 0
    remaining = dict(baseline) if baseline else {}
    for finding in raw:
        module = modules_by_rel.get(finding.file)
        if module is not None and module.suppressed(finding.line, finding.rule):
            suppressed += 1
            continue
        key = baseline_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined += 1
            continue
        kept.append(finding)
    kept.sort(key=_sort_key)
    return Report(
        findings=kept,
        suppressed=suppressed,
        rules=[rule.id for rule in rules],
        files_checked=len(project.modules),
        baselined=baselined,
    )
