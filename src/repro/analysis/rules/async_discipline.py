"""``async-discipline``: event-loop hygiene for coroutine code.

The server's concurrency model (docs/internals.md §12.3) has one hard
rule: the asyncio loop must never block, and store access from a
coroutine must hop through the single-worker executor. Python enforces
none of this — a stray ``time.sleep`` in a handler stalls every
connection, and an un-awaited coroutine is silently dropped with only a
runtime warning nobody reads. This rule makes four violation classes
static errors:

1. **Blocking call in a coroutine.** Calls known to block the thread —
   ``time.sleep``, anything in the ``socket`` module, sync file I/O via
   ``open``/``input``, ``subprocess.run`` and friends, ``os.system`` —
   are errors anywhere inside an ``async def`` body. Nested *sync*
   ``def``s and lambdas are a new execution context (they typically run
   on an executor) and are exempt.

2. **Direct store call in a coroutine.** In the server, every store
   operation must go through the store executor
   (``run_in_executor(self._executor, ...)``) so the loop can time it
   out and the single worker serializes it. A direct
   ``self.store.<method>(...)`` call inside an ``async def`` is an
   error. Passing the bound method *to* the executor is fine — only
   actual calls are flagged.

3. **``await`` while a ``threading`` lock is held.** An ``await``
   inside ``with self.<lock>:`` — where ``<lock>`` is named as a guard
   in the class's ``_GUARDED_BY`` map or assigned a
   ``threading.Lock``/``RLock`` in ``__init__`` — parks the coroutine
   with the lock held across an arbitrary suspension: every thread
   (including the executor the loop is waiting on) that wants the lock
   then deadlocks against the loop. Hold such locks only across
   straight-line code.

4. **Dropped coroutines and tasks.** A call of a locally-defined
   ``async def`` (a ``self.``-method of the same class, or a
   module-level coroutine function) used as a bare expression statement
   creates a coroutine object and throws it away — the body never runs.
   Likewise ``create_task``/``ensure_future`` as a bare statement is
   fire-and-forget: the event loop holds tasks weakly, so an
   unreferenced task can be garbage-collected mid-flight; keep the
   handle (and cancel it at shutdown).

False positives (a coroutine that runs strictly after the executor has
drained, say) carry ``# tardis: ignore[async-discipline]`` with a
reason, per docs/internals.md §11.3.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Rule, SourceModule
from repro.analysis.rules.lock_discipline import _guarded_by_map, _self_attr

#: module-level callables that block the calling thread. ``"*"`` flags
#: every attribute of the module (socket: there is no non-blocking call
#: worth making from a coroutine; use asyncio streams).
BLOCKING_MODULES: Dict[str, FrozenSet[str]] = {
    "time": frozenset({"sleep"}),
    "socket": frozenset({"*"}),
    "subprocess": frozenset({"run", "call", "check_call", "check_output"}),
    "os": frozenset({"system", "wait", "waitpid"}),
}

#: builtins that block on file/tty I/O.
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: task-spawning APIs whose return value must be retained.
TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: ``self.<attr>`` receivers whose method calls must go through the
#: store executor when made from a coroutine.
EXECUTOR_ONLY_ATTRS = frozenset({"store"})


def _lock_ctors(cls: ast.ClassDef) -> Dict[str, str]:
    """Attr -> ctor name for ``self.x = threading.Lock()/RLock()`` in
    ``__init__`` (the ctor name distinguishes reentrant locks)."""
    out: Dict[str, str] = {}
    for stmt in cls.body:
        if not (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__init__"
        ):
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = ""
            if isinstance(call.func, ast.Attribute):
                name = call.func.attr
            elif isinstance(call.func, ast.Name):
                name = call.func.id
            if name not in ("Lock", "RLock"):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    out[target.attr] = name
    return out


def _class_lock_attrs(cls: ast.ClassDef) -> Set[str]:
    """Lock attributes of ``cls``: ``self.X`` guard specs plus
    ``threading.Lock``/``RLock`` assignments in ``__init__``."""
    locks = set(_lock_ctors(cls))
    for guard in _guarded_by_map(cls).values():
        attr = guard.lock_attr
        if attr is not None:
            locks.add(attr)
    return locks


def _async_names(module: SourceModule) -> Tuple[Set[str], Dict[str, Set[str]]]:
    """(module-level coroutine function names, class -> async methods)."""
    top: Set[str] = {
        node.name
        for node in module.tree.body
        if isinstance(node, ast.AsyncFunctionDef)
    }
    methods: Dict[str, Set[str]] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            methods[node.name] = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, ast.AsyncFunctionDef)
            }
    return top, methods


def _receiver_chain(node: ast.AST) -> List[str]:
    """The dotted name chain of an expression: ``self.store.begin`` ->
    ``["self", "store", "begin"]``; empty when not a plain chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return []


class AsyncDisciplineRule(Rule):
    id = "async-discipline"
    description = (
        "coroutines must not block, call the store directly, await under "
        "a threading lock, or drop coroutines/tasks"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        self._top_async, self._async_methods = _async_names(module)

        # Dropped coroutines / fire-and-forget tasks: a scope-aware walk
        # over every function (sync callers drop coroutines too).
        for cls, func in self._functions(module.tree):
            cls_name = cls.name if cls is not None else None
            for stmt in ast.walk(func):
                if not isinstance(stmt, ast.Expr) or not isinstance(
                    stmt.value, ast.Call
                ):
                    continue
                findings.extend(
                    self._check_dropped(module, cls_name, stmt.value)
                )

        # Coroutine-context checks: blocking calls, direct store calls,
        # await under a threading lock.
        for cls, func in self._functions(module.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            locks = _class_lock_attrs(cls) if cls is not None else set()
            self._walk_async(module, func.body, locks, frozenset(), findings)
        return findings

    # -- scope helpers -----------------------------------------------------

    def _functions(self, tree: ast.AST):
        """Yield (enclosing class or None, function def) for every def,
        associating methods with their immediate class only."""
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        yield node, stmt
        class_funcs = {
            id(stmt)
            for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and id(node) not in class_funcs
            ):
                yield None, node

    # -- dropped coroutines / tasks ----------------------------------------

    def _check_dropped(
        self, module: SourceModule, cls_name: Optional[str], call: ast.Call
    ) -> List[Finding]:
        chain = _receiver_chain(call.func)
        if not chain:
            return []
        # self.<async method>() of the same class, or <module coroutine>().
        is_local_coro = (
            len(chain) == 2
            and chain[0] == "self"
            and cls_name is not None
            and chain[1] in self._async_methods.get(cls_name, set())
        ) or (len(chain) == 1 and chain[0] in self._top_async)
        if is_local_coro:
            return [
                Finding(
                    file=module.relpath,
                    line=call.lineno,
                    rule=self.id,
                    severity="error",
                    message=(
                        "coroutine %r is called but never awaited — the "
                        "body will not run" % ".".join(chain)
                    ),
                    hint="await it, or wrap it in create_task and keep "
                    "the task reference",
                )
            ]
        if chain[-1] in TASK_SPAWNERS:
            return [
                Finding(
                    file=module.relpath,
                    line=call.lineno,
                    rule=self.id,
                    severity="error",
                    message=(
                        "fire-and-forget %s(): the event loop holds tasks "
                        "weakly, so an unreferenced task can be collected "
                        "mid-flight" % chain[-1]
                    ),
                    hint="assign the task to an attribute (and cancel it "
                    "at shutdown) or add it to a retained set",
                )
            ]
        return []

    # -- coroutine-body walk -----------------------------------------------

    def _walk_async(
        self,
        module: SourceModule,
        stmts: List[ast.stmt],
        locks: Set[str],
        held: frozenset,
        findings: List[Finding],
    ) -> None:
        for stmt in stmts:
            # Nested defs/lambdas are a different execution context; a
            # nested async def is visited on its own by check_module.
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = set(held)
                for item in stmt.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and attr in locks:
                        acquired.add(attr)
                    self._scan_expr(module, item.context_expr, held, findings)
                self._walk_async(
                    module, stmt.body, locks, frozenset(acquired), findings
                )
                continue
            for expr in self._own_exprs(stmt):
                self._scan_expr(module, expr, held, findings)
            for block in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, block, None)
                if isinstance(inner, list) and inner and isinstance(
                    inner[0], ast.stmt
                ):
                    self._walk_async(module, inner, locks, held, findings)
            for handler in getattr(stmt, "handlers", []):
                self._walk_async(module, handler.body, locks, held, findings)

    def _own_exprs(self, stmt: ast.stmt) -> List[ast.expr]:
        """The statement's own expressions, excluding nested statement
        blocks (the walk recurses into those with updated lock state)."""
        out: List[ast.expr] = []
        for name, value in ast.iter_fields(stmt):
            if isinstance(value, ast.expr):
                out.append(value)
            elif isinstance(value, list) and value and isinstance(
                value[0], ast.expr
            ):
                out.extend(value)
        return out

    def _scan_expr(
        self,
        module: SourceModule,
        expr: ast.expr,
        held: frozenset,
        findings: List[Finding],
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Lambda,)):
                continue
            if isinstance(node, ast.Await) and held:
                findings.append(
                    Finding(
                        file=module.relpath,
                        line=node.lineno,
                        rule=self.id,
                        severity="error",
                        message=(
                            "await while holding threading lock self.%s — "
                            "the coroutine parks with the lock held and "
                            "can deadlock the loop against the executor"
                            % sorted(held)[0]
                        ),
                        hint="compute under the lock, release, then await "
                        "(or use an asyncio.Lock with 'async with')",
                    )
                )
            if not isinstance(node, ast.Call):
                continue
            self._check_blocking(module, node, findings)
            self._check_store_call(module, node, findings)

    def _check_blocking(
        self, module: SourceModule, call: ast.Call, findings: List[Finding]
    ) -> None:
        func = call.func
        if isinstance(func, ast.Name) and func.id in BLOCKING_BUILTINS:
            findings.append(
                Finding(
                    file=module.relpath,
                    line=call.lineno,
                    rule=self.id,
                    severity="error",
                    message=(
                        "blocking %s() inside a coroutine stalls the "
                        "event loop" % func.id
                    ),
                    hint="hop it off the loop with run_in_executor (or "
                    "use the asyncio equivalent)",
                )
            )
            return
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in BLOCKING_MODULES
        ):
            allowed = BLOCKING_MODULES[func.value.id]
            if "*" in allowed or func.attr in allowed:
                findings.append(
                    Finding(
                        file=module.relpath,
                        line=call.lineno,
                        rule=self.id,
                        severity="error",
                        message=(
                            "blocking %s.%s() inside a coroutine stalls "
                            "the event loop" % (func.value.id, func.attr)
                        ),
                        hint="use the asyncio equivalent (asyncio.sleep, "
                        "asyncio streams) or run_in_executor",
                    )
                )

    def _check_store_call(
        self, module: SourceModule, call: ast.Call, findings: List[Finding]
    ) -> None:
        chain = _receiver_chain(call.func)
        if (
            len(chain) >= 3
            and chain[0] == "self"
            and chain[1] in EXECUTOR_ONLY_ATTRS
        ):
            findings.append(
                Finding(
                    file=module.relpath,
                    line=call.lineno,
                    rule=self.id,
                    severity="error",
                    message=(
                        "direct %s() call inside a coroutine bypasses the "
                        "store executor" % ".".join(chain)
                    ),
                    hint="dispatch via await loop.run_in_executor("
                    "self._executor, ...) so the single worker serializes "
                    "it and the loop can time it out",
                )
            )
