"""The rule catalogue for ``tardis check``."""

from __future__ import annotations

from typing import Dict, List, Sequence, Type

from repro.analysis.engine import Rule
from repro.analysis.rules.async_discipline import AsyncDisciplineRule
from repro.analysis.rules.generation_contract import GenerationContractRule
from repro.analysis.rules.hygiene import BareExceptRule, ImportHygieneRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.metric_drift import MetricNameDriftRule
from repro.analysis.rules.wire_contract import WireContractRule

__all__ = [
    "ALL_RULES",
    "AsyncDisciplineRule",
    "BareExceptRule",
    "GenerationContractRule",
    "ImportHygieneRule",
    "LockDisciplineRule",
    "LockOrderRule",
    "MetricNameDriftRule",
    "WireContractRule",
    "default_rules",
    "rules_by_id",
]

#: every registered rule class, in reporting order.
ALL_RULES: Sequence[Type[Rule]] = (
    LockDisciplineRule,
    LockOrderRule,
    AsyncDisciplineRule,
    GenerationContractRule,
    MetricNameDriftRule,
    WireContractRule,
    ImportHygieneRule,
    BareExceptRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in ALL_RULES]


def rules_by_id(ids: Sequence[str]) -> List[Rule]:
    """Instances of the rules named in ``ids`` (order preserved).

    Raises :class:`KeyError` naming the unknown id when one does not
    exist, so the CLI can print the valid set.
    """
    table: Dict[str, Type[Rule]] = {cls.id: cls for cls in ALL_RULES}
    picked: List[Rule] = []
    for rule_id in ids:
        if rule_id not in table:
            raise KeyError(rule_id)
        picked.append(table[rule_id]())
    return picked
