"""``metric-name-drift``: one catalogue of ``tardis_*`` metric names.

The observability registry creates metrics on first use, so a typo in a
counter name silently splits a metric in two — the producer increments
``tardis_txn_comit_total`` while dashboards, docs, and tests read
``tardis_txn_commit_total`` forever showing zero. This rule pins every
name to the catalogue declared in :mod:`repro.obs.metrics`
(``METRIC_NAMES`` for registry metrics, ``SERIES_NAMES`` for windowed
series, whose instances carry an ``@<site>`` suffix) and checks three
directions:

1. **Producers**: every ``tardis_*`` name passed to a metrics/series API
   call in ``src/repro`` must be in the catalogue (exact, or a series
   base before ``@``).
2. **Consumers**: every ``tardis_*`` token referenced in
   ``tools/cli.py``, ``docs/*.md``, or ``tests/`` must resolve against
   the catalogue — exact, a series base, or an underscore-boundary
   prefix of catalogue names (consumers legitimately build
   ``"%s_hit_total" % prefix`` or filter with ``startswith``).
3. **Liveness**: every catalogue name must actually be produced by some
   API call in ``src/repro`` — a catalogue entry nothing emits is drift
   in the other direction.

The catalogue is parsed statically from the AST (no import), so the rule
works on a checkout without executing library code.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.engine import Finding, Project, Rule, SourceModule

#: call names whose string arguments register/record a metric.
METRIC_APIS = frozenset(
    {
        "counter",
        "gauge",
        "histogram",
        "inc",
        "observe",
        "set_gauge",
        "counter_value",
        "_feed",
        "_count",
    }
)

_TOKEN_RE = re.compile(r"tardis_[a-z0-9_]*[a-z0-9]")

#: module-path-ish tokens the scanner must never treat as metric names.
_NON_METRIC_TOKENS = frozenset({"tardis_impls"})


def _tokens_of(text: str) -> List[str]:
    return [t for t in _TOKEN_RE.findall(text) if t not in _NON_METRIC_TOKENS]


def _base_of(token: str) -> str:
    """Strip an ``@<site>`` instance suffix from a series name."""
    return token.split("@", 1)[0]


class _Catalog:
    def __init__(self) -> None:
        self.metrics: Dict[str, int] = {}  # name -> declaration line
        self.series: Dict[str, int] = {}
        self.file = ""
        self.found = False

    @property
    def names(self) -> Set[str]:
        return set(self.metrics) | set(self.series)

    def resolves(self, token: str) -> bool:
        """True when ``token`` is a valid reference to catalogue names."""
        token = _base_of(token)
        if token in self.metrics or token in self.series:
            return True
        # Underscore-boundary prefix of at least one catalogue name
        # ("tardis_begin_cache" + "_hit_total", "tardis_net_"...).
        for name in self.names:
            if name.startswith(token) and (
                token.endswith("_") or name[len(token) : len(token) + 1] == "_"
            ):
                return True
        return False


def _parse_catalog(module: SourceModule) -> _Catalog:
    catalog = _Catalog()
    catalog.file = module.relpath
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id not in ("METRIC_NAMES", "SERIES_NAMES"):
                continue
            if not isinstance(node.value, ast.Dict):
                continue
            dest = (
                catalog.metrics if target.id == "METRIC_NAMES" else catalog.series
            )
            for key in node.value.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    dest[key.value] = key.lineno
            catalog.found = True
    return catalog


def _producer_calls(
    module: SourceModule,
) -> Iterable[Tuple[str, int]]:
    """(token, line) for every metric name passed to a metrics API call."""
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in METRIC_APIS
            and node.args
        ):
            continue
        # The name is the first positional argument; it may be a plain
        # string or a format expression ("tardis_branch_count@%s" % site).
        for sub in ast.walk(node.args[0]):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                for token in _tokens_of(sub.value):
                    yield token, sub.lineno


def _literal_tokens(module: SourceModule) -> Iterable[Tuple[str, int]]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            for token in _tokens_of(node.value):
                yield token, node.lineno


class MetricNameDriftRule(Rule):
    id = "metric-name-drift"
    description = (
        "tardis_* names used by producers/consumers must match the "
        "METRIC_NAMES/SERIES_NAMES catalogue in obs/metrics.py, and vice versa"
    )

    #: source module (relpath suffix) holding the catalogue.
    CATALOG_MODULE = "obs/metrics.py"
    #: source modules treated as consumers (scanned for all literals).
    CONSUMER_MODULES = ("tools/cli.py",)

    def check_project(self, project: Project) -> List[Finding]:
        catalog_module = project.module(self.CATALOG_MODULE)
        if catalog_module is None:
            return []  # library layout not present (fixture projects)
        catalog = _parse_catalog(catalog_module)
        if not catalog.found:
            return [
                Finding(
                    file=catalog_module.relpath,
                    line=1,
                    rule=self.id,
                    severity="error",
                    message="METRIC_NAMES/SERIES_NAMES catalogue not found",
                    hint="declare METRIC_NAMES and SERIES_NAMES dict literals",
                )
            ]

        findings: List[Finding] = []
        produced: Set[str] = set()

        # 1. producers across the library source.
        for module in project.modules:
            for token, line in _producer_calls(module):
                produced.add(_base_of(token))
                if not catalog.resolves(token):
                    findings.append(
                        Finding(
                            file=module.relpath,
                            line=line,
                            rule=self.id,
                            severity="error",
                            message=(
                                "metric %r is recorded here but not in the "
                                "catalogue" % token
                            ),
                            hint="add it to METRIC_NAMES/SERIES_NAMES in "
                            "obs/metrics.py (or fix the typo)",
                        )
                    )

        # 2. consumers: the CLI, the docs, and the test suite.
        consumer_modules = [
            m
            for suffix in self.CONSUMER_MODULES
            for m in [project.module(suffix)]
            if m is not None
        ]
        consumer_modules.extend(project.test_modules)
        seen_consumer: Set[Tuple[str, str, int]] = set()
        for module in consumer_modules:
            for token, line in _literal_tokens(module):
                key = (module.relpath, token, line)
                if key in seen_consumer:
                    continue
                seen_consumer.add(key)
                if not catalog.resolves(token):
                    findings.append(
                        Finding(
                            file=module.relpath,
                            line=line,
                            rule=self.id,
                            severity="error",
                            message=(
                                "metric %r is referenced here but not in the "
                                "catalogue" % token
                            ),
                            hint="fix the name or add it to the catalogue in "
                            "obs/metrics.py",
                        )
                    )
        for doc in project.docs:
            for lineno, line_text in enumerate(doc.text.splitlines(), start=1):
                for token in _tokens_of(line_text):
                    if not catalog.resolves(token):
                        findings.append(
                            Finding(
                                file=doc.relpath,
                                line=lineno,
                                rule=self.id,
                                severity="error",
                                message=(
                                    "doc references metric %r which is not in "
                                    "the catalogue" % token
                                ),
                                hint="fix the doc or add the name to "
                                "obs/metrics.py",
                            )
                        )

        # 3. liveness: every catalogue entry must have a producer.
        for name, line in sorted(catalog.metrics.items()):
            if _base_of(name) not in produced:
                findings.append(
                    Finding(
                        file=catalog.file,
                        line=line,
                        rule=self.id,
                        severity="error",
                        message=(
                            "catalogue metric %r is never recorded by any "
                            "metrics API call in src/repro" % name
                        ),
                        hint="remove the stale entry or instrument the "
                        "producer",
                    )
                )
        for name, line in sorted(catalog.series.items()):
            if name not in produced:
                findings.append(
                    Finding(
                        file=catalog.file,
                        line=line,
                        rule=self.id,
                        severity="error",
                        message=(
                            "catalogue series %r is never fed by any series "
                            "API call in src/repro" % name
                        ),
                        hint="remove the stale entry or feed the series",
                    )
                )
        return findings
