"""``lock-discipline``: writes to ``_GUARDED_BY`` fields must hold the lock.

A class declares its locking contract with a class-level map::

    class TardisStore:
        _GUARDED_BY = {
            "_sessions": "self._lock",
            "_session_counter": "self._lock",
        }

Values starting with ``self.`` name a lock attribute of the same object;
for those the rule enforces, statically, that every *write* to the field
inside the class body happens lexically within a ``with self.<lock>:``
block. Any other value (e.g. ``"external:TardisStore._lock"`` or
``"external:des-loop"``) documents a guard the class cannot see —
typically the owning store's lock, or the single-threaded discrete-event
loop — which only the dynamic lockset checker
(:mod:`repro.analysis.lockset`) can enforce.

What counts as a write to ``self.<field>``:

* assignment / augmented assignment / ``del`` of the attribute,
* assignment to a subscript of it (``self._states[k] = v``),
* a call of a known mutating method on it (``self._sessions.pop(...)``,
  ``self._events.append(...)``, including one subscript hop:
  ``self._locks[k].queue.append`` counts against ``_locks``).

``__init__`` and ``__new__`` are exempt (the object is not shared yet).
A method that runs entirely with the lock already held by its callers
can carry ``# tardis: ignore[lock-discipline]`` on the offending line,
with a comment saying who holds the lock.

Reads are deliberately out of scope for the static rule — several hot
paths read racily on purpose (double-checked metric creation, gauge
snapshots) and the dynamic checker covers them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.engine import Finding, Rule, SourceModule

#: method names treated as in-place mutations of their receiver.
MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "update",
        "write",
    }
)


def _self_attr(node: ast.AST) -> Optional[str]:
    """The first attribute name off ``self``, peeled through subscripts
    and attribute chains: ``self.a``, ``self.a[k]``, ``self.a.b``,
    ``self.a[k].b`` all resolve to ``"a"``."""
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        else:
            return None


def _guarded_by_map(cls: ast.ClassDef) -> Dict[str, "_Guard"]:
    """Parse the class-level ``_GUARDED_BY`` dict literal, if present."""
    for stmt in cls.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "_GUARDED_BY":
                if not isinstance(value, ast.Dict):
                    return {}
                guards: Dict[str, _Guard] = {}
                for key, val in zip(value.keys, value.values):
                    if not (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(val, ast.Constant)
                        and isinstance(val.value, str)
                    ):
                        continue
                    guards[key.value] = _Guard(val.value, val.lineno)
                return guards
    return {}


class _Guard:
    """One ``_GUARDED_BY`` entry: the lock spec and where it was declared."""

    __slots__ = ("spec", "lineno")

    def __init__(self, spec: str, lineno: int):
        self.spec = spec
        self.lineno = lineno

    @property
    def lock_attr(self) -> Optional[str]:
        """The ``self.``-local lock attribute name, or None if external."""
        if self.spec.startswith("self."):
            return self.spec[len("self.") :]
        return None


class LockDisciplineRule(Rule):
    id = "lock-discipline"
    description = (
        "writes to fields declared in _GUARDED_BY must hold the named lock"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(module, node))
        return findings

    # -- per-class ---------------------------------------------------------

    def _check_class(
        self, module: SourceModule, cls: ast.ClassDef
    ) -> List[Finding]:
        guards = _guarded_by_map(cls)
        if not guards:
            return []
        findings: List[Finding] = []
        enforced = {
            name: guard.lock_attr
            for name, guard in guards.items()
            if guard.lock_attr is not None
        }
        init_attrs = self._init_attributes(cls)
        for name, guard in guards.items():
            lock = guard.lock_attr
            if lock is not None and lock not in init_attrs:
                findings.append(
                    Finding(
                        file=module.relpath,
                        line=guard.lineno,
                        rule=self.id,
                        severity="error",
                        message=(
                            "%s._GUARDED_BY maps %r to %r but __init__ never "
                            "assigns self.%s" % (cls.name, name, guard.spec, lock)
                        ),
                        hint="declare the lock in __init__ or use an "
                        "'external:...' guard spec",
                    )
                )
        if not enforced:
            return findings
        for stmt in cls.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name in ("__init__", "__new__"):
                continue
            self._check_method(module, cls, stmt, enforced, findings)
        return findings

    def _init_attributes(self, cls: ast.ClassDef) -> Set[str]:
        attrs: Set[str] = set()
        for stmt in cls.body:
            if (
                isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and stmt.name == "__init__"
            ):
                for node in ast.walk(stmt):
                    if isinstance(node, (ast.Assign, ast.AnnAssign)):
                        targets = (
                            node.targets
                            if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in targets:
                            if (
                                isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            ):
                                attrs.add(target.attr)
        return attrs

    # -- per-method walk ---------------------------------------------------

    def _check_method(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        func: ast.AST,
        enforced: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        body = getattr(func, "body", [])
        self._walk(module, cls, body, frozenset(), enforced, findings)

    def _walk(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        stmts: List[ast.stmt],
        held: frozenset,
        enforced: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = set(held)
                for item in stmt.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None:
                        acquired.add(attr)
                self._scan_statement_exprs(
                    module, cls, stmt, held, enforced, findings
                )
                self._walk(
                    module, cls, stmt.body, frozenset(acquired), enforced, findings
                )
                continue
            # Nested defs start a new scope with no lock held lexically.
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._walk(module, cls, stmt.body, frozenset(), enforced, findings)
                continue
            if isinstance(stmt, ast.ClassDef):
                continue
            self._scan_statement_exprs(
                module, cls, stmt, held, enforced, findings
            )
            for block in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, block, None)
                if isinstance(inner, list) and inner and isinstance(
                    inner[0], ast.stmt
                ):
                    self._walk(module, cls, inner, held, enforced, findings)
            for handler in getattr(stmt, "handlers", []):
                self._walk(module, cls, handler.body, held, enforced, findings)

    def _scan_statement_exprs(
        self,
        module: SourceModule,
        cls: ast.ClassDef,
        stmt: ast.stmt,
        held: frozenset,
        enforced: Dict[str, str],
        findings: List[Finding],
    ) -> None:
        """Find writes in this statement's own expressions (not nested
        statement blocks, which the walk recurses into with updated
        lock-held state)."""
        nodes: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            nodes.extend(stmt.targets)
            nodes.extend(ast.walk(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            nodes.append(stmt.target)
            nodes.extend(ast.walk(stmt.value))
        elif isinstance(stmt, ast.AnnAssign):
            nodes.append(stmt.target)
            if stmt.value is not None:
                nodes.extend(ast.walk(stmt.value))
        elif isinstance(stmt, ast.Delete):
            nodes.extend(stmt.targets)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                nodes.extend(ast.walk(item.context_expr))
        elif isinstance(stmt, (ast.If, ast.While)):
            nodes.extend(ast.walk(stmt.test))
        elif isinstance(stmt, ast.For):
            nodes.extend(ast.walk(stmt.iter))
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            nodes.extend(ast.walk(stmt.value))
        elif isinstance(stmt, ast.Expr):
            nodes.extend(ast.walk(stmt.value))
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for sub in ast.iter_child_nodes(stmt):
                nodes.extend(ast.walk(sub))

        for node in nodes:
            field: Optional[str] = None
            kind = ""
            if isinstance(node, (ast.Attribute, ast.Subscript)) and isinstance(
                getattr(node, "ctx", None), (ast.Store, ast.Del)
            ):
                field = _self_attr(node)
                kind = "assignment to"
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in MUTATORS:
                    field = _self_attr(node.func.value)
                    kind = "call of %s() on" % node.func.attr
            if field is None or field not in enforced:
                continue
            lock = enforced[field]
            if lock in held:
                continue
            findings.append(
                Finding(
                    file=module.relpath,
                    line=node.lineno,
                    rule=self.id,
                    severity="error",
                    message=(
                        "%s %s.%s outside 'with self.%s:' "
                        "(declared in %s._GUARDED_BY)"
                        % (kind, "self", field, lock, cls.name)
                    ),
                    hint="wrap the write in 'with self.%s:' or suppress with "
                    "'# tardis: ignore[lock-discipline]' if a caller holds it"
                    % lock,
                )
            )
