"""``wire-contract``: the protocol catalogue must agree across layers.

The wire contract lives in five places that nothing ties together: the
op and error-code catalogues in ``server/protocol.py`` (the source of
truth), the ``_op_<name>`` dispatch surface in ``server/server.py``,
the ``_request("OP")`` call sites in both clients, and the op/error
tables in docs/internals.md §12. A new op added to the server but not
the async client, or an error code the docs never mention, is exactly
the kind of silent drift that surfaces as an UNKNOWN_OP in production
instead of a diff in review. This project-wide rule extracts each
layer's catalogue and flags every op or error code present in one layer
but missing in another:

* every op in ``OPS`` needs a ``_op_<lower>`` handler, and every
  handler an op (dispatch is ``getattr(self, "_op_" + op.lower())``);
* every op must be issued by every client (``self._request("OP")``
  literal), and no client may issue an op outside the catalogue;
* every error code raised or sent by the server
  (``_RequestError("CODE")`` / ``error_response(_, "CODE")``) must be
  catalogued, and every catalogued code must appear as a literal in the
  server module (a code nothing emits is dead contract);
* the §12 markdown tables — any table whose header's first cell is
  ``op`` or ``code`` — must list exactly the catalogued ops and codes
  (first cell per row, backticked ALL_CAPS token).

When the repo layout is absent (fixture projects in tests) the rule
stays silent; when only the doc is absent, only the doc checks are
skipped. Catalogue-side findings anchor at the catalogue entry's line,
doc-side findings at the offending table row.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Project, Rule, SourceModule, TextFile

#: a backticked ALL_CAPS token in a table row's first cell.
_ROW_TOKEN_RE = re.compile(r"^\s*\|\s*`([A-Z][A-Z0-9_]*)`\s*\|")


class WireContractRule(Rule):
    id = "wire-contract"
    description = (
        "ops and error codes must agree across protocol catalogue, server "
        "dispatch, both clients, and the docs §12 tables"
    )

    PROTOCOL_MODULE = "server/protocol.py"
    SERVER_MODULE = "server/server.py"
    CLIENT_MODULES = ("client/client.py", "client/aio.py")
    DOC_FILE = "docs/internals.md"

    def check_project(self, project: Project) -> List[Finding]:
        protocol = project.module(self.PROTOCOL_MODULE)
        server = project.module(self.SERVER_MODULE)
        if protocol is None or server is None:
            return []  # fixture project without the networked layout
        ops = self._frozenset_literal(protocol, "OPS")
        codes = self._dict_keys(protocol, "ERROR_CODES")
        if ops is None or codes is None:
            return []

        findings: List[Finding] = []
        self._check_dispatch(protocol, server, ops, findings)
        for suffix in self.CLIENT_MODULES:
            client = project.module(suffix)
            if client is not None:
                self._check_client(protocol, client, ops, findings)
        self._check_server_codes(protocol, server, codes, findings)
        doc = project.doc(self.DOC_FILE)
        if doc is not None:
            self._check_doc_table(protocol, doc, "op", ops, "op", findings)
            self._check_doc_table(
                protocol, doc, "code", codes, "error code", findings
            )
        return findings

    # -- catalogue extraction ----------------------------------------------

    def _assigned_value(
        self, module: SourceModule, name: str
    ) -> Optional[ast.expr]:
        for stmt in module.tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return value
        return None

    def _frozenset_literal(
        self, module: SourceModule, name: str
    ) -> Optional[Dict[str, int]]:
        """``NAME = frozenset({...})`` -> {member: lineno}."""
        value = self._assigned_value(module, name)
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "frozenset"
            and value.args
        ):
            value = value.args[0]
        if not isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            return None
        out: Dict[str, int] = {}
        for elt in value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out[elt.value] = elt.lineno
        return out

    def _dict_keys(
        self, module: SourceModule, name: str
    ) -> Optional[Dict[str, int]]:
        value = self._assigned_value(module, name)
        if not isinstance(value, ast.Dict):
            return None
        out: Dict[str, int] = {}
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                out[key.value] = key.lineno
        return out

    # -- server dispatch ----------------------------------------------------

    def _check_dispatch(
        self,
        protocol: SourceModule,
        server: SourceModule,
        ops: Dict[str, int],
        findings: List[Finding],
    ) -> None:
        handlers: Dict[str, int] = {}
        for node in ast.walk(server.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name.startswith("_op_"):
                handlers[node.name[len("_op_") :].upper()] = node.lineno
        for op in sorted(set(ops) - set(handlers)):
            findings.append(
                Finding(
                    file=protocol.relpath,
                    line=ops[op],
                    rule=self.id,
                    severity="error",
                    message=(
                        "op %s is catalogued in OPS but %s defines no "
                        "_op_%s handler" % (op, server.relpath, op.lower())
                    ),
                    hint="add the handler or retire the op from OPS",
                )
            )
        for op in sorted(set(handlers) - set(ops)):
            findings.append(
                Finding(
                    file=server.relpath,
                    line=handlers[op],
                    rule=self.id,
                    severity="error",
                    message=(
                        "handler _op_%s has no op %s in the OPS catalogue — "
                        "it is unreachable (dispatch validates against OPS)"
                        % (op.lower(), op)
                    ),
                    hint="add %s to OPS in %s or delete the handler"
                    % (op, protocol.relpath),
                )
            )

    # -- clients -------------------------------------------------------------

    def _client_ops(self, client: SourceModule) -> Dict[str, int]:
        """Ops the client issues: first literal arg of ``*._request(...)``."""
        out: Dict[str, int] = {}
        for node in ast.walk(client.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_request"
                and node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                out.setdefault(arg.value, node.lineno)
        return out

    def _check_client(
        self,
        protocol: SourceModule,
        client: SourceModule,
        ops: Dict[str, int],
        findings: List[Finding],
    ) -> None:
        issued = self._client_ops(client)
        for op in sorted(set(ops) - set(issued)):
            findings.append(
                Finding(
                    file=protocol.relpath,
                    line=ops[op],
                    rule=self.id,
                    severity="error",
                    message=(
                        "op %s is catalogued in OPS but %s never issues it "
                        "(no _request(%r) call)" % (op, client.relpath, op)
                    ),
                    hint="add the client method or retire the op",
                )
            )
        for op in sorted(set(issued) - set(ops)):
            findings.append(
                Finding(
                    file=client.relpath,
                    line=issued[op],
                    rule=self.id,
                    severity="error",
                    message=(
                        "client issues op %s which is not in the OPS "
                        "catalogue — the server will reject it with "
                        "UNKNOWN_OP" % op
                    ),
                    hint="add %s to OPS in %s or fix the client literal"
                    % (op, protocol.relpath),
                )
            )

    # -- error codes ---------------------------------------------------------

    def _check_server_codes(
        self,
        protocol: SourceModule,
        server: SourceModule,
        codes: Dict[str, int],
        findings: List[Finding],
    ) -> None:
        emitted: Dict[str, int] = {}
        for node in ast.walk(server.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ""
            if isinstance(node.func, ast.Name):
                name = node.func.id
            elif isinstance(node.func, ast.Attribute):
                name = node.func.attr
            arg: Optional[ast.expr] = None
            if name == "_RequestError" and node.args:
                arg = node.args[0]
            elif name == "error_response" and len(node.args) >= 2:
                arg = node.args[1]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                emitted.setdefault(arg.value, arg.lineno)
        for code in sorted(set(emitted) - set(codes)):
            findings.append(
                Finding(
                    file=server.relpath,
                    line=emitted[code],
                    rule=self.id,
                    severity="error",
                    message=(
                        "server emits error code %s which is not in the "
                        "ERROR_CODES catalogue" % code
                    ),
                    hint="add %s to ERROR_CODES in %s (error_response "
                    "rejects uncatalogued codes at runtime)"
                    % (code, protocol.relpath),
                )
            )
        # Liveness: a catalogued code must at least appear as a literal
        # somewhere in the server module (emission sites aren't always
        # direct calls — some codes flow through tables/variables).
        literals: Set[str] = {
            node.value
            for node in ast.walk(server.tree)
            if isinstance(node, ast.Constant) and isinstance(node.value, str)
        }
        for code in sorted(set(codes) - literals):
            findings.append(
                Finding(
                    file=protocol.relpath,
                    line=codes[code],
                    rule=self.id,
                    severity="error",
                    message=(
                        "error code %s is catalogued in ERROR_CODES but "
                        "never appears in %s — dead contract"
                        % (code, server.relpath)
                    ),
                    hint="emit it from the server or retire the code",
                )
            )

    # -- docs tables ---------------------------------------------------------

    def _doc_table(
        self, doc: TextFile, header: str
    ) -> Optional[Dict[str, int]]:
        """First-cell tokens of the markdown table whose header's first
        cell (lowercased, backticks stripped) equals ``header``.

        Returns token -> 1-based line number, or None when no such
        table exists in the doc.
        """
        lines = doc.text.splitlines()
        found = None
        i = 0
        while i < len(lines):
            line = lines[i]
            if line.lstrip().startswith("|"):
                cells = [c.strip().strip("`").lower() for c in line.split("|")]
                cells = [c for c in cells if c]
                if cells and cells[0] == header:
                    table: Dict[str, int] = {}
                    j = i + 1
                    while j < len(lines) and lines[j].lstrip().startswith("|"):
                        match = _ROW_TOKEN_RE.match(lines[j])
                        if match:
                            table.setdefault(match.group(1), j + 1)
                        j += 1
                    if found is None:
                        found = {}
                    found.update(table)
                    i = j
                    continue
            i += 1
        return found

    def _check_doc_table(
        self,
        protocol: SourceModule,
        doc: TextFile,
        header: str,
        catalogue: Dict[str, int],
        kind: str,
        findings: List[Finding],
    ) -> None:
        table = self._doc_table(doc, header)
        if table is None:
            findings.append(
                Finding(
                    file=doc.relpath,
                    line=1,
                    rule=self.id,
                    severity="error",
                    message=(
                        "no markdown table with header cell %r found — the "
                        "%s catalogue is undocumented" % (header, kind)
                    ),
                    hint="add the §12 table (first header cell %r, one "
                    "backticked token per row)" % header,
                )
            )
            return
        for token in sorted(set(catalogue) - set(table)):
            findings.append(
                Finding(
                    file=protocol.relpath,
                    line=catalogue[token],
                    rule=self.id,
                    severity="error",
                    message=(
                        "%s %s is catalogued but missing from the %s table "
                        "in %s" % (kind, token, header, doc.relpath)
                    ),
                    hint="add a row for %s to the docs table" % token,
                )
            )
        for token in sorted(set(table) - set(catalogue)):
            findings.append(
                Finding(
                    file=doc.relpath,
                    line=table[token],
                    rule=self.id,
                    severity="error",
                    message=(
                        "docs table lists %s %s which is not in the "
                        "catalogue in %s" % (kind, token, protocol.relpath)
                    ),
                    hint="remove the stale row or add %s to the catalogue"
                    % token,
                )
            )
