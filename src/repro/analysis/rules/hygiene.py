"""Cheap hygiene rules: ``import-hygiene`` and ``bare-except``.

``import-hygiene`` flags

* imports inside function bodies (they hide dependencies and re-execute
  the import machinery on hot paths) unless wrapped in a
  ``try/except ImportError`` feature probe, and
* the same module imported twice at top level.

``bare-except`` flags exception handlers that catch everything —
``except:``, ``except Exception:``, ``except BaseException:`` (alone or
in a tuple) — *and* do not re-raise. A handler whose body contains a
``raise`` is a cleanup-and-propagate pattern and passes. The fix is a
typed exception from :mod:`repro.errors` (usually
:class:`~repro.errors.TardisError` or a subclass).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.analysis.engine import (
    SEVERITY_WARNING,
    Finding,
    Rule,
    SourceModule,
)

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _import_names(stmt: ast.stmt) -> List[str]:
    """Duplicate-detection keys: one per bound name so ``from x import a``
    and ``from x import b`` are distinct imports."""
    if isinstance(stmt, ast.Import):
        return [alias.name for alias in stmt.names]
    if isinstance(stmt, ast.ImportFrom):
        module = stmt.module or "." * stmt.level
        return ["%s:%s" % (module, alias.name) for alias in stmt.names]
    return []


def _is_feature_probe(func: ast.AST, node: ast.stmt) -> bool:
    """True when ``node`` sits in a ``try`` whose handlers catch
    ImportError/ModuleNotFoundError — the accepted optional-dependency
    gate."""
    for parent in ast.walk(func):
        if not isinstance(parent, ast.Try):
            continue
        if node not in parent.body:
            continue
        for handler in parent.handlers:
            for name in _handler_names(handler):
                if name in ("ImportError", "ModuleNotFoundError"):
                    return True
    return False


def _handler_names(handler: ast.ExceptHandler) -> List[str]:
    if handler.type is None:
        return [""]
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: List[str] = []
    for node in types:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


class ImportHygieneRule(Rule):
    id = "import-hygiene"
    severity = SEVERITY_WARNING
    description = (
        "imports belong at the top of the module; function-local imports "
        "need a try/except ImportError feature probe"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        # Duplicate top-level imports.
        seen: Dict[str, int] = {}
        for stmt in module.tree.body:
            for name in _import_names(stmt):
                if name in seen:
                    findings.append(
                        Finding(
                            file=module.relpath,
                            line=stmt.lineno,
                            rule=self.id,
                            severity=self.severity,
                            message=(
                                "%r already imported at line %d"
                                % (name, seen[name])
                            ),
                            hint="drop the duplicate import",
                        )
                    )
                else:
                    seen[name] = stmt.lineno
        # Function-local imports.
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, (ast.Import, ast.ImportFrom)):
                    continue
                if _is_feature_probe(node, sub):
                    continue
                findings.append(
                    Finding(
                        file=module.relpath,
                        line=sub.lineno,
                        rule=self.id,
                        severity=self.severity,
                        message=(
                            "import inside %s(); move it to module scope"
                            % node.name
                        ),
                        hint="hoist to the top of the file, or wrap in "
                        "try/except ImportError if the dependency is optional",
                    )
                )
        return findings


class BareExceptRule(Rule):
    id = "bare-except"
    description = (
        "handlers must catch typed exceptions (see repro.errors) or re-raise"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = self._broad_catch(node)
            if caught is None:
                continue
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                continue  # cleanup-and-propagate
            findings.append(
                Finding(
                    file=module.relpath,
                    line=node.lineno,
                    rule=self.id,
                    severity=self.severity,
                    message=(
                        "handler catches %s and does not re-raise" % caught
                    ),
                    hint="catch a typed exception from repro.errors "
                    "(e.g. TardisError, GarbageCollectedError) or re-raise",
                )
            )
        return findings

    def _broad_catch(self, handler: ast.ExceptHandler) -> Optional[str]:
        names = _handler_names(handler)
        if "" in names:
            return "everything (bare except)"
        for name in names:
            if name in _BROAD_NAMES:
                return name
        return None
