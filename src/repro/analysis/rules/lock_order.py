"""``lock-order``: static deadlock detection over the lock graph.

The dynamic lockset checker (:mod:`repro.analysis.lockset`) watches lock
*events* at runtime and so only sees orders that an execution actually
exercised. This rule is its static complement: it builds the whole-repo
lock-acquisition graph from the source and reports *potential* orders —
including ones no test has ever interleaved.

Lock identity is ``ClassName._attr``. A class's locks are the union of

* ``self.X = threading.Lock()`` / ``RLock()`` assignments in
  ``__init__`` (the ctor name records reentrancy), and
* ``self.X`` lock specs in its ``_GUARDED_BY`` map.

Edges ``A -> B`` mean "A was held while B was acquired", gathered from:

* **direct nesting** — ``with self.b:`` lexically inside
  ``with self.a:``;
* **one-level interprocedural** — a call of ``self.m(...)`` or
  ``self.<attr>.m(...)`` while a lock is held contributes edges to
  every lock the callee's body acquires. ``<attr>``'s class is inferred
  from ``self.<attr> = ClassName(...)`` in ``__init__``, resolved
  through the project-wide class index (same-module classes win;
  ambiguous names are skipped rather than guessed).

Findings:

* a strongly-connected component of two or more locks is a potential
  deadlock cycle (two threads entering it from different ends can each
  hold what the other wants);
* a self-edge on a non-reentrant ``Lock`` — re-acquiring a lock the
  caller already holds, directly or through a one-deep call — is a
  guaranteed self-deadlock. ``RLock`` self-edges are reentrant and
  legal, and are skipped.

The analysis over-approximates: it assumes any call made under a lock
runs under that lock (no release-before-call reasoning). A site that is
provably safe carries ``# tardis: ignore[lock-order]`` with a reason on
the line the finding names.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Project, Rule, SourceModule
from repro.analysis.rules.lock_discipline import _guarded_by_map, _self_attr

#: a lock node in the acquisition graph.
LockNode = Tuple[str, str]  # (class name, lock attribute)


class _ClassInfo:
    """Per-class facts the graph builder needs."""

    __slots__ = ("module", "node", "lock_ctors", "lock_attrs", "methods", "attr_types")

    def __init__(self, module: SourceModule, node: ast.ClassDef):
        self.module = module
        self.node = node
        #: lock attr -> "Lock" | "RLock" | "" (declared but ctor unseen).
        self.lock_ctors: Dict[str, str] = {}
        self.methods: Dict[str, ast.AST] = {}
        #: attr -> class name of ``self.attr = ClassName(...)`` in __init__.
        self.attr_types: Dict[str, str] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt
        init = self.methods.get("__init__")
        if init is not None:
            self._scan_init(init)
        for guard in _guarded_by_map(node).values():
            attr = guard.lock_attr
            if attr is not None and attr not in self.lock_ctors:
                self.lock_ctors[attr] = ""
        self.lock_attrs: Set[str] = set(self.lock_ctors)

    def _scan_init(self, init: ast.AST) -> None:
        for sub in ast.walk(init):
            if not isinstance(sub, ast.Assign):
                continue
            value = sub.value
            # Peel conditional assignments: ``X(...) if flag else Y(...)``
            # contributes both arms (ambiguity is resolved to "skip" when
            # they disagree).
            calls: List[ast.Call] = []
            if isinstance(value, ast.Call):
                calls = [value]
            elif isinstance(value, ast.IfExp):
                calls = [v for v in (value.body, value.orelse) if isinstance(v, ast.Call)]
            if not calls:
                continue
            names = []
            for call in calls:
                if isinstance(call.func, ast.Attribute):
                    names.append(call.func.attr)
                elif isinstance(call.func, ast.Name):
                    names.append(call.func.id)
            for target in sub.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                if names and all(n in ("Lock", "RLock") for n in names):
                    self.lock_ctors[target.attr] = names[0]
                elif len(set(names)) == 1 and names[0][:1].isupper():
                    self.attr_types[target.attr] = names[0]


class LockOrderRule(Rule):
    id = "lock-order"
    description = (
        "the whole-repo lock-acquisition graph must be acyclic (cycles "
        "are potential deadlocks; self-edges on a Lock are guaranteed ones)"
    )

    def check_project(self, project: Project) -> List[Finding]:
        infos: List[_ClassInfo] = []
        by_name: Dict[str, List[_ClassInfo]] = {}
        for name, entries in project.classes().items():
            for module, node in entries:
                info = _ClassInfo(module, node)
                infos.append(info)
                by_name.setdefault(name, []).append(info)

        #: (src, dst) -> (file, line) of the first site producing the edge.
        edges: Dict[Tuple[LockNode, LockNode], Tuple[str, int]] = {}
        for info in infos:
            if not info.lock_attrs:
                continue
            for name, method in info.methods.items():
                if name in ("__init__", "__new__"):
                    continue
                self._walk(info, by_name, method.body, (), edges)

        findings = self._self_edge_findings(infos, edges)
        findings.extend(self._cycle_findings(edges))
        return findings

    # -- graph construction ------------------------------------------------

    def _walk(
        self,
        info: _ClassInfo,
        by_name: Dict[str, List["_ClassInfo"]],
        stmts: List[ast.stmt],
        held: Tuple[LockNode, ...],
        edges: Dict[Tuple[LockNode, LockNode], Tuple[str, int]],
    ) -> None:
        for stmt in stmts:
            # Nested defs run later, in an unknown lock context.
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                new_held = held
                for item in stmt.items:
                    attr = _self_attr(item.context_expr)
                    if attr is not None and attr in info.lock_attrs:
                        node: LockNode = (info.node.name, attr)
                        site = (info.module.relpath, item.context_expr.lineno)
                        for prior in new_held:
                            edges.setdefault((prior, node), site)
                        if node not in new_held:
                            new_held = new_held + (node,)
                self._scan_calls(info, by_name, stmt, held, edges)
                self._walk(info, by_name, stmt.body, new_held, edges)
                continue
            self._scan_calls(info, by_name, stmt, held, edges)
            for block in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, block, None)
                if isinstance(inner, list) and inner and isinstance(
                    inner[0], ast.stmt
                ):
                    self._walk(info, by_name, inner, held, edges)
            for handler in getattr(stmt, "handlers", []):
                self._walk(info, by_name, handler.body, held, edges)

    def _scan_calls(
        self,
        info: _ClassInfo,
        by_name: Dict[str, List["_ClassInfo"]],
        stmt: ast.stmt,
        held: Tuple[LockNode, ...],
        edges: Dict[Tuple[LockNode, LockNode], Tuple[str, int]],
    ) -> None:
        """One-level interprocedural edges from calls made while locked."""
        if not held:
            return
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if not isinstance(node, ast.Call):
                continue
            callee = self._resolve_callee(info, by_name, node.func)
            if callee is None:
                continue
            callee_info, method = callee
            site = (info.module.relpath, node.lineno)
            for acquired in self._acquired_in(callee_info, method):
                for prior in held:
                    edges.setdefault((prior, acquired), site)

    def _resolve_callee(
        self,
        info: _ClassInfo,
        by_name: Dict[str, List["_ClassInfo"]],
        func: ast.expr,
    ) -> Optional[Tuple["_ClassInfo", ast.AST]]:
        """``self.m`` or ``self.attr.m`` -> (class info, method AST)."""
        if not isinstance(func, ast.Attribute):
            return None
        receiver = func.value
        # self.m(...)
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            method = info.methods.get(func.attr)
            return (info, method) if method is not None else None
        # self.attr.m(...)
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
        ):
            cls_name = info.attr_types.get(receiver.attr)
            if cls_name is None:
                return None
            candidates = by_name.get(cls_name, [])
            same_module = [c for c in candidates if c.module is info.module]
            if len(same_module) == 1:
                target = same_module[0]
            elif len(candidates) == 1:
                target = candidates[0]
            else:
                return None  # unknown or ambiguous across modules
            method = target.methods.get(func.attr)
            return (target, method) if method is not None else None
        return None

    def _acquired_in(self, info: _ClassInfo, method: ast.AST) -> List[LockNode]:
        """Locks ``method`` acquires anywhere in its own body (the one
        interprocedural level; calls it makes are not chased further)."""
        acquired: Set[LockNode] = set()
        for node in ast.walk(method):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if attr is not None and attr in info.lock_attrs:
                    acquired.add((info.node.name, attr))
        return sorted(acquired)

    # -- findings ----------------------------------------------------------

    def _self_edge_findings(
        self,
        infos: List[_ClassInfo],
        edges: Dict[Tuple[LockNode, LockNode], Tuple[str, int]],
    ) -> List[Finding]:
        ctor_of: Dict[LockNode, str] = {}
        for info in infos:
            for attr, ctor in info.lock_ctors.items():
                ctor_of[(info.node.name, attr)] = ctor
        findings: List[Finding] = []
        for (src, dst), (file, line) in sorted(edges.items(), key=lambda e: e[1]):
            if src != dst:
                continue
            if ctor_of.get(src, "") == "RLock":
                continue  # reentrant: legal
            findings.append(
                Finding(
                    file=file,
                    line=line,
                    rule=self.id,
                    severity="error",
                    message=(
                        "non-reentrant lock %s.%s re-acquired while already "
                        "held — guaranteed self-deadlock" % src
                    ),
                    hint="drop the inner acquisition (the caller holds the "
                    "lock) or make the lock an RLock",
                )
            )
        return findings

    def _cycle_findings(
        self, edges: Dict[Tuple[LockNode, LockNode], Tuple[str, int]]
    ) -> List[Finding]:
        graph: Dict[LockNode, Set[LockNode]] = {}
        for (src, dst), _ in edges.items():
            if src == dst:
                continue
            graph.setdefault(src, set()).add(dst)
            graph.setdefault(dst, set())
        findings: List[Finding] = []
        for scc in _sccs(graph):
            if len(scc) < 2:
                continue
            nodes = sorted(scc)
            # Anchor the finding at the lexicographically first edge
            # inside the cycle, for a stable, suppressible location.
            cycle_edges = sorted(
                (site, src, dst)
                for (src, dst), site in edges.items()
                if src in scc and dst in scc and src != dst
            )
            (file, line), _, _ = cycle_edges[0]
            findings.append(
                Finding(
                    file=file,
                    line=line,
                    rule=self.id,
                    severity="error",
                    message=(
                        "lock-order cycle (potential deadlock): %s"
                        % " -> ".join("%s.%s" % n for n in nodes)
                    ),
                    hint="pick one global acquisition order for these locks "
                    "and restructure the nested/interprocedural "
                    "acquisitions to follow it",
                )
            )
        findings.sort(key=lambda f: (f.file, f.line, f.message))
        return findings


def _sccs(graph: Dict[LockNode, Set[LockNode]]) -> List[Set[LockNode]]:
    """Tarjan's strongly-connected components, iterative for safety."""
    index_of: Dict[LockNode, int] = {}
    lowlink: Dict[LockNode, int] = {}
    on_stack: Set[LockNode] = set()
    stack: List[LockNode] = []
    sccs: List[Set[LockNode]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index_of:
            continue
        work: List[Tuple[LockNode, Optional[LockNode], List[LockNode]]] = [
            (root, None, sorted(graph.get(root, ())))
        ]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, parent, children = work[-1]
            advanced = False
            while children:
                child = children.pop(0)
                if child not in index_of:
                    index_of[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work[-1] = (node, parent, children)
                    work.append((child, node, sorted(graph.get(child, ()))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[child])
            if advanced:
                continue
            work.pop()
            if parent is not None:
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                scc: Set[LockNode] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.add(member)
                    if member == node:
                        break
                sccs.append(scc)
    return sccs
