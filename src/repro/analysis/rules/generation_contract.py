"""``generation-contract``: every StateDAG mutator must move the generation.

The read-path caches (docs/internals.md §10) are sound only if every
event that can change what a read observes advances
``StateDAG.generation`` — and every *destructive* event (one that
rewrites existing bookkeeping rather than appending) also moves
``destructive_gen`` via :meth:`StateDAG.mark_destructive`. This rule
makes the first half of that contract checkable: any ``StateDAG`` method
that mutates the protected structures

* ``self._states`` / ``self._leaves`` / ``self._promotions``
  (the DAG's vertex, leaf, and promotion tables),
* any state's ``path_mask`` (the fork tables the Figure 7 check runs on),
* the ancestry index's bit universe (``self.ancestry.release_forks``),

must bump the generation (``self.generation += 1``,
:meth:`bump_generation`, or :meth:`mark_destructive`) on **every exit
path** that runs after a mutation.

Exit paths are ``return`` statements, ``raise`` statements, and the
implicit fall-off end of the method. The analysis is source-order
linear: an exit is flagged when some mutation appears earlier in the
method and no bump appears between the last such mutation and the exit.
This approximation is exact for the guard-clauses-then-mutate-then-bump
shape used throughout the codebase; code that genuinely interleaves
mutations and early exits should restructure or carry a justified
``# tardis: ignore[generation-contract]``.

Whether a bump should have been :meth:`mark_destructive` rather than
:meth:`bump_generation` is a semantic question the static rule does not
answer; the fuzz suite (tests/test_readpath_cache.py) covers it.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.engine import Finding, Rule, SourceModule

#: classes this contract applies to, by name.
TARGET_CLASSES = frozenset({"StateDAG"})

#: self-attributes whose mutation requires a generation bump.
PROTECTED_FIELDS = frozenset({"_states", "_leaves", "_promotions"})

#: attribute stores on *any* object that count as fork-table mutations.
PROTECTED_ATTRS = frozenset({"path_mask"})

#: ancestry-index calls that rewrite the bit universe.
ANCESTRY_MUTATORS = frozenset({"release_forks"})

#: generation-advancing calls.
BUMP_CALLS = frozenset({"bump_generation", "mark_destructive"})

MUTATORS = frozenset(
    {"add", "append", "clear", "discard", "extend", "insert", "pop",
     "popitem", "remove", "setdefault", "update"}
)


def _self_attr_root(node: ast.AST) -> Optional[str]:
    while True:
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        else:
            return None


class GenerationContractRule(Rule):
    id = "generation-contract"
    description = (
        "StateDAG methods mutating _states/_leaves/_promotions/fork tables "
        "must bump generation on every exit path"
    )

    def check_module(self, module: SourceModule) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name in TARGET_CLASSES:
                for stmt in node.body:
                    if not isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if stmt.name == "__init__":
                        continue
                    findings.extend(self._check_method(module, node, stmt))
        return findings

    # -- per-method analysis ----------------------------------------------

    def _check_method(
        self, module: SourceModule, cls: ast.ClassDef, func: ast.AST
    ) -> List[Finding]:
        mutations: List[Tuple[int, str]] = []  # (line, description)
        bumps: List[int] = []
        exits: List[Tuple[int, str]] = []  # (line, kind)

        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func:
                    continue  # nested defs are separate scopes; skip header
            mut = self._mutation_of(node)
            if mut is not None:
                mutations.append((node.lineno, mut))
            if self._is_bump(node):
                bumps.append(node.lineno)
            if isinstance(node, ast.Return):
                exits.append((node.lineno, "return"))
            elif isinstance(node, ast.Raise):
                exits.append((node.lineno, "raise"))

        if not mutations:
            return []

        body = getattr(func, "body", [])
        last_line = max(
            (n.lineno for n in ast.walk(func) if hasattr(n, "lineno")),
            default=func.lineno,
        )
        # Implicit fall-off end: only when the last top-level statement is
        # not itself a return/raise.
        if body and not isinstance(body[-1], (ast.Return, ast.Raise)):
            exits.append((last_line + 1, "end of method"))

        findings: List[Finding] = []
        for exit_line, kind in exits:
            preceding = [(ln, desc) for ln, desc in mutations if ln < exit_line]
            if not preceding:
                continue  # guard-clause exit before any mutation
            last_mutation = max(ln for ln, _ in preceding)
            if any(last_mutation <= bump <= exit_line for bump in bumps):
                continue
            desc = next(d for ln, d in preceding if ln == last_mutation)
            report_line = min(exit_line, last_line)
            findings.append(
                Finding(
                    file=module.relpath,
                    line=report_line,
                    rule=self.id,
                    severity="error",
                    message=(
                        "%s.%s mutates %s (line %d) but the %s at line %d is "
                        "not preceded by a generation bump"
                        % (
                            cls.name,
                            getattr(func, "name", "?"),
                            desc,
                            last_mutation,
                            kind,
                            report_line,
                        )
                    ),
                    hint="call self.bump_generation() (append-only events) or "
                    "self.mark_destructive() (rewrites) before this exit",
                )
            )
        return findings

    # -- node classification ----------------------------------------------

    def _mutation_of(self, node: ast.AST) -> Optional[str]:
        """A description of the protected mutation this node performs, if any."""
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                desc = self._store_target(target)
                if desc is not None:
                    return desc
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                desc = self._store_target(target)
                if desc is not None:
                    return desc
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in MUTATORS:
                root = _self_attr_root(node.func.value)
                if root in PROTECTED_FIELDS:
                    return "self.%s" % root
            if attr in ANCESTRY_MUTATORS:
                root = _self_attr_root(node.func.value)
                if root == "ancestry":
                    return "self.ancestry.%s" % attr
        return None

    def _store_target(self, target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Attribute):
            if target.attr in PROTECTED_ATTRS:
                return ".%s" % target.attr
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr in PROTECTED_FIELDS
            ):
                return "self.%s" % target.attr
        elif isinstance(target, ast.Subscript):
            root = _self_attr_root(target)
            if root in PROTECTED_FIELDS:
                return "self.%s" % root
        return None

    def _is_bump(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in BUMP_CALLS:
                value = node.func.value
                return isinstance(value, ast.Name) and value.id == "self"
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in ("generation", "destructive_gen")
                ):
                    return True
        return False
