"""Static analysis and concurrency contracts for the TARDiS reproduction.

``tardis check`` (see :mod:`repro.tools.cli`) runs the AST rule engine
over ``src/repro``; :mod:`repro.analysis.lockset` adds an Eraser-style
dynamic checker for guards the static rules cannot see. The contracts
themselves — ``_GUARDED_BY`` maps, the generation-bump rule, the metric
catalogue — are documented in ``docs/internals.md`` §11.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.engine import (
    Finding,
    Project,
    Report,
    Rule,
    SourceModule,
    load_baseline,
    load_project,
    run_check,
)
from repro.analysis.lockset import LocksetChecker, TrackedLock
from repro.analysis.rules import ALL_RULES, default_rules, rules_by_id

__all__ = [
    "ALL_RULES",
    "Finding",
    "LocksetChecker",
    "Project",
    "Report",
    "Rule",
    "SourceModule",
    "TrackedLock",
    "check_repo",
    "default_rules",
    "load_baseline",
    "load_project",
    "rules_by_id",
    "run_check",
]


def check_repo(
    src_root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[dict] = None,
) -> Report:
    """Run the full check over this checkout (convenience for CLI/tests).

    ``src_root`` defaults to the installed ``repro`` package directory,
    which inside the repo is ``src/repro`` — so tests and the CLI agree
    on the lint target without path plumbing. ``baseline`` is a multiset
    from :func:`load_baseline`; matching findings are dropped and
    counted in ``Report.baselined``.
    """
    if src_root is None:
        src_root = Path(__file__).resolve().parent.parent
    project = load_project(Path(src_root))
    return run_check(
        project,
        list(rules) if rules is not None else default_rules(),
        baseline=baseline,
    )
