"""TARDiS: a branch-and-merge transactional key-value store.

A from-scratch Python reproduction of *TARDiS: A Branch-and-Merge
Approach To Weak Consistency* (Crooks et al., SIGMOD 2016): a
multi-master, asynchronously replicated, transactional key-value store
whose fundamental abstraction is the branch. Conflicting transactions
fork the datastore state instead of blocking or aborting
(branch-on-conflict); each branch appears sequential to the transactions
extending it (inter-branch isolation); and applications merge branches
atomically, when and how they choose (application-driven cross-object
merge).

Quick start::

    from repro import TardisStore

    store = TardisStore("siteA")
    session = store.session("alice")
    with store.begin(session=session) as t:
        t.put("greeting", "hello")
"""

from repro.core import (
    AncestorConstraint,
    AncestryIndex,
    And,
    AnyConstraint,
    ClientSession,
    CommitPipeline,
    ForkPath,
    ForkPoint,
    GarbageCollector,
    IdAllocator,
    KBranchingConstraint,
    MergeTransaction,
    NoBranchingConstraint,
    Or,
    ParentConstraint,
    ReadCommittedConstraint,
    ROOT_ID,
    SerializabilityConstraint,
    SnapshotIsolationConstraint,
    State,
    StateDAG,
    StateId,
    StateIdConstraint,
    TardisStore,
    TOMBSTONE,
    Transaction,
    checkpoint_store,
    recover_store,
)
from repro import errors

__version__ = "1.0.0"

__all__ = [
    "AncestorConstraint",
    "AncestryIndex",
    "And",
    "AnyConstraint",
    "ClientSession",
    "CommitPipeline",
    "ForkPath",
    "ForkPoint",
    "GarbageCollector",
    "IdAllocator",
    "KBranchingConstraint",
    "MergeTransaction",
    "NoBranchingConstraint",
    "Or",
    "ParentConstraint",
    "ReadCommittedConstraint",
    "ROOT_ID",
    "SerializabilityConstraint",
    "SnapshotIsolationConstraint",
    "State",
    "StateDAG",
    "StateId",
    "StateIdConstraint",
    "TardisStore",
    "TOMBSTONE",
    "Transaction",
    "checkpoint_store",
    "recover_store",
    "errors",
    "__version__",
]
