"""Transaction mixes (§7.1.1).

Each client issues transactions of six operations in a closed loop.
Read-only transactions contain six reads; read-write transactions
contain three reads and three writes (read-modify-write on the same
keys, which is what makes contended keys conflict). Four mixes are
defined by the ratio of read-only to read-write transactions:
Read-Only (100/0), Read-Heavy (75/25), Mixed (25/75), and
Write-Heavy (0/100); plus the single-op blind-write workload of
Figure 10(d).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.workload.ycsb import make_generator

READ_ONLY = "read-only"
READ_HEAVY = "read-heavy"
MIXED = "mixed"
WRITE_HEAVY = "write-heavy"
BLIND_WRITE = "blind-write"

#: fraction of read-only transactions per mix.
_RO_FRACTION = {
    READ_ONLY: 1.0,
    READ_HEAVY: 0.75,
    MIXED: 0.25,
    WRITE_HEAVY: 0.0,
}


@dataclass
class TxnSpec:
    """One transaction to execute.

    Either a static ``ops`` list of ``('r', key)`` / ``('w', key, value)``
    tuples, or a dynamic ``program``: a zero-argument callable returning a
    generator that *yields* such tuples and *receives* the read value
    back for every ``('r', ...)`` it yields — used by application
    workloads (Retwis) whose writes depend on what they read. On an
    abort-retry the program is instantiated afresh.
    """

    ops: List[Tuple] = field(default_factory=list)
    read_only: bool = False
    program: Optional[Callable[[], Any]] = None
    #: static SELECT-FOR-UPDATE hint for dynamic programs.
    write_hint: frozenset = frozenset()

    def __iter__(self):
        return iter(self.ops)

    @property
    def write_keys(self) -> frozenset:
        """Keys this transaction will write.

        Lock-based clients use this as a SELECT-FOR-UPDATE hint: reads of
        to-be-written keys take the exclusive lock up front instead of
        upgrading later, the standard way applications avoid
        upgrade-deadlock storms on read-modify-write transactions.
        """
        if self.program is not None:
            return self.write_hint
        return frozenset(op[1] for op in self.ops if op[0] == "w")


class YCSBWorkload:
    """Generates the paper's microbenchmark transactions."""

    def __init__(
        self,
        mix: str = READ_HEAVY,
        n_keys: int = 1000,
        pattern: str = "uniform",
        theta: float = 0.99,
        reads_per_rw: int = 3,
        writes_per_rw: int = 3,
        ops_per_ro: int = 6,
        read_modify_write: bool = False,
    ):
        if mix not in _RO_FRACTION and mix != BLIND_WRITE:
            raise ValueError("unknown mix %r" % mix)
        self.mix = mix
        self.n_keys = n_keys
        self.pattern = pattern
        self._gen = make_generator(pattern, n_keys, theta=theta)
        self._reads = reads_per_rw
        self._writes = writes_per_rw
        self._ro_ops = ops_per_ro
        #: False (default): reads and writes hit distinct keys, as in the
        #: paper's setup (writes are blind; lock-based stores contend on
        #: waits, not on S->X upgrades). True: write back the keys read
        #: (counter-style read-modify-write transactions).
        self.read_modify_write = read_modify_write
        self._counter = 0

    @property
    def preload(self) -> Dict[str, int]:
        """Initial database contents: every key set to 0."""
        return {_key(i): 0 for i in range(self.n_keys)}

    def _pick_keys(self, rng: random.Random, count: int) -> List[str]:
        keys: List[str] = []
        seen = set()
        while len(keys) < count:
            key = self._gen.next(rng)
            if key in seen:
                continue
            seen.add(key)
            keys.append(_key(key))
        return keys

    def next_txn(self, rng: random.Random) -> TxnSpec:
        self._counter += 1
        if self.mix == BLIND_WRITE:
            key = _key(self._gen.next(rng))
            return TxnSpec([("w", key, self._counter)], read_only=False)
        if rng.random() < _RO_FRACTION[self.mix]:
            keys = self._pick_keys(rng, self._ro_ops)
            return TxnSpec([("r", k) for k in keys], read_only=True)
        if self.read_modify_write:
            keys = self._pick_keys(rng, max(self._reads, self._writes))
            ops: List[Tuple] = [("r", k) for k in keys[: self._reads]]
            ops += [("w", k, self._counter) for k in keys[: self._writes]]
        else:
            keys = self._pick_keys(rng, self._reads + self._writes)
            ops = [("r", k) for k in keys[: self._reads]]
            ops += [("w", k, self._counter) for k in keys[self._reads :]]
        return TxnSpec(ops, read_only=False)


def _key(i: int) -> str:
    return "key%06d" % i
