"""Closed-loop client runner over the discrete-event simulation (§7.1).

``run_simulation`` drives ``n_clients`` logical clients against one
system adapter: each client repeatedly draws a transaction from the
workload, executes it operation by operation (suspending on lock waits,
retrying from ``begin`` on aborts), and the simulated service time of
every operation is executed on a bounded pool of server cores. The
result captures the paper's measurements: throughput, latency
distribution, per-operation cost breakdown (Table 3), abort/retry
counts, and the fraction of useful work (Figure 14d).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs import metrics as _met
from repro.obs.series import DivergenceMonitor
from repro.sim.adapters import SystemAdapter
from repro.sim.des import Resource, Simulator
from repro.workload.stats import LatencyStats, OpBreakdown


@dataclass
class RunConfig:
    n_clients: int = 8
    duration_ms: float = 300.0
    warmup_ms: float = 30.0
    cores: int = 8
    seed: int = 0
    #: run adapter.maintenance() (merge + GC for TARDiS) this often.
    maintenance_interval_ms: Optional[float] = None
    #: record a time-series sample this often (Figure 13).
    sample_interval_ms: Optional[float] = None
    #: sample the DivergenceMonitor's windowed series (branch count, DAG
    #: width/depth, merge debt, replication lag) this often; folded into
    #: ``obs_metrics`` as ``{"type": "series", ...}`` entries.
    series_interval_ms: Optional[float] = None
    #: attach a per-run observability registry (folded into
    #: ``RunResult.obs_metrics``); the run installs it as the library
    #: default so store-level counters land in it too.
    collect_metrics: bool = True
    #: record engine for the stores built from this config (a name from
    #: :func:`repro.storage.engine.available_engines`).
    engine: str = "btree"


@dataclass
class RunResult:
    system: str
    n_clients: int
    duration_ms: float
    commits: int = 0
    aborts: int = 0
    lock_waits: int = 0
    throughput_tps: float = 0.0
    mean_latency_ms: float = 0.0
    p50_latency_ms: float = 0.0
    p99_latency_ms: float = 0.0
    goodput: float = 1.0
    utilization: float = 0.0
    op_breakdown_ms: Dict[str, float] = field(default_factory=dict)
    adapter_stats: Dict[str, Any] = field(default_factory=dict)
    samples: List[Dict[str, Any]] = field(default_factory=list)
    #: snapshot of the per-run observability registry (counter values,
    #: histogram summaries), keyed by metric name.
    obs_metrics: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            "%-8s clients=%-3d tput=%8.0f txn/s  lat=%.3f ms (p99 %.3f)  "
            "aborts=%-5d goodput=%.2f"
            % (
                self.system,
                self.n_clients,
                self.throughput_tps,
                self.mean_latency_ms,
                self.p99_latency_ms,
                self.aborts,
                self.goodput,
            )
        )


class _Measure:
    """Shared measurement state for one run."""

    def __init__(self, warmup: float, registry: Optional[_met.MetricsRegistry] = None):
        self.warmup = warmup
        #: per-run observability registry (None when metrics are off).
        self.registry = registry
        #: registry-side run_* metrics are pre-registered (so they are
        #: present in obs_metrics even for an idle run) but only written
        #: by :meth:`flush` — per-transaction they would duplicate the
        #: native counters below at a measurable wall cost.
        if registry is not None:
            self.commit_counter = registry.counter("run_commit_total")
            self.abort_counter = registry.counter("run_abort_total")
            self.latency_hist = registry.histogram("run_txn_latency_ms")
        else:
            self.commit_counter = self.abort_counter = self.latency_hist = None
        self.commits = 0
        self.aborts = 0
        self.lock_waits = 0
        self.latency = LatencyStats()
        self.breakdown = OpBreakdown()
        self.useful_work = 0.0
        self.wasted_work = 0.0
        self.wait_time = 0.0
        self.maintenance_work = 0.0
        self.commits_total = 0  # including warmup, for time series

    def flush(self) -> None:
        """Mirror the natively tracked run counters into the registry."""
        if self.registry is None:
            return
        self.commit_counter.inc(self.commits)
        self.abort_counter.inc(self.aborts)
        self.latency_hist.record_many(self.latency.samples)


class _Client:
    def __init__(
        self,
        cid: str,
        sim: Simulator,
        cores: Resource,
        adapter: SystemAdapter,
        workload,
        rng: random.Random,
        measure: _Measure,
        waiters: Dict[Any, "_Client"],
        serial: Resource,
    ):
        self.cid = cid
        self.sim = sim
        self.cores = cores
        self.adapter = adapter
        self.workload = workload
        self.rng = rng
        self.m = measure
        self.waiters = waiters
        self.serial = serial
        self.spec_writes: frozenset = frozenset()
        self.gen = None
        self.outcome = None
        self.spec = None
        self.txn_start = 0.0
        self.attempt_work = 0.0
        self.attempt_costs: Dict[str, float] = {}
        self.attempt_counts: Dict[str, int] = {}
        self.block_start = 0.0
        self.block_op = "get"

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._next_txn()

    def _next_txn(self) -> None:
        self.spec = self.workload.next_txn(self.rng)
        self.spec_writes = self.spec.write_keys
        self.txn_start = self.sim.now
        self._start_attempt()

    def _start_attempt(self) -> None:
        self.attempt_work = 0.0
        self.attempt_costs = {}
        self.attempt_counts = {}
        self.gen = self._run_txn()
        self._advance()

    def _advance(self) -> None:
        try:
            directive = next(self.gen)
        except StopIteration:
            self._finish_attempt()
            return
        kind = directive[0]
        if kind == "work":
            _kind, op, cost, serial = directive
            self._charge(op, cost)
            pressure = self.adapter.pressure()
            if serial > 0:
                parallel = max(cost - serial, 0.0) * pressure
                self.serial.execute(
                    serial * pressure,
                    lambda: self.cores.execute(parallel, self._advance),
                )
            else:
                self.cores.execute(cost * pressure, self._advance)
        elif kind == "block":
            _kind, token, op = directive
            self.block_start = self.sim.now
            self.block_op = op
            if getattr(token, "granted", False):
                # The lock was handed over while this client was still
                # paying for the acquire attempt; don't sleep forever.
                self.sim.schedule(0.0, self.wake)
            else:
                self.waiters[id(token)] = self
        else:  # pragma: no cover - defensive
            raise RuntimeError("unknown directive %r" % (directive,))

    def wake(self) -> None:
        waited = self.sim.now - self.block_start
        # Lock waiting counts into the blocked operation's latency
        # (Table 3: BDB get/put costs grow with contention) but not
        # into useful work (Figure 14d).
        self.attempt_costs[self.block_op] = (
            self.attempt_costs.get(self.block_op, 0.0) + waited
        )
        self.m.wait_time += waited
        self.m.lock_waits += 1
        self._advance()

    def _charge(self, op: str, cost: float) -> None:
        self.attempt_work += cost
        self.attempt_costs[op] = self.attempt_costs.get(op, 0.0) + cost
        self.attempt_counts[op] = self.attempt_counts.get(op, 0) + 1

    # -- the transaction itself ------------------------------------------------

    def _run_txn(self):
        adapter = self.adapter
        self.outcome = None
        txn, cost = adapter.begin(self.cid, self.spec.read_only)
        # The fixed per-transaction server overhead is charged under its
        # own label so the Table 3 begin column reports only the
        # consistency-layer work.
        overhead = min(getattr(adapter.costs, "txn_overhead", 0.0), cost)
        if overhead:
            yield ("work", "overhead", overhead, 0.0)
        yield ("work", "begin", cost - overhead, 0.0)
        if self.spec.program is not None:
            program = self.spec.program()
            feed = None
            advance = lambda: program.send(feed)
        else:
            static = iter(self.spec.ops)
            feed = None
            advance = lambda: next(static)
        while True:
            try:
                op = advance()
            except StopIteration:
                break
            op_name = "get" if op[0] == "r" else "put"
            while True:
                if op[0] == "r":
                    result = adapter.read(
                        txn, op[1], will_write=op[1] in self.spec_writes
                    )
                else:
                    result = adapter.write(txn, op[1], op[2])
                self._release(result.wakeups)
                if result.cost:
                    yield ("work", op_name, result.cost, result.serial)
                if result.status == "ok":
                    feed = result.value if op[0] == "r" else None
                    break
                if result.status == "wait":
                    yield ("block", result.token, op_name)
                    continue
                self.outcome = "abort"
                return
        pre = adapter.commit_request(txn)
        if pre is not None and pre.cost:
            # Commit pre-phase: time elapses while the transaction is
            # still live (locks held / waiting for the validator).
            yield ("work", "commit", pre.cost, pre.serial)
        result = adapter.commit(txn)
        self._release(result.wakeups)
        yield ("work", "commit", result.cost, result.serial)
        self.outcome = "ok" if result.status == "ok" else "abort"

    def _release(self, wakeups) -> None:
        for token in wakeups:
            client = self.waiters.pop(id(token), None)
            if client is not None:
                self.sim.schedule(0.0, client.wake)

    def _finish_attempt(self) -> None:
        # Registry-side run_* metrics are NOT recorded here: they are
        # exact duplicates of what _Measure already tracks natively, so
        # the runner flushes them once at end of run (_Measure.flush)
        # instead of paying a per-transaction counter/histogram call.
        measuring = self.sim.now >= self.m.warmup
        if self.outcome == "ok":
            self.m.commits_total += 1
            if measuring:
                self.m.commits += 1
                latency = self.sim.now - self.txn_start
                self.m.latency.record(latency)
                self.m.breakdown.merge_costs(self.attempt_costs, self.attempt_counts)
                self.m.useful_work += self.attempt_work
            self.adapter_commit_hook()
            self._next_txn()
        else:
            if measuring:
                self.m.aborts += 1
                self.m.wasted_work += self.attempt_work
            self._start_attempt()  # retry the same transaction

    def adapter_commit_hook(self) -> None:
        hook = getattr(self.adapter, "on_client_commit", None)
        if hook is not None:
            hook(self.cid)


def run_simulation(
    adapter: SystemAdapter, workload, config: RunConfig
) -> RunResult:
    """Execute one closed-loop run and aggregate the measurements."""
    sim = Simulator()
    cores = Resource(sim, config.cores)
    serial = Resource(sim, 1)  # per-system critical section (OCC validation)
    registry = (
        _met.MetricsRegistry(enabled=True) if config.collect_metrics else None
    )
    measure = _Measure(config.warmup_ms, registry)
    waiters: Dict[Any, _Client] = {}

    # The per-run registry doubles as the library default for the
    # duration of the run, so the stores' own counters (forks, merges,
    # GC cycles) fold into the same place as the runner's histograms.
    previous_default = None
    if registry is not None:
        previous_default = _met.set_default_registry(registry)
    try:
        preload = getattr(workload, "preload", None)
        if preload:
            adapter.preload(preload)

        clients = [
            _Client(
                "client-%d" % i,
                sim,
                cores,
                adapter,
                workload,
                random.Random(config.seed * 7919 + i),
                measure,
                waiters,
                serial,
            )
            for i in range(config.n_clients)
        ]
        for client in clients:
            client.start()

        if config.maintenance_interval_ms:

            def run_maintenance() -> None:
                cost = adapter.maintenance()
                measure.maintenance_work += cost
                if cost:
                    cores.execute(cost, lambda: None)
                sim.schedule(config.maintenance_interval_ms, run_maintenance)

            sim.schedule(config.maintenance_interval_ms, run_maintenance)

        samples: List[Dict[str, Any]] = []
        if config.sample_interval_ms:

            def take_sample() -> None:
                entry = {"t_ms": sim.now, "commits": measure.commits_total}
                entry.update(adapter.stats())
                samples.append(entry)
                sim.schedule(config.sample_interval_ms, take_sample)

            sim.schedule(config.sample_interval_ms, take_sample)

        monitor = None
        store = getattr(adapter, "store", None)
        if config.series_interval_ms and store is not None:
            monitor = DivergenceMonitor(
                {store.site: store}, clock=lambda: sim.now
            )
            monitor.install(sim, config.series_interval_ms)

        sim.run(until=config.duration_ms)
    finally:
        if registry is not None:
            _met.set_default_registry(previous_default)

    measure.flush()
    window_s = max(config.duration_ms - config.warmup_ms, 1e-9) / 1000.0
    total_work = (
        measure.useful_work
        + measure.wasted_work
        + measure.wait_time
        + measure.maintenance_work
    )
    result = RunResult(
        system=adapter.name,
        n_clients=config.n_clients,
        duration_ms=config.duration_ms,
        commits=measure.commits,
        aborts=measure.aborts,
        lock_waits=measure.lock_waits,
        throughput_tps=measure.commits / window_s,
        mean_latency_ms=measure.latency.mean,
        p50_latency_ms=measure.latency.p50,
        p99_latency_ms=measure.latency.p99,
        goodput=(measure.useful_work / total_work) if total_work > 0 else 1.0,
        # busy_time counts service scheduled before the cutoff even when
        # it completes after it, so clamp the rounding overshoot.
        utilization=min(
            1.0, cores.busy_time / (config.cores * config.duration_ms)
        ),
        op_breakdown_ms=measure.breakdown.as_dict(),
        adapter_stats=adapter.stats(),
        samples=samples,
        obs_metrics=registry.to_dict() if registry is not None else {},
    )
    if monitor is not None:
        result.obs_metrics.update(monitor.to_dict())
    return result


def sweep_clients(
    adapter_factory: Callable[[], SystemAdapter],
    workload_factory: Callable[[], Any],
    client_counts: List[int],
    config: Optional[RunConfig] = None,
) -> List[RunResult]:
    """Run the same workload at increasing client counts.

    Fresh adapter and workload per point — this is how the paper's
    throughput/latency curves (Figures 9 and 10) are produced.
    """
    base = config or RunConfig()
    results = []
    for n in client_counts:
        cfg = RunConfig(
            n_clients=n,
            duration_ms=base.duration_ms,
            warmup_ms=base.warmup_ms,
            cores=base.cores,
            seed=base.seed,
            maintenance_interval_ms=base.maintenance_interval_ms,
            sample_interval_ms=base.sample_interval_ms,
            series_interval_ms=base.series_interval_ms,
            collect_metrics=base.collect_metrics,
            engine=base.engine,
        )
        results.append(run_simulation(adapter_factory(), workload_factory(), cfg))
    return results
