"""YCSB-style key access distributions (§7.1.1).

The paper uses the two access patterns of the YCSB benchmark: uniform,
and Zipfian with p = 0.99. The Zipfian generator is the standard
Gray et al. rejection-free construction used by YCSB itself, with the
zeta normalization constants precomputed.
"""

from __future__ import annotations

import math
import random
from typing import Optional


class UniformGenerator:
    """Keys drawn uniformly from ``[0, n)``."""

    name = "uniform"

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one key")
        self.n = n

    def next(self, rng: random.Random) -> int:
        return rng.randrange(self.n)


class ZipfianGenerator:
    """Zipfian-distributed keys over ``[0, n)`` (YCSB's algorithm).

    ``theta`` is YCSB's skew constant; the paper's "p = 0.99". Item 0 is
    the hottest key. The generator scatters ranks over the key space by
    hashing when ``scramble`` is true (YCSB's ScrambledZipfian), which
    avoids accidental locality; the paper's contention behaviour only
    needs the rank frequencies, so scrambling defaults to off.
    """

    name = "zipfian"

    def __init__(self, n: int, theta: float = 0.99, scramble: bool = False):
        if n < 1:
            raise ValueError("need at least one key")
        if not 0 < theta < 1:
            raise ValueError("theta must be in (0, 1)")
        self.n = n
        self.theta = theta
        self.scramble = scramble
        self._zetan = self._zeta(n, theta)
        self._zeta2 = self._zeta(min(n, 2), theta)
        self._alpha = 1.0 / (1.0 - theta)
        if n <= 2:
            # Degenerate key spaces: eta's normalization divides by zero;
            # rank selection below only needs eta for ranks >= 2.
            self._eta = 0.0
        else:
            self._eta = (1 - (2.0 / n) ** (1 - theta)) / (
                1 - self._zeta2 / self._zetan
            )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))

    def next(self, rng: random.Random) -> int:
        u = rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self.theta:
            rank = 1
        else:
            rank = int(self.n * (self._eta * u - self._eta + 1) ** self._alpha)
            rank = min(rank, self.n - 1)
        if not self.scramble:
            return rank
        return _fnv1a_64(rank) % self.n


def _fnv1a_64(value: int) -> int:
    digest = 0xCBF29CE484222325
    for _ in range(8):
        digest ^= value & 0xFF
        digest = (digest * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        value >>= 8
    return digest


def make_generator(
    pattern: str, n: int, theta: float = 0.99, scramble: bool = False
):
    """Factory: ``"uniform"`` or ``"zipfian"``."""
    if pattern == "uniform":
        return UniformGenerator(n)
    if pattern == "zipfian":
        return ZipfianGenerator(n, theta=theta, scramble=scramble)
    raise ValueError("unknown access pattern %r" % pattern)
