"""Workload generation and the closed-loop simulation runner (§7.1.1).

Transaction mixes and access patterns follow the paper's setup: six
operations per transaction (read-write transactions contain three reads
and three writes), read-only/read-heavy/mixed/write-heavy mixes, and
YCSB uniform and Zipfian (p=0.99) key-access distributions.
"""

from repro.workload.ycsb import UniformGenerator, ZipfianGenerator
from repro.workload.mixes import (
    TxnSpec,
    YCSBWorkload,
    READ_ONLY,
    READ_HEAVY,
    MIXED,
    WRITE_HEAVY,
)
from repro.workload.stats import LatencyStats
from repro.workload.runner import RunConfig, RunResult, run_simulation, sweep_clients

__all__ = [
    "UniformGenerator",
    "ZipfianGenerator",
    "TxnSpec",
    "YCSBWorkload",
    "READ_ONLY",
    "READ_HEAVY",
    "MIXED",
    "WRITE_HEAVY",
    "LatencyStats",
    "RunConfig",
    "RunResult",
    "run_simulation",
    "sweep_clients",
]
