"""Measurement helpers: latency aggregation and per-op breakdowns."""

from __future__ import annotations

import math
from typing import Dict, List


class LatencyStats:
    """Mean / percentile aggregation over recorded samples."""

    def __init__(self) -> None:
        self._samples: List[float] = []
        self._sum = 0.0
        #: sorted view of the samples, built lazily on the first
        #: percentile query and reused until the next record() — results
        #: report p50/p99/mean together, so without the cache every
        #: accessor re-sorted the full sample list (O(n log n) each).
        self._sorted: List[float] = []
        #: number of times the sorted view was (re)built; tests use this
        #: to pin the caching behaviour.
        self.sort_count = 0

    def record(self, value: float) -> None:
        self._samples.append(value)
        self._sum += value
        self._sorted = []

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        """The raw samples, in recording order (read-only view)."""
        return self._samples

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return self._sum / len(self._samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self._samples:
            return 0.0
        if not self._sorted:
            self._sorted = sorted(self._samples)
            self.sort_count += 1
        data = self._sorted
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)


class OpBreakdown:
    """Mean cost per operation type (the Table 3 rows)."""

    OPS = ("begin", "get", "put", "commit")

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {op: 0.0 for op in self.OPS}
        self._counts: Dict[str, int] = {op: 0 for op in self.OPS}

    def record(self, op: str, cost: float, count: int = 1) -> None:
        if op not in self._totals:
            return
        self._totals[op] += cost
        self._counts[op] += count

    def merge_costs(self, costs: Dict[str, float], counts: Dict[str, int]) -> None:
        for op, cost in costs.items():
            self.record(op, cost, counts.get(op, 1))

    def mean(self, op: str) -> float:
        count = self._counts.get(op, 0)
        if not count:
            return 0.0
        return self._totals[op] / count

    def as_dict(self) -> Dict[str, float]:
        return {op: self.mean(op) for op in self.OPS}
