"""Command-line interface: ``python -m repro.tools.cli <command>``.

Commands:

* ``bench`` — run one microbenchmark point (system × mix × pattern) and
  print the result row; useful for quick what-if runs without pytest.
* ``demo`` — run a canned branch/merge walkthrough and dump the State
  DAG as Graphviz DOT.
* ``recover`` — inspect a write-ahead log: replay it into a fresh store
  and print the recovery report and store summary.
* ``metrics`` — a "tardis top": run a short workload with the
  observability subsystem enabled and print branch health (per-branch
  depth, conflict rate, GC debt), the metric registry, and recent trace
  events; ``--json`` / ``--prometheus`` switch the output format.
* ``trace`` — run a scripted three-site replicated scenario (concurrent
  commits, replication, merge) and print one transaction's
  causally-ordered multi-site timeline; ``--dump`` also freezes a
  flight-recorder dump to JSON.
* ``flight`` — pretty-print a flight-recorder dump produced by the
  divergence monitor (or ``trace --dump``).
* ``check`` — run the static-analysis rules (lock discipline,
  generation contract, metric-name drift, hygiene) over the package and
  exit nonzero on findings; ``--format=json`` is the CI gate's input.
* ``serve`` — run the asyncio network server (docs/internals.md §12):
  one TardisStore behind the length-prefixed JSON wire protocol, until
  SIGINT/SIGTERM; prints a ``TARDIS_SERVE_REPORT`` JSON line after the
  graceful drain and exits nonzero if any session leaked.
  ``--obs-interval`` turns on the live ops sampler (§14).
* ``top`` — terminal dashboard against a running server: divergence
  gauges, sparkline series, per-op latency percentiles, per-shard and
  per-worker health, and the live alert strip. ``--live`` streams the
  server's push frames; without it, one snapshot table and exit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import analysis
from repro.core.recovery import recover_store
from repro.core.store import TardisStore
from repro.obs import MetricsRegistry, Tracer, export
from repro.obs import metrics as _met
from repro.obs import tracing as _trc
from repro.obs.context import format_timeline, trace_id_of
from repro.obs.flight import FlightRecorder, format_flight
from repro.replication.cluster import Cluster
from repro.server.server import TardisServer, run_server
from repro.sim.adapters import OCCAdapter, TardisAdapter, TwoPLAdapter
from repro.storage.engine import available_engines, available_record_stores
from repro.tools.inspect import dag_to_dot, describe_store, store_summary
from repro.tools.top import cmd_top
from repro.workload import RunConfig, YCSBWorkload, run_simulation
from repro.workload.mixes import BLIND_WRITE, MIXED, READ_HEAVY, READ_ONLY, WRITE_HEAVY

SYSTEMS = {
    "tardis": lambda engine=None: TardisAdapter(branching=True, engine=engine),
    "tardis-nb": lambda engine=None: TardisAdapter(branching=False, engine=engine),
    "bdb": lambda engine=None: TwoPLAdapter(engine=engine),
    "occ": lambda engine=None: OCCAdapter(engine=engine),
}

MIXES = {
    "read-only": READ_ONLY,
    "read-heavy": READ_HEAVY,
    "mixed": MIXED,
    "write-heavy": WRITE_HEAVY,
    "blind-write": BLIND_WRITE,
}


def cmd_bench(args) -> int:
    adapter = SYSTEMS[args.system](engine=args.engine)
    workload = YCSBWorkload(
        mix=MIXES[args.mix], n_keys=args.keys, pattern=args.pattern
    )
    config = RunConfig(
        n_clients=args.clients,
        duration_ms=args.duration,
        warmup_ms=args.duration * 0.1,
        cores=args.cores,
        seed=args.seed,
        maintenance_interval_ms=5.0 if args.system.startswith("tardis") else None,
        engine=args.engine,
    )
    result = run_simulation(adapter, workload, config)
    if args.json:
        payload = {
            "system": result.system,
            "mix": args.mix,
            "pattern": args.pattern,
            "clients": result.n_clients,
            "throughput_tps": result.throughput_tps,
            "mean_latency_ms": result.mean_latency_ms,
            "p99_latency_ms": result.p99_latency_ms,
            "aborts": result.aborts,
            "goodput": result.goodput,
            "op_breakdown_ms": result.op_breakdown_ms,
            "adapter_stats": result.adapter_stats,
        }
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(result.summary())
    return 0


def cmd_demo(args) -> int:
    store = TardisStore("demo")
    alice, bruno = store.session("alice"), store.session("bruno")
    store.put("counter", 0, session=alice)
    t1, t2 = store.begin(session=alice), store.begin(session=bruno)
    t1.put("counter", t1.get("counter") + 1)
    t2.put("counter", t2.get("counter") + 10)
    t1.commit()
    t2.commit()
    merge = store.begin_merge(session=alice)
    fork = merge.find_fork_points()[0]
    base = merge.get_for_id("counter", fork)
    merge.put("counter", base + sum(v - base for v in merge.get_all("counter")))
    merge.commit()
    if args.dot:
        print(dag_to_dot(store))
    else:
        print(describe_store(store, keys=["counter"]))
    return 0


def cmd_recover(args) -> int:
    store, report = recover_store("recovered", args.wal)
    print("recovery report:", json.dumps(report))
    print()
    print(describe_store(store))
    return 0


def cmd_metrics(args) -> int:
    adapter = SYSTEMS[args.system](engine=args.engine)
    workload = YCSBWorkload(
        mix=MIXES[args.mix], n_keys=args.keys, pattern=args.pattern
    )
    config = RunConfig(
        n_clients=args.clients,
        duration_ms=args.duration,
        warmup_ms=args.duration * 0.1,
        cores=args.cores,
        seed=args.seed,
        maintenance_interval_ms=5.0 if args.system.startswith("tardis") else None,
        # The runner would swap in its own per-run registry; we install
        # ours instead so the tracer and exporters see live objects.
        collect_metrics=False,
        engine=args.engine,
    )
    registry = MetricsRegistry(enabled=True)
    tracer = Tracer(capacity=max(args.events * 8, 1024), enabled=True)
    previous_registry = _met.set_default_registry(registry)
    previous_tracer = _trc.set_default_tracer(tracer)
    try:
        result = run_simulation(adapter, workload, config)
    finally:
        _met.set_default_registry(previous_registry)
        _trc.set_default_tracer(previous_tracer)

    if args.json:
        print(export.to_json(registry, tracer, event_limit=args.events))
        return 0
    if args.prometheus:
        print(export.to_prometheus(registry))
        return 0

    data = registry.to_dict()

    def counter(name):
        return data.get(name, {}).get("value", 0)

    print(result.summary())
    store = getattr(adapter, "store", None)
    if store is not None:
        commits = counter("tardis_txn_commit_total")
        forks = counter("tardis_branch_fork_total")
        merges = counter("tardis_branch_merge_total")
        print()
        print("-- branches " + "-" * 48)
        print(
            "leaves=%d  live_states=%d  conflict_rate=%.2f%% (%d forks / %d commits)  merges=%d"
            % (
                len(store.dag.leaves()),
                len(store.dag),
                100.0 * forks / max(commits, 1),
                forks,
                commits,
                merges,
            )
        )
        for leaf in store.dag.leaves():
            print(
                "  leaf %-24s depth=%-3d %s"
                % (leaf.id, len(leaf.fork_path), "merge" if leaf.is_merge else "")
            )
        print()
        print("-- gc debt " + "-" * 49)
        print(
            "cycles=%d  states_removed=%d  promoted=%d  promotion_table=%d  ceilings=%d"
            % (
                counter("tardis_gc_cycle_total"),
                counter("tardis_gc_states_removed_total"),
                counter("tardis_gc_records_promoted_total"),
                store.dag.promotion_table_size,
                len(store.gc.ceilings),
            )
        )
        print()
        print("-- read-path caches " + "-" * 40)

        def hit_rate(prefix):
            hits = registry.counter_value("%s_hit_total" % prefix)
            misses = registry.counter_value("%s_miss_total" % prefix)
            rate = 100.0 * hits / max(hits + misses, 1)
            return hits, misses, rate

        begin_hits, begin_misses, begin_rate = hit_rate("tardis_begin_cache")
        vis_hits, vis_misses, vis_rate = hit_rate("tardis_vis_cache")
        print(
            "begin: %5.1f%% (%d/%d)  visibility: %5.1f%% (%d/%d)  invalidations=%d  generation=%d"
            % (
                begin_rate,
                begin_hits,
                begin_hits + begin_misses,
                vis_rate,
                vis_hits,
                vis_hits + vis_misses,
                registry.counter_value("tardis_vis_cache_invalidations_total"),
                store.dag.generation,
            )
        )

    print()
    print("-- metrics " + "-" * 49)
    for name in sorted(data):
        entry = data[name]
        if entry["type"] == "counter" or entry["type"] == "gauge":
            print("  %-40s %s" % (name, entry["value"]))
        elif entry["type"] == "histogram" and entry["count"]:
            hist = export.histogram_from_snapshot(name, entry)
            print(
                "  %-40s count=%d p50=%.4f p99=%.4f max=%.4f"
                % (name, entry["count"], hist.quantile(0.5), hist.quantile(0.99), entry["max"])
            )

    events = tracer.events(limit=args.events)
    if events:
        print()
        print(
            "-- recent events (ring dropped=%d) " % tracer.dropped + "-" * 25
        )
        for event in events:
            attrs = " ".join("%s=%s" % kv for kv in sorted(event.attrs.items()))
            print("  %10.4f %-18s %s" % (event.ts, event.kind, attrs))
    return 0


def cmd_trace(args) -> int:
    """Scripted replicated scenario + one transaction's causal timeline.

    Two sites commit to the same key concurrently (before any gossip
    lands), replication forks every site's DAG, and a third site merges —
    so the printed timeline reads commit → replicate → apply → merge.
    """
    cluster = Cluster(n_sites=3, trace=True)
    us, eu, asia = (cluster.stores[s] for s in ("us", "eu", "asia"))

    sid_us = us.put(args.key, "from-us")
    sid_eu = eu.put(args.key, "from-eu")  # concurrent: no gossip yet
    cluster.run(until=300.0)  # both commits replicate; every DAG forks

    merge = asia.begin_merge()
    for key in merge.find_conflict_writes():
        merge.put(key, "+".join(sorted(str(v) for v in merge.get_all(key))))
    merge.commit()
    cluster.run(until=600.0)  # the merge replicates back out

    trace_id = args.txn or trace_id_of(sid_us)
    timeline = cluster.timeline(trace_id)
    if not timeline:
        known = ", ".join(
            sorted({str(e.attrs.get("trace")) for e in cluster.events() if e.attrs.get("trace")})
        )
        print("no events for trace %r; known traces: %s" % (trace_id, known))
        return 1
    print(format_timeline(timeline, trace_id))

    if args.dump:
        recorder = FlightRecorder(
            cluster.tracers, cluster.stores, monitor=cluster.monitor()
        )
        recorder.monitor.sample()
        doc = recorder.snapshot(reason="manual dump (tardis trace --dump)")
        with open(args.dump, "w") as handle:
            json.dump(doc, handle, indent=2, default=str, sort_keys=True)
            handle.write("\n")
        print()
        print("flight dump written to %s" % args.dump)
    return 0


def cmd_flight(args) -> int:
    with open(args.dump) as handle:
        doc = json.load(handle)
    print(format_flight(doc, event_limit=args.events))
    return 0


def cmd_check(args) -> int:
    if args.list_rules:
        for cls in analysis.ALL_RULES:
            print("%-20s %s" % (cls.id, cls.description))
        return 0
    picked = args.only if args.only else args.rules
    try:
        rules = (
            analysis.rules_by_id(picked.split(","))
            if picked
            else analysis.default_rules()
        )
        if args.exclude:
            dropped = args.exclude.split(",")
            analysis.rules_by_id(dropped)  # validate ids; raises KeyError
            rules = [rule for rule in rules if rule.id not in set(dropped)]
    except KeyError as exc:
        valid = ", ".join(cls.id for cls in analysis.ALL_RULES)
        print("unknown rule %s (valid: %s)" % (exc, valid), file=sys.stderr)
        return 2
    baseline = None
    if args.baseline:
        try:
            baseline = analysis.load_baseline(Path(args.baseline))
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            print("bad baseline %s: %s" % (args.baseline, exc), file=sys.stderr)
            return 2
    src_root = Path(args.root).resolve() if args.root else None
    report = analysis.check_repo(src_root=src_root, rules=rules, baseline=baseline)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.format())
    return report.exit_code


def cmd_serve(args) -> int:
    if args.metrics:
        _met.enable(True)
    server = TardisServer(
        host=args.host,
        port=args.port,
        site=args.site,
        engine=args.engine,
        shards=args.shards,
        shard_workers=args.shard_workers,
        max_connections=args.max_connections,
        request_timeout=args.request_timeout,
        drain_timeout=args.drain_timeout,
        obs_sample_interval=args.obs_interval,
    )
    report = run_server(server, port_file=args.port_file)
    if args.metrics:
        print(export.to_prometheus(_met.DEFAULT))
    print("TARDIS_SERVE_REPORT " + json.dumps(report, sort_keys=True), flush=True)
    failed = report.get("leaked_sessions") or report.get("leaked_workers")
    return 0 if not failed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.cli",
        description="TARDiS reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="run one microbenchmark point")
    bench.add_argument("--system", choices=sorted(SYSTEMS), default="tardis")
    bench.add_argument("--engine", choices=available_engines(), default="btree")
    bench.add_argument("--mix", choices=sorted(MIXES), default="read-heavy")
    bench.add_argument("--pattern", choices=["uniform", "zipfian"], default="uniform")
    bench.add_argument("--clients", type=int, default=16)
    bench.add_argument("--keys", type=int, default=400)
    bench.add_argument("--cores", type=int, default=8)
    bench.add_argument("--duration", type=float, default=200.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--json", action="store_true")
    bench.set_defaults(func=cmd_bench)

    demo = sub.add_parser("demo", help="branch/merge walkthrough")
    demo.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    demo.set_defaults(func=cmd_demo)

    recover = sub.add_parser("recover", help="replay a write-ahead log")
    recover.add_argument("wal", help="path to the commit log")
    recover.set_defaults(func=cmd_recover)

    metrics = sub.add_parser(
        "metrics", help="run a short workload and show branch/GC health"
    )
    metrics.add_argument("--system", choices=sorted(SYSTEMS), default="tardis")
    metrics.add_argument("--engine", choices=available_engines(), default="btree")
    metrics.add_argument("--mix", choices=sorted(MIXES), default="mixed")
    metrics.add_argument("--pattern", choices=["uniform", "zipfian"], default="uniform")
    metrics.add_argument("--clients", type=int, default=16)
    metrics.add_argument("--keys", type=int, default=400)
    metrics.add_argument("--cores", type=int, default=8)
    metrics.add_argument("--duration", type=float, default=100.0)
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument("--events", type=int, default=10, help="trace events to show")
    metrics.add_argument("--json", action="store_true", help="dump registry + events as JSON")
    metrics.add_argument("--prometheus", action="store_true", help="Prometheus text format")
    metrics.set_defaults(func=cmd_metrics)

    trace = sub.add_parser(
        "trace", help="replicated scenario + one transaction's causal timeline"
    )
    trace.add_argument(
        "--txn",
        default=None,
        help="trace id (state id repr, e.g. s1@us); default: the first us commit",
    )
    trace.add_argument("--key", default="counter", help="contended key")
    trace.add_argument(
        "--dump", default=None, help="also write a flight-recorder dump here"
    )
    trace.set_defaults(func=cmd_trace)

    flight = sub.add_parser("flight", help="pretty-print a flight-recorder dump")
    flight.add_argument("dump", help="path to a flight dump JSON")
    flight.add_argument("--events", type=int, default=50, help="trace events to show")
    flight.set_defaults(func=cmd_flight)

    check = sub.add_parser(
        "check",
        help="static analysis: lock discipline, lock order, async "
        "discipline, generation contract, metric drift, wire contract, "
        "hygiene (docs/internals.md §11)",
    )
    check.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="json is the machine-readable CI form",
    )
    check.add_argument(
        "--root", default=None,
        help="package directory to lint (default: the installed repro package)",
    )
    check.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids (default: all)",
    )
    check.add_argument(
        "--only", default=None,
        help="synonym of --rules: run only these rule ids",
    )
    check.add_argument(
        "--exclude", default=None,
        help="comma-separated rule ids to skip",
    )
    check.add_argument(
        "--baseline", default=None,
        help="prior --format=json report; findings it records are "
        "dropped (gate on no *new* findings)",
    )
    check.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    check.set_defaults(func=cmd_check)

    serve = sub.add_parser(
        "serve", help="run the network server (docs/internals.md §12)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=7145,
        help="TCP port; 0 picks an ephemeral port (see --port-file)",
    )
    serve.add_argument("--site", default="net", help="store site name")
    serve.add_argument(
        "--engine",
        choices=available_engines() + available_record_stores(),
        default="btree",
        help="flat record engine, or a whole record store "
        "(sharded / proc-sharded)",
    )
    serve.add_argument(
        "--shards", type=int, default=None,
        help="partition records across N shards (implies the sharded store)",
    )
    serve.add_argument(
        "--shard-workers", type=int, default=None,
        help="run the shards in N worker processes (implies proc-sharded)",
    )
    serve.add_argument("--max-connections", type=int, default=128)
    serve.add_argument(
        "--request-timeout", type=float, default=5.0,
        help="per-request timeout in seconds",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=5.0,
        help="graceful-shutdown drain window in seconds",
    )
    serve.add_argument(
        "--port-file", default=None,
        help="write the bound port here once listening (for --port 0)",
    )
    serve.add_argument(
        "--metrics", action="store_true",
        help="enable the obs registry; dump Prometheus text at exit",
    )
    serve.add_argument(
        "--obs-interval", type=float, default=None,
        help="live ops sampler cadence in seconds (default: sampler off; "
        "OBS_SNAPSHOT still samples on demand)",
    )
    serve.set_defaults(func=cmd_serve)

    top = sub.add_parser(
        "top", help="live dashboard for a running server (docs/internals.md §14)"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=7145)
    top.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="shorthand for --host/--port",
    )
    top.add_argument(
        "--session", default=None,
        help="session name to bind (default: server-assigned)",
    )
    top.add_argument(
        "--live", action="store_true",
        help="subscribe to the push stream and re-render per frame "
        "(needs a TTY or --frames; falls back to polling when the "
        "server runs no sampler)",
    )
    top.add_argument(
        "--frames", type=int, default=None,
        help="stop after N rendered frames (default: until Ctrl-C)",
    )
    top.add_argument(
        "--interval", type=float, default=1.0,
        help="polling cadence in seconds when not streaming",
    )
    top.add_argument(
        "--tail", type=int, default=None,
        help="series samples to request/render (default: server's tail)",
    )
    top.add_argument("--width", type=int, default=40, help="sparkline width")
    top.set_defaults(func=cmd_top)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
