"""Command-line interface: ``python -m repro.tools.cli <command>``.

Commands:

* ``bench`` — run one microbenchmark point (system × mix × pattern) and
  print the result row; useful for quick what-if runs without pytest.
* ``demo`` — run a canned branch/merge walkthrough and dump the State
  DAG as Graphviz DOT.
* ``recover`` — inspect a write-ahead log: replay it into a fresh store
  and print the recovery report and store summary.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.store import TardisStore
from repro.sim.adapters import OCCAdapter, TardisAdapter, TwoPLAdapter
from repro.tools.inspect import dag_to_dot, describe_store, store_summary
from repro.workload import RunConfig, YCSBWorkload, run_simulation
from repro.workload.mixes import BLIND_WRITE, MIXED, READ_HEAVY, READ_ONLY, WRITE_HEAVY

SYSTEMS = {
    "tardis": lambda: TardisAdapter(branching=True),
    "tardis-nb": lambda: TardisAdapter(branching=False),
    "bdb": TwoPLAdapter,
    "occ": OCCAdapter,
}

MIXES = {
    "read-only": READ_ONLY,
    "read-heavy": READ_HEAVY,
    "mixed": MIXED,
    "write-heavy": WRITE_HEAVY,
    "blind-write": BLIND_WRITE,
}


def cmd_bench(args) -> int:
    adapter = SYSTEMS[args.system]()
    workload = YCSBWorkload(
        mix=MIXES[args.mix], n_keys=args.keys, pattern=args.pattern
    )
    config = RunConfig(
        n_clients=args.clients,
        duration_ms=args.duration,
        warmup_ms=args.duration * 0.1,
        cores=args.cores,
        seed=args.seed,
        maintenance_interval_ms=5.0 if args.system.startswith("tardis") else None,
    )
    result = run_simulation(adapter, workload, config)
    if args.json:
        payload = {
            "system": result.system,
            "mix": args.mix,
            "pattern": args.pattern,
            "clients": result.n_clients,
            "throughput_tps": result.throughput_tps,
            "mean_latency_ms": result.mean_latency_ms,
            "p99_latency_ms": result.p99_latency_ms,
            "aborts": result.aborts,
            "goodput": result.goodput,
            "op_breakdown_ms": result.op_breakdown_ms,
            "adapter_stats": result.adapter_stats,
        }
        print(json.dumps(payload, indent=2, default=str))
    else:
        print(result.summary())
    return 0


def cmd_demo(args) -> int:
    store = TardisStore("demo")
    alice, bruno = store.session("alice"), store.session("bruno")
    store.put("counter", 0, session=alice)
    t1, t2 = store.begin(session=alice), store.begin(session=bruno)
    t1.put("counter", t1.get("counter") + 1)
    t2.put("counter", t2.get("counter") + 10)
    t1.commit()
    t2.commit()
    merge = store.begin_merge(session=alice)
    fork = merge.find_fork_points()[0]
    base = merge.get_for_id("counter", fork)
    merge.put("counter", base + sum(v - base for v in merge.get_all("counter")))
    merge.commit()
    if args.dot:
        print(dag_to_dot(store))
    else:
        print(describe_store(store, keys=["counter"]))
    return 0


def cmd_recover(args) -> int:
    from repro.core.recovery import recover_store

    store, report = recover_store("recovered", args.wal)
    print("recovery report:", json.dumps(report))
    print()
    print(describe_store(store))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools.cli",
        description="TARDiS reproduction command-line tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    bench = sub.add_parser("bench", help="run one microbenchmark point")
    bench.add_argument("--system", choices=sorted(SYSTEMS), default="tardis")
    bench.add_argument("--mix", choices=sorted(MIXES), default="read-heavy")
    bench.add_argument("--pattern", choices=["uniform", "zipfian"], default="uniform")
    bench.add_argument("--clients", type=int, default=16)
    bench.add_argument("--keys", type=int, default=400)
    bench.add_argument("--cores", type=int, default=8)
    bench.add_argument("--duration", type=float, default=200.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--json", action="store_true")
    bench.set_defaults(func=cmd_bench)

    demo = sub.add_parser("demo", help="branch/merge walkthrough")
    demo.add_argument("--dot", action="store_true", help="emit Graphviz DOT")
    demo.set_defaults(func=cmd_demo)

    recover = sub.add_parser("recover", help="replay a write-ahead log")
    recover.add_argument("wal", help="path to the commit log")
    recover.set_defaults(func=cmd_recover)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
