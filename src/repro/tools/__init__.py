"""Operational tooling: DAG inspection, DOT export, CLI entry points."""

from repro.tools.inspect import dag_to_dot, describe_store, store_summary

__all__ = ["dag_to_dot", "describe_store", "store_summary"]
