"""``tardis top``: a terminal dashboard for a live TARDiS server.

Renders the observability snapshots of docs/internals.md §14 — divergence
gauges, sparkline series, per-op latency percentiles, the per-shard /
per-worker table, and the alert strip — against a running ``tardis
serve``. Two modes:

* **one-shot** (default): one ``OBS_SNAPSHOT`` request, one rendered
  table, exit. Works against any server — with the sampler off the
  server samples on demand.
* **``--live``**: subscribe to the push stream (``OBS_SUBSCRIBE``) and
  re-render on every frame, Ctrl-C to stop. When the server runs no
  sampler the command falls back to polling one-shot snapshots on
  ``--interval``. Live mode engages when stdout is a TTY *or* a frame
  budget (``--frames``) is given; otherwise it degrades to one-shot so
  piping ``tardis top --live`` into a file cannot hang a script.

The renderer is pure (snapshot dict in, string out) so tests and the CI
smoke job assert on the exact text without a pty.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, List, Sequence

from repro.client.client import TardisClient
from repro.errors import NetworkError, ServerError
from repro.obs.sampler import ObsSampler

__all__ = ["sparkline", "render_snapshot", "cmd_top"]

#: eight-level bar glyphs, lowest to highest.
SPARK = "▁▂▃▄▅▆▇█"

#: series rendered as sparkline rows, in display order (base names; the
#: renderer matches any ``base@suffix`` present in the snapshot).
SPARK_SERIES = (
    "tardis_branch_count",
    "tardis_merge_debt",
    "tardis_dag_width",
    "tardis_staleness_ms",
    "tardis_net_sessions",
    "tardis_net_inflight",
    "tardis_net_requests",
    "tardis_net_commits",
)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render ``values`` (oldest first) as a fixed-width bar string."""
    if not values:
        return " " * width
    tail = list(values)[-width:]
    lo = min(tail)
    hi = max(tail)
    span = hi - lo
    chars = []
    for v in tail:
        if span <= 0:
            # A flat series still shows *where* it sits: zero at the
            # floor, anything else mid-scale.
            chars.append(SPARK[0] if hi <= 0 else SPARK[3])
        else:
            chars.append(SPARK[min(7, int((v - lo) / span * 7.999))])
    return "".join(chars).rjust(width, " ")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return "%.1f" % value if value >= 10 else "%.2f" % value
    return str(value)


def render_snapshot(snapshot: Dict[str, Any], width: int = 40) -> str:
    """One snapshot document -> the full dashboard text."""
    lines: List[str] = []
    gauges = snapshot.get("gauges", {})
    counters = snapshot.get("counters", {})
    lines.append(
        "tardis top — site=%s  seq=%d  t=%.1fs  alerts=%d"
        % (
            snapshot.get("site", "?"),
            snapshot.get("seq", 0),
            snapshot.get("t_ms", 0.0) / 1000.0,
            snapshot.get("alerts_total", 0),
        )
    )
    lines.append(
        "branches=%s  width=%s  depth=%s  merge_debt=%s  staleness_ms=%s  states=%s"
        % tuple(
            _fmt(gauges.get(k, 0))
            for k in (
                "branch_count",
                "dag_width",
                "dag_depth",
                "merge_debt",
                "staleness_ms",
                "states",
            )
        )
    )
    lines.append(
        "sessions=%s  inflight=%s  connections=%s  requests=%s  commits=%s  merges=%s"
        % (
            _fmt(gauges.get("sessions", 0)),
            _fmt(gauges.get("inflight", 0)),
            _fmt(gauges.get("connections", 0)),
            _fmt(counters.get("requests_total", 0)),
            _fmt(counters.get("store_commits", 0)),
            _fmt(counters.get("store_merges", 0)),
        )
    )

    series = snapshot.get("series", {})
    if series:
        lines.append("")
        lines.append("-- series " + "-" * (width + 24))
        for base in SPARK_SERIES:
            for name in sorted(series):
                if name == base or name.startswith(base + "@"):
                    samples = series[name]
                    values = [v for _, v in samples]
                    last = values[-1] if values else 0
                    lines.append(
                        "  %-28s %s %s"
                        % (name, sparkline(values, width), _fmt(last))
                    )

    latency = snapshot.get("latency_ms", {})
    if latency:
        lines.append("")
        lines.append("-- request latency (ms) " + "-" * (width + 10))
        lines.append(
            "  %-14s %8s %8s %8s %8s %8s" % ("op", "count", "p50", "p90", "p99", "max")
        )
        for op in sorted(latency):
            row = latency[op]
            lines.append(
                "  %-14s %8d %8.2f %8.2f %8.2f %8.2f"
                % (op, row["count"], row["p50"], row["p90"], row["p99"], row["max"])
            )

    shards = snapshot.get("shards")
    if shards:
        lines.append("")
        lines.append("-- shards " + "-" * (width + 24))
        accesses = shards.get("accesses", [])
        for i, count in enumerate(accesses):
            lines.append("  shard %-3d accesses=%d" % (i, count))
        workers = shards.get("workers")
        if workers:
            lines.append(
                "  workers: %d/%d alive  dead=%s  leaked=%s"
                % (
                    shards.get("workers_alive", 0),
                    shards.get("n_workers", 0),
                    shards.get("workers_dead", []),
                    shards.get("leaked_workers", 0),
                )
            )
            for w in workers:
                ping = "%.1fms" % w["ping_ms"] if "ping_ms" in w else "-"
                lines.append(
                    "  worker %-2d shards=%s %-5s queue=%d ping=%s"
                    % (
                        w["worker"],
                        w["shards"],
                        "up" if w["alive"] else "DEAD",
                        w["queue_depth"],
                        ping,
                    )
                )

    alerts = snapshot.get("alerts", [])
    if alerts:
        lines.append("")
        lines.append("!! alerts " + "!" * (width + 24))
        for alert in alerts[-5:]:
            lines.append("  [%8.1fs] %s" % (alert["t_ms"] / 1000.0, alert["reason"]))

    return "\n".join(lines)


def cmd_top(args: Any) -> int:
    """The ``tardis top`` entry point (wired up in :mod:`repro.tools.cli`)."""
    if getattr(args, "connect", None):
        host, _, port = args.connect.rpartition(":")
        args.host, args.port = host or args.host, int(port)
    is_tty = sys.stdout.isatty()
    live = bool(args.live) and (is_tty or args.frames is not None)
    # Clearing the screen between frames only makes sense on a real
    # terminal; under --frames (tests, CI) frames are just concatenated.
    clear = "\x1b[2J\x1b[H" if (live and is_tty and args.frames is None) else ""
    try:
        client = TardisClient(
            host=args.host, port=args.port, session=args.session
        )
    except (OSError, NetworkError) as exc:
        print("tardis top: cannot connect to %s:%d: %s" % (args.host, args.port, exc))
        return 1
    frames_left = args.frames
    try:
        if not live:
            print(render_snapshot(client.obs_snapshot(tail=args.tail), width=args.width))
            return 0
        streaming = True
        try:
            sub = client.subscribe_obs()
            interval = sub.get("interval_s") or args.interval
        except ServerError as exc:
            if getattr(exc, "code", None) != "OBS_UNAVAILABLE":
                raise
            # No sampler on the server: poll one-shot snapshots instead.
            streaming = False
            interval = args.interval
        rendered = 0
        while frames_left is None or rendered < frames_left:
            if streaming:
                frame = client.next_obs_frame(timeout=max(interval * 10.0, 5.0))
                if frame is None:
                    print("tardis top: no frame within timeout; server stalled?")
                    return 1
                snapshot = frame["snapshot"]
                dropped = frame.get("dropped", 0)
            else:
                snapshot = client.obs_snapshot(tail=args.tail)
                dropped = 0
            text = render_snapshot(
                snapshot if args.tail is None else ObsSampler.trim(snapshot, args.tail),
                width=args.width,
            )
            if dropped:
                text += "\n(%d frame(s) dropped: consumer too slow)" % dropped
            print("%s%s\n" % (clear, text), flush=True)
            rendered += 1
            if not streaming and (frames_left is None or rendered < frames_left):
                time.sleep(interval)
        if streaming:
            client.unsubscribe_obs()
        return 0
    except KeyboardInterrupt:
        return 0
    except NetworkError as exc:
        print("tardis top: connection lost: %s" % exc)
        return 1
    finally:
        client.close()
