"""Introspection helpers: render the State DAG, summarize a store.

``dag_to_dot`` emits Graphviz DOT text for the current State DAG —
fork points, merge states, leaves, and ceiling-marked states are styled
so branch structure is readable at a glance. No graphviz dependency:
the output is plain text for any renderer.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.store import TardisStore


def _dot_id(state_id) -> str:
    return '"%d@%s"' % (state_id.counter, state_id.site or "root")


def dag_to_dot(
    store: TardisStore,
    show_writes: bool = True,
    max_label_keys: int = 3,
) -> str:
    """Graphviz DOT rendering of the store's State DAG."""
    lines = [
        "digraph tardis {",
        "  rankdir=TB;",
        '  node [shape=box, style="rounded,filled", fillcolor=white, '
        'fontname="monospace", fontsize=10];',
    ]
    for state in sorted(store.dag.states(), key=lambda s: s.id):
        label = repr(state.id)
        if show_writes and state.write_keys:
            keys = sorted(map(str, state.write_keys))
            shown = ",".join(keys[:max_label_keys])
            if len(keys) > max_label_keys:
                shown += ",..."
            label += "\\n{%s}" % shown
        attrs = ['label="%s"' % label]
        if state.is_leaf:
            attrs.append("fillcolor=palegreen")
        if state.is_fork_point:
            attrs.append("fillcolor=lightblue")
            attrs.append("penwidth=2")
        if state.is_merge:
            attrs.append("fillcolor=khaki")
        if state.marked:
            attrs.append("fontcolor=gray40")
            attrs.append("style=\"rounded,filled,dashed\"")
        lines.append("  %s [%s];" % (_dot_id(state.id), ", ".join(attrs)))
    for state in store.dag.states():
        seen = set()
        for child in state.children:
            if id(child) in seen:
                continue
            seen.add(id(child))
            lines.append("  %s -> %s;" % (_dot_id(state.id), _dot_id(child.id)))
    lines.append("}")
    return "\n".join(lines)


def store_summary(store: TardisStore) -> Dict[str, object]:
    """A metrics snapshot suitable for logging or JSON."""
    dag = store.dag
    return {
        "site": store.site,
        "states": len(dag),
        "leaves": len(dag.leaves()),
        "fork_points": dag.num_forks(),
        "promotions": dag.promotion_table_size,
        "keys": store.versions.num_keys(),
        "records": store.versions.num_records(),
        "commits": store.metrics.commits,
        "read_only_commits": store.metrics.read_only_commits,
        "aborts": store.metrics.aborts,
        "forks": store.metrics.forks,
        "merges": store.metrics.merges,
        "remote_applied": store.metrics.remote_applied,
        "sessions": len(store.sessions()),
        "gc_cycles": store.gc.cycles,
    }


def describe_store(store: TardisStore, keys: Optional[List] = None) -> str:
    """Human-readable report: summary plus per-branch key values."""
    summary = store_summary(store)
    lines = ["TARDiS store @ site %r" % store.site, "-" * 40]
    for name, value in summary.items():
        if name == "site":
            continue
        lines.append("  %-18s %s" % (name, value))
    lines.append("")
    lines.append("branches (leaves, newest first):")
    for leaf in store.dag.leaves():
        lines.append("  %r  path=%r" % (leaf.id, leaf.fork_path))
        for key in keys or []:
            hit = store.versions.read_visible(key, leaf, store.dag)
            lines.append(
                "      %-16r = %r" % (key, None if hit is None else hit[1])
            )
    return "\n".join(lines)
