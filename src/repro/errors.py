"""Exception hierarchy for the TARDiS reproduction.

Every error raised by the library derives from :class:`TardisError`, so
applications can catch a single base class. Errors are split along the
paper's fault lines: transaction lifecycle (§6.1), merge mode (§6.2),
garbage collection (§6.3), storage (§4), and replication (§6.4).
"""

from __future__ import annotations


class TardisError(Exception):
    """Base class for every error raised by this library."""


class TransactionError(TardisError):
    """Base class for transaction lifecycle errors."""


class TransactionAborted(TransactionError):
    """The transaction could not commit.

    Raised when no state satisfies the transaction's end constraint
    (§6.1.2), when the read state was garbage collected under the
    transaction (§6.4, optimistic GC), or when the user calls ``abort``.
    """

    def __init__(self, reason: str = "transaction aborted"):
        super().__init__(reason)
        self.reason = reason


class BeginError(TransactionError):
    """No state in the DAG satisfies the begin constraint (§6.1.1)."""


class TransactionClosed(TransactionError):
    """An operation was issued on a committed or aborted transaction."""


class ReadOnlyViolation(TransactionError):
    """A write was issued inside a transaction opened read-only."""


class MergeError(TardisError):
    """Base class for merge-mode errors (§6.2)."""


class MultipleValuesError(MergeError):
    """``get`` found conflicting values for a key across merged branches.

    The application should resolve the conflict explicitly with
    ``get_for_id``/``find_conflict_writes`` and ``put`` the merged value.
    """

    def __init__(self, key, candidates):
        super().__init__(
            "key %r has %d conflicting values across merged branches"
            % (key, len(candidates))
        )
        self.key = key
        #: list of (state_id, value) pairs, one per maximal version.
        self.candidates = candidates


class NotAMergeTransaction(MergeError):
    """A merge-only API call was issued on a single-mode transaction."""


class StorageError(TardisError):
    """Base class for storage-layer errors."""


class KeyNotFound(StorageError):
    """The key has no visible version on the selected branch."""

    def __init__(self, key):
        super().__init__("key not found: %r" % (key,))
        self.key = key


class CorruptLogError(StorageError):
    """The commit log failed an integrity check during recovery (§6.5)."""


class ShardError(StorageError):
    """Base class for shard-plane errors (router and shard workers)."""


class ShardUnavailableError(ShardError):
    """A shard's backing worker is dead or unresponsive.

    Raised by reads routed to a dead shard and by commit preparation
    when a target worker fails its liveness check or exceeds the
    worker timeout. ``shard`` is the shard index.
    """

    def __init__(self, shard, reason=""):
        super().__init__(
            "shard %r unavailable%s" % (shard, ": " + reason if reason else "")
        )
        self.shard = shard
        self.reason = reason


class CrossShardAbort(TransactionAborted):
    """Typed abort: a sharded commit failed to prepare or install.

    Subclasses :class:`TransactionAborted` so retry loops written for
    ordinary aborts handle worker failures unchanged, while the type
    and ``shard`` attribute keep the cause observable (§6.4).
    """

    def __init__(self, shard, reason="cross-shard commit aborted"):
        super().__init__(reason)
        self.shard = shard


class GarbageCollectedError(TardisError):
    """A state needed by the operation was garbage collected (§6.3-6.4)."""

    def __init__(self, state_id):
        super().__init__("state %r was garbage collected" % (state_id,))
        self.state_id = state_id


class ReplicationError(TardisError):
    """Base class for replication errors (§6.4)."""


class UnknownSiteError(ReplicationError):
    """A message was addressed to a site the cluster does not know."""


class NetworkError(TardisError):
    """Base class for the network front-end (``server/`` and ``client/``)."""


class ProtocolError(NetworkError):
    """A wire-protocol frame violated the framing rules (bad length
    header, non-JSON payload, non-object document)."""


class FrameTooLarge(ProtocolError):
    """A frame's declared payload length exceeded the codec's cap."""

    def __init__(self, size, limit):
        super().__init__("frame of %d bytes exceeds the %d-byte cap" % (size, limit))
        self.size = size
        self.limit = limit


class ServerError(NetworkError):
    """An error response from the TARDiS server, carrying its wire code.

    ``code`` is one of :data:`repro.server.protocol.ERROR_CODES`; the
    client library re-raises :class:`TransactionAborted` for the
    ``TXN_ABORTED`` code so application retry loops work unchanged
    against the in-process and the networked store.
    """

    def __init__(self, code, message=""):
        super().__init__("%s: %s" % (code, message) if message else code)
        self.code = code
        self.message = message


class DeadlockError(TardisError):
    """The lock manager detected a deadlock (baseline 2PL store only)."""

    def __init__(self, txn_id, cycle=None):
        super().__init__("deadlock detected for transaction %r" % (txn_id,))
        self.txn_id = txn_id
        self.cycle = cycle or []


class ValidationError(TardisError):
    """OCC backward validation failed (baseline OCC store only)."""
