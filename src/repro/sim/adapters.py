"""Uniform operation-level adapters over TARDiS and the baselines.

The simulation drives every system through the same five calls —
``begin`` / ``read`` / ``write`` / ``commit`` / ``abort`` — each
returning an :class:`OpResult` with:

* ``status`` — ``"ok"``, ``"wait"`` (2PL lock queued; resume on wakeup
  and retry the operation), or ``"abort"`` (deadlock victim, OCC
  validation failure, or a TARDiS end-constraint abort; the transaction
  is already cleaned up and the client retries from ``begin``);
* ``cost`` — simulated service time, computed from the work the real
  data structures performed on this call;
* ``wakeups`` — opaque wait tokens whose owners became runnable (lock
  handoffs at commit/abort).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.baselines.occ import _MISSING as _OCC_MISSING
from repro.baselines.occ import OCCStore
from repro.baselines.seqstore import _MISSING as _LOCK_MISSING
from repro.baselines.seqstore import TwoPhaseLockingStore
from repro.core.constraints import (
    AncestorConstraint,
    Constraint,
    NoBranchingConstraint,
    SerializabilityConstraint,
)
from repro.core.ids import ROOT_ID
from repro.core.store import TardisStore
from repro.core.transaction import Transaction
from repro.errors import (
    DeadlockError,
    GarbageCollectedError,
    TransactionAborted,
    ValidationError,
)
from repro.obs.series import dag_extent
from repro.sim.costs import CostModel


@dataclass
class OpResult:
    status: str  # "ok" | "wait" | "abort"
    value: Any = None
    cost: float = 0.0
    token: Any = None              # wait token when status == "wait"
    wakeups: Tuple[Any, ...] = ()  # wait tokens granted by this call
    reason: str = ""
    #: portion of ``cost`` that must execute on the adapter's *serial*
    #: resource (e.g. the OCC validation critical section) before the
    #: rest runs on the shared core pool.
    serial: float = 0.0


class SystemAdapter:
    """Base adapter; subclasses wrap one store instance."""

    name = "base"

    def __init__(self, costs: Optional[CostModel] = None):
        self.costs = costs or CostModel()

    def preload(self, items: Dict[Any, Any]) -> None:
        raise NotImplementedError

    def begin(self, client_id: str, read_only: bool = False) -> Tuple[Any, float]:
        raise NotImplementedError

    def read(self, txn: Any, key: Any, will_write: bool = False) -> OpResult:
        raise NotImplementedError

    def write(self, txn: Any, key: Any, value: Any) -> OpResult:
        raise NotImplementedError

    def commit_request(self, txn: Any) -> Optional[OpResult]:
        """Optional commit pre-phase, paid *before* effects apply.

        The simulated time of this phase elapses while the transaction
        is still live: 2PL holds its locks through it (write application
        and logging happen under locks) and OCC waits in line for the
        validation critical section, so the conflict window other
        transactions see has the right length. ``commit`` then applies
        the effects at the correct simulated time.
        """
        return None

    def commit(self, txn: Any) -> OpResult:
        raise NotImplementedError

    def pressure(self) -> float:
        """Service-time multiplier from memory pressure (Fig 13)."""
        return 1.0

    def close(self) -> None:
        """Release adapter resources (worker processes, WAL handles)."""

    def maintenance(self) -> float:
        """Periodic background work (merging, GC); returns its cost."""
        return 0.0

    def stats(self) -> Dict[str, Any]:
        return {}


class TardisAdapter(SystemAdapter):
    """TARDiS under the simulation.

    ``branching=True`` runs the paper's branch-on-conflict configuration
    (Ancestor begin, Serializability end); ``branching=False`` adds the
    NoBranching end constraint, mimicking sequential storage (§7.1.2).
    Periodic ``maintenance()`` merges divergent branches with a
    last-writer-wins resolution (the microbenchmark policy), places
    ceilings, and garbage collects.
    """

    name = "tardis"

    def __init__(
        self,
        store: Optional[TardisStore] = None,
        begin_constraint: Optional[Constraint] = None,
        end_constraint: Optional[Constraint] = None,
        branching: bool = True,
        gc_enabled: bool = True,
        pressure_per_item: float = 0.0,
        pressure_threshold: int = 50_000,
        costs: Optional[CostModel] = None,
        merge_resolver=None,
        engine: Any = None,
        read_cache: bool = True,
        shards: Optional[int] = None,
        shard_workers: Optional[int] = None,
    ):
        super().__init__(costs)
        if store is None:
            store = TardisStore(
                "sim",
                engine=engine,
                read_cache=read_cache,
                shards=shards,
                shard_workers=shard_workers,
            )
        self.store = store
        self.begin_constraint = begin_constraint or AncestorConstraint()
        if end_constraint is not None:
            self.end_constraint = end_constraint
        elif branching:
            self.end_constraint = SerializabilityConstraint()
        else:
            self.end_constraint = (
                SerializabilityConstraint() & NoBranchingConstraint()
            )
        self.gc_enabled = gc_enabled
        self.pressure_per_item = pressure_per_item
        self.pressure_threshold = pressure_threshold
        #: ``merge_resolver(merge_txn, conflicting_keys)`` writes the
        #: reconciled values; defaults to last-writer-wins by version id
        #: (the microbenchmark policy). Applications install their own
        #: (e.g. Retwis merges timelines, §7.2.2).
        self.merge_resolver = merge_resolver
        self.merges_run = 0
        self._merge_session = self.store.session("merger")
        #: sessions that ran client transactions; only these place
        #: GC ceilings (system sessions like the merger would otherwise
        #: pin the DAG whenever they go idle).
        self._client_sessions: set = set()

    def preload(self, items: Dict[Any, Any]) -> None:
        txn = self.store.begin(session=self.store.session("preload"))
        for key, value in items.items():
            txn.put(key, value)
        txn.commit()
        # An inert session would pin the DAG above its anchor forever.
        self.store.close_session("preload")

    def begin(self, client_id: str, read_only: bool = False) -> Tuple[Any, float]:
        session = self.store.session(client_id)
        self._client_sessions.add(client_id)
        txn = self.store.begin(
            self.begin_constraint, session=session, read_only=read_only
        )
        # A begin-cache hit replaces the leaf BFS (begin_visits is 0)
        # with one memo probe + structural revalidation.
        cost = (
            self.costs.txn_overhead
            + self.costs.begin_base
            + txn.trace.begin_visits * self.costs.dag_visit
            + (self.costs.cache_probe if txn.trace.begin_cached else 0.0)
        )
        return txn, cost

    def read(self, txn: Transaction, key: Any, will_write: bool = False) -> OpResult:
        trace = txn.trace
        before_scanned = trace.versions_scanned
        before_hits = trace.vis_hits
        value = txn.get(key, default=None)
        if trace.vis_hits != before_hits:
            # Visibility-cache hit: no version walk, no B-tree access —
            # the cached (state_id, value) pair answers the read.
            cost = self.costs.kvm_lookup + self.costs.cache_probe
        else:
            scanned = trace.versions_scanned - before_scanned
            cost = (
                self.costs.kvm_lookup
                + scanned * self.costs.version_check
                + self.costs.btree_access
            )
        return OpResult("ok", value=value, cost=cost)

    def write(self, txn: Transaction, key: Any, value: Any) -> OpResult:
        txn.put(key, value)
        return OpResult(
            "ok", cost=self.costs.write_insert + self.costs.btree_access
        )

    def commit(self, txn: Transaction) -> OpResult:
        try:
            txn.commit(self.end_constraint)
        except TransactionAborted as exc:
            cost = (
                self.costs.commit_base
                + txn.trace.children_checked * self.costs.ripple_check
            )
            return OpResult("abort", cost=cost, reason=str(exc))
        cost = (
            self.costs.commit_base
            + txn.trace.children_checked * self.costs.ripple_check
            + (self.costs.log_append if txn.writes else 0.0)
            + (self.costs.fork_overhead if txn.trace.created_fork else 0.0)
        )
        return OpResult("ok", cost=cost)

    def pressure(self) -> float:
        if not self.pressure_per_item:
            return 1.0
        live = len(self.store.dag) + self.store.versions.num_records()
        over = max(0, live - self.pressure_threshold)
        return 1.0 + self.pressure_per_item * over

    def maintenance(self) -> float:
        """Merge all divergent branches (last-writer-wins), then GC."""
        cost = 0.0
        leaves = self.store.dag.leaves()
        if len(leaves) > 1:
            cost += self.merge_all_lww()
        if self.gc_enabled:
            for session in self.store.sessions():
                # Only active client sessions place ceilings. A session
                # that never committed still carries the original root as
                # its anchor (compare against the constant — the DAG's
                # current root moves as compression promotes it), and
                # system sessions like the merger go idle at stale
                # anchors; either would pin the whole DAG forever.
                if (
                    session.name in self._client_sessions
                    and session.last_commit_id != ROOT_ID
                ):
                    session.place_ceiling()
            stats = self.store.collect_garbage()
            cost += 0.001 * (stats.states_removed + stats.records_dropped)
        return cost

    def close(self) -> None:
        """Tear down the store (reaps proc-sharded shard workers)."""
        self.store.close()

    def merge_all_lww(self) -> float:
        """One merge transaction resolving every conflict newest-id-wins."""
        merge = self.store.begin_merge(session=self._merge_session)
        cost = self.costs.merge_base
        if len(merge.read_states) < 2:
            merge.abort()
            return 0.0
        conflicts = merge.find_conflict_writes()
        cost += len(conflicts) * self.costs.fork_point_query
        if self.merge_resolver is not None:
            self.merge_resolver(merge, conflicts)
            cost += len(conflicts) * (
                self.costs.kvm_lookup
                + self.costs.btree_access
                + self.costs.write_insert
            )
        else:
            for key in conflicts:
                candidates = self.store._read_candidates(
                    key, merge.read_states, merge.trace
                )
                if candidates:
                    newest = max(candidates, key=lambda pair: pair[0])
                    merge.put(key, newest[1])
                cost += (
                    self.costs.kvm_lookup
                    + self.costs.btree_access
                    + self.costs.write_insert
                )
        try:
            merge_id = merge.commit()
            self.merges_run += 1
            cost += self.costs.commit_base + self.costs.log_append
        except TransactionAborted:  # pragma: no cover - LWW merge is Any/Ser safe
            return cost
        # Clients adopt the merged branch: re-anchor every session whose
        # last commit the merge subsumes (the application-level
        # convergence step; without it each client rides its own branch
        # forever and the DAG can never be collected).
        dag = self.store.dag
        merge_state = dag.resolve(merge_id)
        for session in self.store.sessions():
            try:
                anchor = session.last_commit_state()
            except GarbageCollectedError:
                # The session's anchor was collected out from under it;
                # it re-anchors on its next commit.
                continue
            if dag.descendant_check(anchor, merge_state):
                session.last_commit_id = merge_id
        return cost

    def stats(self) -> Dict[str, Any]:
        _width, depth = dag_extent(self.store.dag)
        return {
            "states": len(self.store.dag),
            "records": self.store.versions.num_records(),
            "forks": self.store.metrics.forks,
            "merges": self.merges_run,
            "aborts": self.store.metrics.aborts,
            "leaves": len(self.store.dag.leaves()),
            "dag_depth": depth,
        }


class TwoPLAdapter(SystemAdapter):
    """The BDB stand-in: strict 2PL, blocking, deadlock aborts."""

    name = "bdb"

    def __init__(
        self,
        store: Optional[TwoPhaseLockingStore] = None,
        costs: Optional[CostModel] = None,
        select_for_update: bool = False,
        engine: Any = None,
    ):
        super().__init__(costs)
        if store is None:
            store = TwoPhaseLockingStore(engine=engine)
        self.store = store
        #: when true, reads of to-be-written keys take the X lock up
        #: front. The paper's BDB client reads then upgrades (its
        #: Table 3 put costs and Figure 14d goodput reflect the
        #: resulting waits and deadlock aborts), so this defaults off.
        self.select_for_update = select_for_update

    def preload(self, items: Dict[Any, Any]) -> None:
        txn = self.store.begin()
        for key, value in items.items():
            txn.put(key, value)
        txn.commit()

    def begin(self, client_id: str, read_only: bool = False) -> Tuple[Any, float]:
        return self.store.begin(), self.costs.txn_overhead + self.costs.begin_base

    def read(self, txn: Any, key: Any, will_write: bool = False) -> OpResult:
        try:
            if will_write and self.select_for_update:
                # SELECT-FOR-UPDATE: take the exclusive lock up front so
                # read-modify-write transactions do not deadlock on
                # S -> X upgrades.
                status, payload = self.store.write_lock(txn, key)
                if status == "ok":
                    status, payload = self.store.read(txn, key)
            else:
                status, payload = self.store.read(txn, key)
        except DeadlockError:
            wakeups = tuple(self.store.abort(txn))
            return OpResult(
                "abort",
                cost=self.costs.deadlock_abort,
                wakeups=wakeups,
                reason="deadlock",
            )
        if status == "wait":
            # Blocking descends into the lock manager's wait path:
            # enqueue, deschedule, context switch — serialized on the
            # lock-table mutex (the contention cost the paper observes
            # as BDB's get/put times doubling, Table 3).
            wait_cost = self.costs.lock_acquire + self.costs.lock_wait_overhead
            return OpResult(
                "wait",
                cost=wait_cost,
                serial=self.costs.lock_wait_overhead,
                token=payload,
            )
        # Reads cost the same whether the lock taken is S or X
        # (SELECT-FOR-UPDATE changes the mode, not the work).
        cost = self.costs.lock_acquire + self.costs.btree_access
        return OpResult(
            "ok", value=None if payload is _LOCK_MISSING else payload, cost=cost
        )

    def write(self, txn: Any, key: Any, value: Any) -> OpResult:
        try:
            status, token = self.store.write(txn, key, value)
        except DeadlockError:
            wakeups = tuple(self.store.abort(txn))
            return OpResult(
                "abort",
                cost=self.costs.deadlock_abort,
                wakeups=wakeups,
                reason="deadlock",
            )
        if status == "wait":
            wait_cost = self.costs.lock_acquire + self.costs.lock_wait_overhead
            return OpResult(
                "wait",
                cost=wait_cost,
                serial=self.costs.lock_wait_overhead,
                token=token,
            )
        return OpResult(
            "ok",
            cost=self.costs.lock_acquire
            + self.costs.btree_access
            + self.costs.bdb_write_extra,
        )

    def commit_request(self, txn: Any) -> Optional[OpResult]:
        # The log flush happens under locks: this time elapses before
        # the locks are handed over in commit(). (The B-tree/page work
        # itself is charged at the write operation.)
        writes = len(txn.writes)
        if not writes:
            return None
        return OpResult("ok", cost=self.costs.log_append)

    def commit(self, txn: Any) -> OpResult:
        held = len(self.store.locks.held_keys(txn.txn_id))
        wakeups = tuple(self.store.commit(txn))
        cost = self.costs.commit_base + held * self.costs.lock_release
        return OpResult("ok", cost=cost, wakeups=wakeups)

    def stats(self) -> Dict[str, Any]:
        return {
            "deadlocks": self.store.locks.deadlocks,
            "lock_waits": self.store.locks.waits,
            "aborts": self.store.aborts,
        }


class OCCAdapter(SystemAdapter):
    """The paper's modified Kung-Robinson OCC comparator."""

    name = "occ"

    def __init__(
        self,
        store: Optional[OCCStore] = None,
        costs: Optional[CostModel] = None,
        engine: Any = None,
    ):
        super().__init__(costs)
        if store is None:
            store = OCCStore(engine=engine)
        self.store = store

    def preload(self, items: Dict[Any, Any]) -> None:
        txn = self.store.begin()
        for key, value in items.items():
            txn.put(key, value)
        txn.commit()

    def begin(self, client_id: str, read_only: bool = False) -> Tuple[Any, float]:
        return self.store.begin(), self.costs.txn_overhead + self.costs.occ_begin

    def read(self, txn: Any, key: Any, will_write: bool = False) -> OpResult:
        value = self.store.read(txn, key)
        return OpResult(
            "ok",
            value=None if value is _OCC_MISSING else value,
            cost=self.costs.btree_access,
        )

    def write(self, txn: Any, key: Any, value: Any) -> OpResult:
        self.store.write(txn, key, value)
        return OpResult("ok", cost=self.costs.occ_buffer_write)

    def commit_request(self, txn: Any) -> Optional[OpResult]:
        # Enter the validation critical section's queue: the wait
        # happens *before* validation runs, so the transaction's
        # conflict window spans the whole queueing delay, as it does in
        # a real Kung-Robinson implementation.
        pending = sum(
            1 for seq, _ws in self.store._history if seq > txn.start_seq
        )
        est = self.costs.validation_check * (1 + min(pending, 8))
        return OpResult("ok", cost=est, serial=est)

    def commit(self, txn: Any) -> OpResult:
        # Kung-Robinson validation + write installation form a critical
        # section: the `serial` cost component executes on a
        # single-slot resource in the simulation, which is the long
        # validation phase the paper identifies as OCC's bottleneck.
        before = self.store.validation_checks
        try:
            self.store.commit(txn)
        except ValidationError as exc:
            checks = self.store.validation_checks - before
            serial = self.costs.validation_check * (1 + checks)
            return OpResult(
                "abort",
                cost=serial + self.costs.occ_abort,
                serial=serial,
                reason=str(exc),
            )
        # Validation time itself was charged by commit_request (while
        # holding the critical section's queue slot); here only the
        # write installation remains serial.
        serial = len(txn.writes) * self.costs.occ_apply_write
        cost = (
            self.costs.commit_base
            + serial
            + (self.costs.log_append if txn.writes else 0.0)
        )
        return OpResult("ok", cost=cost, serial=serial)

    def stats(self) -> Dict[str, Any]:
        return {
            "validation_failures": self.store.validation_failures,
            "validation_checks": self.store.validation_checks,
            "aborts": self.store.aborts,
        }
