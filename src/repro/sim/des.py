"""A minimal deterministic discrete-event simulator.

Time is a float in milliseconds. Events are (time, sequence, callback)
triples in a heap; the sequence number makes simultaneous events fire in
schedule order, so runs are fully deterministic for a given seed.

:class:`Resource` models the server's worker pool: every operation's
service time must be "executed" on one of ``capacity`` slots, queueing
FIFO when all are busy. Queueing delay under saturation is what bends
the throughput/latency curves in the paper's figures.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class Simulator:
    """Event loop with simulated milliseconds."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` ms from now (>= 0)."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback))

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the heap drains or ``until`` is reached."""
        while self._heap:
            when, _seq, callback = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = when
            self.events_processed += 1
            callback()
        if until is not None:
            self.now = max(self.now, until)
        return self.now


class Resource:
    """A pool of identical servers with a FIFO queue (M/G/c-style).

    ``execute(service_time, done)`` occupies one slot for
    ``service_time`` ms (queueing first when all slots are busy) and
    then invokes ``done()``. ``busy_time`` accumulates slot-seconds of
    useful service, which the runner uses for utilization/goodput.
    """

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._sim = sim
        self.capacity = capacity
        self._in_service = 0
        self._queue: List[Tuple[float, Callable[[], None]]] = []
        self.busy_time = 0.0
        self.max_queue = 0

    @property
    def queued(self) -> int:
        return len(self._queue)

    def execute(self, service_time: float, done: Callable[[], None]) -> None:
        if self._in_service < self.capacity:
            self._start(service_time, done)
        else:
            self._queue.append((service_time, done))
            self.max_queue = max(self.max_queue, len(self._queue))

    def _start(self, service_time: float, done: Callable[[], None]) -> None:
        self._in_service += 1
        self.busy_time += service_time

        def finish() -> None:
            self._in_service -= 1
            # Hand the freed slot to the queue head BEFORE running the
            # continuation: the continuation usually submits the same
            # client's next operation, which must go to the back of the
            # line, not jump it (otherwise queued clients starve).
            if self._queue and self._in_service < self.capacity:
                next_service, next_done = self._queue.pop(0)
                self._start(next_service, next_done)
            done()

        self._sim.schedule(service_time, finish)
