"""Cost model: simulated service time per primitive operation.

Calibration anchors the constants to the paper's Table 3 (units there
are 10^-2 ms): an uncontended TARDiS read costs about 0.006 ms (one
key-version lookup + one version check + one B-tree access), a write
about 0.01 ms, begin about 0.006 ms (a couple of DAG states visited),
commit about 0.002 ms.

Only the *constants* are calibrated. The *counts* they multiply — DAG
states visited by the begin BFS, versions scanned by a read, children
checked while rippling, lock-manager operations, OCC validation
comparisons — come from the real data structures at run time, so
contention effects (version-chain growth, validation-set growth, lock
queueing) emerge rather than being scripted.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """Service-time constants, in milliseconds."""

    # Shared substrate.
    btree_access: float = 0.004      # point lookup / insert touch
    log_append: float = 0.002        # commit-log append (async flush)
    txn_overhead: float = 0.04       # per-transaction server work
    #   (request handling, dispatch, serialization) — identical across
    #   systems; explains why the paper's per-op costs (Table 3) are an
    #   order of magnitude below its measured latencies, and why systems
    #   tie at low contention (Fig 9) yet separate under contention
    #   (Fig 10): waits and abort-retries redo this overhead too.

    # TARDiS consistency layer.
    begin_base: float = 0.003
    dag_visit: float = 0.0015        # per state visited by the begin BFS
    version_check: float = 0.002     # per key-version entry scanned
    kvm_lookup: float = 0.001        # key-version map access
    cache_probe: float = 0.002       # read-path cache lookup + validity
    #   check (generation compare, newest-version peek); a visibility
    #   hit costs kvm_lookup + cache_probe instead of the walk + B-tree
    #   access, a begin hit costs begin_base + cache_probe with no
    #   per-state BFS visits.
    write_insert: float = 0.008      # skip-list insert + record create
    commit_base: float = 0.003
    ripple_check: float = 0.001      # per child write-set check at commit
    fork_overhead: float = 0.003     # extra bookkeeping when forking
    merge_base: float = 0.02         # merge transaction fixed overhead
    fork_point_query: float = 0.004  # per fork-point/conflict query step

    # Lock-based baseline (BDB stand-in).
    lock_acquire: float = 0.002      # grant or enqueue
    lock_release: float = 0.0008     # per lock at commit
    lock_wait_overhead: float = 0.012  # deschedule + context switch +
    #                                   lock-table mutex, serialized
    bdb_write_extra: float = 0.006   # page dirtying / log buffer per put
    deadlock_abort: float = 0.05     # victim rollback cost

    # OCC baseline.
    occ_begin: float = 0.002
    occ_buffer_write: float = 0.002  # private buffer insert
    validation_check: float = 0.004  # per committed write set compared
    occ_apply_write: float = 0.006   # install at commit
    occ_abort: float = 0.02          # discard buffers, bookkeeping

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every constant multiplied by ``factor``."""
        fields = {
            name: getattr(self, name) * factor
            for name in self.__dataclass_fields__
        }
        return CostModel(**fields)
