"""Discrete-event concurrency harness.

The paper's evaluation runs many closed-loop client threads against each
system on a physical cluster. CPython cannot reproduce that directly
(the GIL serializes everything and wall-clock numbers would measure the
interpreter, not the algorithms), so the evaluation here replays the
paper's methodology inside a deterministic discrete-event simulation:

* logical clients interleave at operation granularity over the *real*
  data structures — conflicts, branch creation, lock queues, and OCC
  validation failures actually happen;
* each operation charges simulated service time through a calibrated
  cost model driven by the work the structures actually performed
  (states visited, versions scanned, validation checks, ...);
* a bounded pool of server "cores" serializes service time, producing
  the throughput/latency saturation curves of the paper's figures;
* lock waits (2PL) and abort/retry loops (OCC, non-branching TARDiS)
  emerge from the algorithms, never from scripted delays.
"""

from repro.sim.des import Simulator, Resource
from repro.sim.costs import CostModel
from repro.sim.adapters import (
    OpResult,
    SystemAdapter,
    TardisAdapter,
    TwoPLAdapter,
    OCCAdapter,
)

__all__ = [
    "Simulator",
    "Resource",
    "CostModel",
    "OpResult",
    "SystemAdapter",
    "TardisAdapter",
    "TwoPLAdapter",
    "OCCAdapter",
]
