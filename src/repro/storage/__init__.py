"""Storage substrates: skip list, B-tree record store, write-ahead log.

These are the building blocks the paper's prototype delegated to
BerkeleyDB/MapDB plus its in-memory structures; here they are implemented
from scratch so the whole system is self-contained.
"""

from repro.storage.skiplist import SkipList
from repro.storage.btree import BTree
from repro.storage.engine import (
    RecordEngine,
    available_engines,
    create_engine,
    register_engine,
)
from repro.storage.wal import WriteAheadLog, LogRecord

__all__ = [
    "SkipList",
    "BTree",
    "WriteAheadLog",
    "LogRecord",
    "RecordEngine",
    "available_engines",
    "create_engine",
    "register_engine",
]
