"""Write-ahead commit log (§6.5).

TARDiS guarantees atomicity and (optional) durability by logging, at
commit time, the id of the commit state, its parent state ids, and the
transaction's write-set keys. Recovery replays the log chronologically to
rebuild the State DAG and key-version mapping.

The log is an append-only file of length-prefixed, CRC-protected pickled
records. Two flush modes mirror the paper:

* synchronous — every append reaches the OS before ``append`` returns;
* asynchronous — appends buffer in memory and reach disk on ``flush()``
  (the paper's "asynchronous flush", trading durability for speed). The
  buffer is always written *sequentially*, so a crash leaves a clean
  prefix of the log, which is exactly the invariant recovery relies on.

A torn or corrupt tail record is detected by its CRC and treated as the
end of the log.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import CorruptLogError

_HEADER = struct.Struct("<II")  # payload length, crc32

COMMIT = "commit"
CHECKPOINT = "checkpoint"


@dataclass
class LogRecord:
    """One entry of the commit log.

    ``kind`` is ``COMMIT`` for ordinary transaction commits and
    ``CHECKPOINT`` for checkpoint markers. ``payload`` carries the
    kind-specific fields (commit state id, parent ids, write-set keys for
    commits; the checkpoint state id for checkpoints).
    """

    kind: str
    payload: dict = field(default_factory=dict)

    def encode(self) -> bytes:
        body = pickle.dumps((self.kind, self.payload), protocol=pickle.HIGHEST_PROTOCOL)
        return _HEADER.pack(len(body), zlib.crc32(body)) + body

    @classmethod
    def decode(cls, body: bytes) -> "LogRecord":
        kind, payload = pickle.loads(body)
        return cls(kind=kind, payload=payload)


class WriteAheadLog:
    """Append-only, CRC-checked commit log with sync and async modes."""

    def __init__(self, path: str, sync: bool = True):
        self._path = path
        self._sync = sync
        self._buffer: List[bytes] = []
        self._file = open(path, "ab")

    @property
    def path(self) -> str:
        return self._path

    @property
    def sync(self) -> bool:
        return self._sync

    def append(self, record: LogRecord) -> None:
        data = record.encode()
        if self._sync:
            self._file.write(data)
            self._file.flush()
        else:
            self._buffer.append(data)

    def append_commit(
        self,
        state_id: Any,
        parent_ids: Tuple[Any, ...],
        write_keys: Tuple[Any, ...],
        values: Optional[dict] = None,
    ) -> None:
        """Log a transaction commit (state id, parents, write-set keys).

        ``values`` may carry the written values so that recovery can also
        repopulate the record store; the paper persists records through
        the storage backend instead, and both paths are supported by the
        recovery module.
        """
        payload = {
            "state_id": state_id,
            "parent_ids": tuple(parent_ids),
            "write_keys": tuple(write_keys),
        }
        if values is not None:
            payload["values"] = dict(values)
        self.append(LogRecord(COMMIT, payload))

    def append_checkpoint(self, state_id: Any) -> None:
        self.append(LogRecord(CHECKPOINT, {"state_id": state_id}))

    def flush(self) -> None:
        """Write any buffered records to disk, preserving append order."""
        if self._buffer:
            self._file.write(b"".join(self._buffer))
            self._buffer.clear()
        self._file.flush()
        os.fsync(self._file.fileno())

    def pending(self) -> int:
        """Number of buffered (not yet durable) records."""
        return len(self._buffer)

    def drop_buffered(self) -> int:
        """Discard buffered records (simulates a crash before flush)."""
        dropped = len(self._buffer)
        self._buffer.clear()
        return dropped

    def compact_inplace(self, keep_from_state: Any) -> int:
        """Compact this (open) log, reopening the append handle.

        ``compact`` rewrites the file by atomic replace; an open handle
        would keep appending to the dead inode, so the instance method
        closes and reopens around it.
        """
        self.flush()
        self._file.close()
        kept = WriteAheadLog.compact(self._path, keep_from_state)
        self._file = open(self._path, "ab")
        return kept

    def close(self) -> None:
        self.flush()
        self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reading ----------------------------------------------------------

    @staticmethod
    def read(path: str, strict: bool = False) -> Iterator[LogRecord]:
        """Yield log records in append order.

        A torn tail (truncated or CRC-failing final record) terminates
        iteration; with ``strict=True`` it raises
        :class:`~repro.errors.CorruptLogError` instead. Corruption
        *before* the tail always raises, because the sequential-flush
        invariant means only the tail can legitimately be torn.
        """
        with open(path, "rb") as handle:
            data = handle.read()
        stream = io.BytesIO(data)
        total = len(data)
        while True:
            head = stream.read(_HEADER.size)
            if not head:
                return
            if len(head) < _HEADER.size:
                if strict:
                    raise CorruptLogError("truncated record header")
                return
            length, crc = _HEADER.unpack(head)
            body = stream.read(length)
            torn = len(body) < length or zlib.crc32(body) != crc
            if torn:
                at_tail = stream.tell() >= total
                if strict or not at_tail:
                    raise CorruptLogError("corrupt log record")
                return
            yield LogRecord.decode(body)

    @staticmethod
    def compact(path: str, keep_from_state: Any, id_key=None) -> int:
        """Rewrite the log, dropping commit records older than a checkpoint.

        ``keep_from_state`` is the checkpoint state id ``s_c`` (§6.5):
        commit records whose state id orders strictly before it are
        covered by the checkpoint and dropped. Returns the number of
        records kept. ``id_key`` optionally maps a state id to a sortable
        value (defaults to identity).
        """
        id_key = id_key or (lambda sid: sid)
        kept = [
            record
            for record in WriteAheadLog.read(path)
            if record.kind != COMMIT
            or not id_key(record.payload["state_id"]) < id_key(keep_from_state)
        ]
        tmp = path + ".compact"
        with open(tmp, "wb") as handle:
            for record in kept:
                handle.write(record.encode())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return len(kept)
