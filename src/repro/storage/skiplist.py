"""A sorted skip list.

TARDiS keeps, for every key, a topologically ordered list of record
versions; the paper implements it as a lock-free skip list so that writes
never block (§6.1.4). This module provides the equivalent structure: a
probabilistic skip list sorted by key, with O(log n) expected insert,
delete and search, and ordered iteration.

The version lists want *newest first* iteration; callers get that by
constructing the list with ``reverse=True``, which flips the comparison
order so that the head of the list is the largest key.
"""

from __future__ import annotations

import random
from typing import Any, Iterator, List, Optional, Tuple

_MAX_LEVEL = 24
_P = 0.5


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key: Any, value: Any, level: int):
        self.key = key
        self.value = value
        self.forward: List[Optional[_Node]] = [None] * level


class SkipList:
    """A sorted mapping with ordered iteration.

    Parameters
    ----------
    reverse:
        When true, the list is sorted descending, so iteration yields the
        largest keys first (used for newest-first version lists).
    seed:
        Seed for the level-generation RNG, for deterministic tests.
    """

    def __init__(self, reverse: bool = False, seed: Optional[int] = None):
        self._reverse = reverse
        self._rng = random.Random(seed)
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def _precedes(self, a: Any, b: Any) -> bool:
        """True when a sorts strictly before b in list order."""
        if self._reverse:
            return a > b
        return a < b

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_predecessors(self, key: Any) -> List[_Node]:
        """Nodes that immediately precede ``key`` at every level."""
        preds = [self._head] * _MAX_LEVEL
        node = self._head
        for lvl in range(self._level - 1, -1, -1):
            nxt = node.forward[lvl]
            while nxt is not None and self._precedes(nxt.key, key):
                node = nxt
                nxt = node.forward[lvl]
            preds[lvl] = node
        return preds

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key`` -> ``value``; replaces the value on a duplicate key."""
        preds = self._find_predecessors(key)
        candidate = preds[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        for lvl in range(level):
            node.forward[lvl] = preds[lvl].forward[lvl]
            preds[lvl].forward[lvl] = node
        self._len += 1

    def get(self, key: Any, default: Any = None) -> Any:
        preds = self._find_predecessors(key)
        candidate = preds[0].forward[0]
        if candidate is not None and candidate.key == key:
            return candidate.value
        return default

    def remove(self, key: Any) -> bool:
        """Remove ``key``; returns True when the key was present."""
        preds = self._find_predecessors(key)
        candidate = preds[0].forward[0]
        if candidate is None or candidate.key != key:
            return False
        for lvl in range(len(candidate.forward)):
            if preds[lvl].forward[lvl] is candidate:
                preds[lvl].forward[lvl] = candidate.forward[lvl]
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        self._len -= 1
        return True

    def first(self) -> Tuple[Any, Any]:
        """The front of the list (smallest key, or largest when reversed)."""
        node = self._head.forward[0]
        if node is None:
            raise KeyError("skip list is empty")
        return node.key, node.value

    def first_key(self, default: Any = None) -> Any:
        """The front key without unpacking, ``default`` when empty.

        O(1); for a ``reverse=True`` version list this is the newest
        version's state id, which the visibility cache compares against
        to validate an entry without walking the list.
        """
        node = self._head.forward[0]
        return default if node is None else node.key

    def items(self) -> Iterator[Tuple[Any, Any]]:
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def values(self) -> Iterator[Any]:
        for _key, value in self.items():
            yield value

    def __iter__(self) -> Iterator[Any]:
        return self.keys()

    def items_from(self, key: Any) -> Iterator[Tuple[Any, Any]]:
        """Ordered items starting at the first key not preceding ``key``."""
        preds = self._find_predecessors(key)
        node = preds[0].forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()
