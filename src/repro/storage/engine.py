"""The record-engine layer: a pluggable substrate behind every store.

TARDiS prescribes the *branch* machinery — State DAG, fork paths, merge
mode — but is agnostic about the ordered map that actually holds record
versions (the paper's prototype sits on a B-tree; §6.1.2). This module
makes that choice explicit and pluggable: a :class:`RecordEngine` is any
object implementing the small mapping protocol below, and a registry
maps engine names to factories so the choice can be threaded from the
CLI / workload config all the way down to
:class:`~repro.core.versions.VersionedRecordStore` and the baselines
without each layer hand-wiring its own substrate.

Built-in engines:

* ``"btree"`` — :class:`~repro.storage.btree.BTree` (ordered; supports
  ``range``; the default, matching the paper's prototype);
* ``"hash"`` — :class:`~repro.storage.hashstore.HashStore` (dict-backed
  ablation engine; ``range`` degrades to a sort).

Register additional engines with :func:`register_engine`; anything that
satisfies the protocol (an LSM stub, an mmap'd table, a remote KV
client) plugs in without touching the stores.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple

from repro.storage.btree import BTree
from repro.storage.hashstore import HashStore

try:  # Protocol is 3.8+; fall back gracefully for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class RecordEngine(Protocol):
    """The substrate contract shared by every store in the repo.

    A sorted (or sortable) map from keys to values. ``BTree`` and
    ``HashStore`` implement it natively; the stats object only needs to
    expose whatever counters the engine tracks (``as_dict`` optional).
    """

    def get(self, key: Any, default: Any = None) -> Any: ...

    def insert(self, key: Any, value: Any) -> None: ...

    def remove(self, key: Any) -> bool: ...

    def items(self) -> Iterator[Tuple[Any, Any]]: ...

    def keys(self) -> Iterator[Any]: ...

    def range(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]: ...

    def __len__(self) -> int: ...

    def __contains__(self, key: Any) -> bool: ...


#: engine name -> factory(**options) -> RecordEngine
_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_engine(
    name: str, factory: Callable[..., Any], overwrite: bool = False
) -> None:
    """Register ``factory`` under ``name`` for :func:`create_engine`.

    Factories receive the keyword options passed to ``create_engine``
    (e.g. ``degree`` for the B-tree) and must tolerate — and ignore —
    options meant for other engines.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError("engine %r already registered" % name)
    _REGISTRY[name] = factory


def available_engines() -> List[str]:
    """Registered engine names, sorted."""
    return sorted(_REGISTRY)


def create_engine(spec: Any, **options: Any) -> Any:
    """Resolve ``spec`` to a :class:`RecordEngine` instance.

    ``spec`` may be a registered engine name (``"btree"``, ``"hash"``),
    or an already-constructed engine instance, which is passed through
    untouched (the hook for injecting a custom substrate in tests).
    """
    if isinstance(spec, str):
        factory = _REGISTRY.get(spec)
        if factory is None:
            raise ValueError(
                "unknown record engine %r (available: %s)"
                % (spec, ", ".join(available_engines()))
            )
        return factory(**options)
    if _looks_like_engine(spec):
        return spec
    raise ValueError("not a record engine: %r" % (spec,))


def _looks_like_engine(obj: Any) -> bool:
    return all(
        callable(getattr(obj, attr, None))
        for attr in ("get", "insert", "remove", "items")
    )


def _make_btree(degree: int = 16, **_: Any):
    return BTree(t=degree)


def _make_hash(**_: Any):
    return HashStore()


register_engine("btree", _make_btree)
register_engine("hash", _make_hash)
