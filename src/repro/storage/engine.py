"""The record-engine layer: a pluggable substrate behind every store.

TARDiS prescribes the *branch* machinery — State DAG, fork paths, merge
mode — but is agnostic about the ordered map that actually holds record
versions (the paper's prototype sits on a B-tree; §6.1.2). This module
makes that choice explicit and pluggable: a :class:`RecordEngine` is any
object implementing the small mapping protocol below, and a registry
maps engine names to factories so the choice can be threaded from the
CLI / workload config all the way down to
:class:`~repro.core.versions.VersionedRecordStore` and the baselines
without each layer hand-wiring its own substrate.

Built-in engines:

* ``"btree"`` — :class:`~repro.storage.btree.BTree` (ordered; supports
  ``range``; the default, matching the paper's prototype);
* ``"hash"`` — :class:`~repro.storage.hashstore.HashStore` (dict-backed
  ablation engine; ``range`` degrades to a sort).

Register additional engines with :func:`register_engine`; anything that
satisfies the protocol (an LSM stub, an mmap'd table, a remote KV
client) plugs in without touching the stores.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple

from repro.storage.btree import BTree
from repro.storage.hashstore import HashStore

try:  # Protocol is 3.8+; fall back gracefully for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


@runtime_checkable
class RecordEngine(Protocol):
    """The substrate contract shared by every store in the repo.

    A sorted (or sortable) map from keys to values. ``BTree`` and
    ``HashStore`` implement it natively; the stats object only needs to
    expose whatever counters the engine tracks (``as_dict`` optional).
    """

    def get(self, key: Any, default: Any = None) -> Any: ...

    def insert(self, key: Any, value: Any) -> None: ...

    def remove(self, key: Any) -> bool: ...

    def items(self) -> Iterator[Tuple[Any, Any]]: ...

    def keys(self) -> Iterator[Any]: ...

    def range(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]: ...

    def __len__(self) -> int: ...

    def __contains__(self, key: Any) -> bool: ...


#: engine name -> factory(**options) -> RecordEngine
_REGISTRY: Dict[str, Callable[..., Any]] = {}

#: record-store name -> factory(**options) -> a whole versioned record
#: store (the VersionedRecordStore interface), not a flat engine. The
#: shard plane registers ``"sharded"`` and ``"proc-sharded"`` here so
#: the same ``engine=`` spec the CLI threads everywhere can swap the
#: entire storage layer, not just the substrate under it.
_STORE_REGISTRY: Dict[str, Callable[..., Any]] = {}


def register_engine(
    name: str, factory: Callable[..., Any], overwrite: bool = False
) -> None:
    """Register ``factory`` under ``name`` for :func:`create_engine`.

    Factories receive the keyword options passed to ``create_engine``
    (e.g. ``degree`` for the B-tree) and must tolerate — and ignore —
    options meant for other engines.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError("engine %r already registered" % name)
    _REGISTRY[name] = factory


def available_engines() -> List[str]:
    """Registered engine names, sorted."""
    return sorted(_REGISTRY)


def create_engine(spec: Any, **options: Any) -> Any:
    """Resolve ``spec`` to a :class:`RecordEngine` instance.

    ``spec`` may be a registered engine name (``"btree"``, ``"hash"``),
    or an already-constructed engine instance, which is passed through
    untouched (the hook for injecting a custom substrate in tests).
    """
    if isinstance(spec, str):
        factory = _REGISTRY.get(spec)
        if factory is None:
            if is_record_store(spec):
                raise ValueError(
                    "%r is a record *store* (a whole versioned storage "
                    "layer); it cannot back a flat-engine slot such as "
                    "the lock/OCC baselines" % (spec,)
                )
            raise ValueError(
                "unknown record engine %r (available: %s)"
                % (spec, ", ".join(available_engines()))
            )
        return factory(**options)
    if _looks_like_engine(spec):
        return spec
    raise ValueError("not a record engine: %r" % (spec,))


def register_record_store(
    name: str, factory: Callable[..., Any], overwrite: bool = False
) -> None:
    """Register a whole-record-store factory under ``name``.

    Unlike :func:`register_engine` factories, these return an object
    implementing the ``VersionedRecordStore`` interface (reads, staged
    commits, promotion) and receive the store-level options
    (``btree_degree``, ``seed``, ``cache``, ``shards``,
    ``shard_workers``, ``shard_of``, plus ``engine`` naming the flat
    substrate inside each shard).
    """
    if name in _REGISTRY:
        raise ValueError("%r is already a flat engine name" % (name,))
    if name in _STORE_REGISTRY and not overwrite:
        raise ValueError("record store %r already registered" % name)
    _STORE_REGISTRY[name] = factory


def available_record_stores() -> List[str]:
    """Registered record-store names, sorted."""
    _load_shard_plane()
    return sorted(_STORE_REGISTRY)


def is_record_store(spec: Any) -> bool:
    """True when ``spec`` names a registered whole-record-store."""
    if not isinstance(spec, str):
        return False
    if spec not in _STORE_REGISTRY:
        _load_shard_plane()
    return spec in _STORE_REGISTRY


def create_record_store(spec: str, **options: Any) -> Any:
    """Resolve a record-store name to a constructed storage layer."""
    if not is_record_store(spec):
        raise ValueError(
            "unknown record store %r (available: %s)"
            % (spec, ", ".join(available_record_stores()))
        )
    return _STORE_REGISTRY[spec](**options)


def _load_shard_plane() -> None:
    """Import the partitioning package, which registers its stores.

    Deferred because partitioning sits *above* this module (it imports
    the core store); a plain top-level import would be circular.
    """
    try:
        import repro.partitioning  # noqa: F401  (import-time registration)
    except ImportError:  # pragma: no cover - partitioning ships with repro
        pass


def _looks_like_engine(obj: Any) -> bool:
    return all(
        callable(getattr(obj, attr, None))
        for attr in ("get", "insert", "remove", "items")
    )


def _make_btree(degree: int = 16, **_: Any):
    return BTree(t=degree)


def _make_hash(**_: Any):
    return HashStore()


register_engine("btree", _make_btree)
register_engine("hash", _make_hash)
