"""An in-memory B-tree used as the record store.

The paper's storage layer keeps record versions "in a disk-backed B-Tree"
(§4) — BerkeleyDB in TARDiS-BDB. Here the B-tree is implemented from
scratch. It is a classic order-``t`` B-tree supporting insert, point
lookup, delete, and ordered range scans, plus:

* an access-statistics counter (node visits, splits) that the simulation
  cost model uses to charge realistic, structure-dependent costs, and
* optional persistence: ``dump``/``load`` produce a compact checkpoint of
  the tree contents (used by the checkpointing logic in §6.5).

Keys must be mutually comparable; the TARDiS store keys records by the
composite ``(user_key, state_id)``.
"""

from __future__ import annotations

import pickle
from typing import Any, Iterator, List, Optional, Tuple


class _BNode:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: List[Any] = []
        self.values: List[Any] = []
        self.children: List[_BNode] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTreeStats:
    """Counters describing work the tree has performed."""

    __slots__ = ("node_visits", "splits", "inserts", "lookups", "deletes")

    def __init__(self) -> None:
        self.node_visits = 0
        self.splits = 0
        self.inserts = 0
        self.lookups = 0
        self.deletes = 0

    def reset(self) -> None:
        self.node_visits = 0
        self.splits = 0
        self.inserts = 0
        self.lookups = 0
        self.deletes = 0


class BTree:
    """Order-``t`` B-tree mapping comparable keys to arbitrary values."""

    def __init__(self, t: int = 16):
        if t < 2:
            raise ValueError("B-tree minimum degree must be >= 2")
        self._t = t
        self._root = _BNode()
        self._len = 0
        self.stats = BTreeStats()

    def __len__(self) -> int:
        return self._len

    def __contains__(self, key: Any) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    # -- search ----------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        self.stats.lookups += 1
        node = self._root
        while True:
            self.stats.node_visits += 1
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                return node.values[idx]
            if node.is_leaf:
                return default
            node = node.children[idx]

    # -- insert ----------------------------------------------------------

    def insert(self, key: Any, value: Any) -> None:
        """Insert ``key`` -> ``value``; replaces the value on a duplicate."""
        self.stats.inserts += 1
        root = self._root
        if len(root.keys) == 2 * self._t - 1:
            new_root = _BNode()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            root = new_root
        self._insert_nonfull(root, key, value)

    def _split_child(self, parent: _BNode, idx: int) -> None:
        self.stats.splits += 1
        t = self._t
        child = parent.children[idx]
        sibling = _BNode()
        parent.keys.insert(idx, child.keys[t - 1])
        parent.values.insert(idx, child.values[t - 1])
        parent.children.insert(idx + 1, sibling)
        sibling.keys = child.keys[t:]
        sibling.values = child.values[t:]
        child.keys = child.keys[: t - 1]
        child.values = child.values[: t - 1]
        if not child.is_leaf:
            sibling.children = child.children[t:]
            child.children = child.children[:t]

    def _insert_nonfull(self, node: _BNode, key: Any, value: Any) -> None:
        while True:
            self.stats.node_visits += 1
            idx = _bisect(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx] = value
                return
            if node.is_leaf:
                node.keys.insert(idx, key)
                node.values.insert(idx, value)
                self._len += 1
                return
            child = node.children[idx]
            if len(child.keys) == 2 * self._t - 1:
                self._split_child(node, idx)
                if key == node.keys[idx]:
                    node.values[idx] = value
                    return
                if key > node.keys[idx]:
                    idx += 1
            node = node.children[idx]

    # -- delete ----------------------------------------------------------

    def remove(self, key: Any) -> bool:
        """Remove ``key``; returns True when the key was present."""
        self.stats.deletes += 1
        if not self._delete(self._root, key):
            return False
        if not self._root.keys and self._root.children:
            self._root = self._root.children[0]
        self._len -= 1
        return True

    def _delete(self, node: _BNode, key: Any) -> bool:
        t = self._t
        self.stats.node_visits += 1
        idx = _bisect(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            if node.is_leaf:
                node.keys.pop(idx)
                node.values.pop(idx)
                return True
            return self._delete_internal(node, idx)
        if node.is_leaf:
            return False
        child = node.children[idx]
        if len(child.keys) == t - 1:
            self._fill(node, idx)
            # _fill may have merged children; recompute the path.
            return self._delete(node, key)
        return self._delete(child, key)

    def _delete_internal(self, node: _BNode, idx: int) -> bool:
        t = self._t
        key = node.keys[idx]
        left, right = node.children[idx], node.children[idx + 1]
        if len(left.keys) >= t:
            pred_key, pred_val = self._max_entry(left)
            node.keys[idx], node.values[idx] = pred_key, pred_val
            return self._delete(left, pred_key)
        if len(right.keys) >= t:
            succ_key, succ_val = self._min_entry(right)
            node.keys[idx], node.values[idx] = succ_key, succ_val
            return self._delete(right, succ_key)
        self._merge(node, idx)
        return self._delete(left, key)

    def _max_entry(self, node: _BNode) -> Tuple[Any, Any]:
        while not node.is_leaf:
            node = node.children[-1]
        return node.keys[-1], node.values[-1]

    def _min_entry(self, node: _BNode) -> Tuple[Any, Any]:
        while not node.is_leaf:
            node = node.children[0]
        return node.keys[0], node.values[0]

    def _fill(self, node: _BNode, idx: int) -> None:
        t = self._t
        if idx > 0 and len(node.children[idx - 1].keys) >= t:
            self._borrow_from_prev(node, idx)
        elif idx < len(node.children) - 1 and len(node.children[idx + 1].keys) >= t:
            self._borrow_from_next(node, idx)
        elif idx < len(node.children) - 1:
            self._merge(node, idx)
        else:
            self._merge(node, idx - 1)

    def _borrow_from_prev(self, node: _BNode, idx: int) -> None:
        child, sibling = node.children[idx], node.children[idx - 1]
        child.keys.insert(0, node.keys[idx - 1])
        child.values.insert(0, node.values[idx - 1])
        node.keys[idx - 1] = sibling.keys.pop()
        node.values[idx - 1] = sibling.values.pop()
        if not sibling.is_leaf:
            child.children.insert(0, sibling.children.pop())

    def _borrow_from_next(self, node: _BNode, idx: int) -> None:
        child, sibling = node.children[idx], node.children[idx + 1]
        child.keys.append(node.keys[idx])
        child.values.append(node.values[idx])
        node.keys[idx] = sibling.keys.pop(0)
        node.values[idx] = sibling.values.pop(0)
        if not sibling.is_leaf:
            child.children.append(sibling.children.pop(0))

    def _merge(self, node: _BNode, idx: int) -> None:
        child, sibling = node.children[idx], node.children[idx + 1]
        child.keys.append(node.keys.pop(idx))
        child.values.append(node.values.pop(idx))
        child.keys.extend(sibling.keys)
        child.values.extend(sibling.values)
        child.children.extend(sibling.children)
        node.children.pop(idx + 1)

    # -- iteration -------------------------------------------------------

    def items(self) -> Iterator[Tuple[Any, Any]]:
        yield from self._iter_node(self._root)

    def _iter_node(self, node: _BNode) -> Iterator[Tuple[Any, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for i, key in enumerate(node.keys):
            yield from self._iter_node(node.children[i])
            yield key, node.values[i]
        yield from self._iter_node(node.children[-1])

    def keys(self) -> Iterator[Any]:
        for key, _value in self.items():
            yield key

    def range(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]:
        """Ordered items with lo <= key < hi."""
        yield from self._range_node(self._root, lo, hi)

    def _range_node(self, node: _BNode, lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]:
        self.stats.node_visits += 1
        idx = _bisect(node.keys, lo)
        for i in range(idx, len(node.keys)):
            if not node.is_leaf:
                yield from self._range_node(node.children[i], lo, hi)
            if node.keys[i] >= hi:
                return
            yield node.keys[i], node.values[i]
        if not node.is_leaf:
            yield from self._range_node(node.children[-1], lo, hi)

    # -- persistence -----------------------------------------------------

    def dump(self, path: str) -> int:
        """Checkpoint the tree contents to ``path``; returns entry count."""
        entries = list(self.items())
        with open(path, "wb") as handle:
            pickle.dump({"t": self._t, "entries": entries}, handle)
        return len(entries)

    @classmethod
    def load(cls, path: str) -> "BTree":
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        tree = cls(t=payload["t"])
        for key, value in payload["entries"]:
            tree.insert(key, value)
        return tree

    # -- invariants (used by property tests) ------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when B-tree structural invariants fail."""
        self._check_node(self._root, None, None, is_root=True)

    def _check_node(
        self,
        node: _BNode,
        lo: Optional[Any],
        hi: Optional[Any],
        is_root: bool = False,
    ) -> int:
        t = self._t
        assert len(node.keys) == len(node.values)
        if not is_root:
            assert len(node.keys) >= t - 1, "underfull node"
        assert len(node.keys) <= 2 * t - 1, "overfull node"
        for a, b in zip(node.keys, node.keys[1:]):
            assert a < b, "keys out of order"
        if node.keys:
            if lo is not None:
                assert node.keys[0] > lo
            if hi is not None:
                assert node.keys[-1] < hi
        if node.is_leaf:
            return 1
        assert len(node.children) == len(node.keys) + 1
        bounds = [lo] + list(node.keys) + [hi]
        depths = {
            self._check_node(child, bounds[i], bounds[i + 1])
            for i, child in enumerate(node.children)
        }
        assert len(depths) == 1, "leaves at different depths"
        return depths.pop() + 1


def _bisect(keys: List[Any], key: Any) -> int:
    """Index of the first element >= key (keys are unique and sorted)."""
    lo, hi = 0, len(keys)
    while lo < hi:
        mid = (lo + hi) // 2
        if keys[mid] < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


class _Missing:
    pass


_MISSING = _Missing()
