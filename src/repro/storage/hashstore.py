"""Hash-map record backend — the TARDiS-MDB configuration (§6.6).

The paper ships two builds: TARDiS-BDB (records in BerkeleyDB's B-tree)
and TARDiS-MDB (records in MapDB, a hash-based engine), noting MapDB
runs ~10% faster. This module is the MapDB stand-in: a dict-backed
record store with the same interface as :class:`repro.storage.btree.BTree`
(point ops, ordered iteration computed on demand, dump/load, access
statistics), selectable via ``TardisStore(..., backend="hash")``.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Iterator, Tuple


class HashStoreStats:
    __slots__ = ("node_visits", "inserts", "lookups", "deletes", "splits")

    def __init__(self) -> None:
        self.node_visits = 0
        self.inserts = 0
        self.lookups = 0
        self.deletes = 0
        self.splits = 0  # interface parity with BTreeStats

    def reset(self) -> None:
        self.node_visits = 0
        self.inserts = 0
        self.lookups = 0
        self.deletes = 0
        self.splits = 0


class HashStore:
    """Dict-backed record store with the BTree interface."""

    def __init__(self, t: int = 0):
        # ``t`` accepted (and ignored) for factory compatibility.
        self._data: Dict[Any, Any] = {}
        self.stats = HashStoreStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def get(self, key: Any, default: Any = None) -> Any:
        self.stats.lookups += 1
        self.stats.node_visits += 1
        return self._data.get(key, default)

    def insert(self, key: Any, value: Any) -> None:
        self.stats.inserts += 1
        self.stats.node_visits += 1
        self._data[key] = value

    def remove(self, key: Any) -> bool:
        self.stats.deletes += 1
        return self._data.pop(key, _MISSING) is not _MISSING

    def items(self) -> Iterator[Tuple[Any, Any]]:
        # Ordered on demand: hash engines sort at scan time.
        return iter(sorted(self._data.items()))

    def keys(self) -> Iterator[Any]:
        return iter(sorted(self._data))

    def range(self, lo: Any, hi: Any) -> Iterator[Tuple[Any, Any]]:
        for key, value in self.items():
            if key < lo:
                continue
            if key >= hi:
                return
            yield key, value

    def dump(self, path: str) -> int:
        entries = list(self.items())
        with open(path, "wb") as handle:
            pickle.dump({"entries": entries}, handle)
        return len(entries)

    @classmethod
    def load(cls, path: str) -> "HashStore":
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        store = cls()
        for key, value in payload["entries"]:
            store.insert(key, value)
        return store


class _Missing:
    pass


_MISSING = _Missing()
