"""A per-key shared/exclusive lock manager with deadlock detection.

The lock manager is a pure state machine — no threads, no blocking — so
the discrete-event simulation can drive it deterministically: ``acquire``
either grants immediately or queues the request, and ``release_all``
returns the requests that become granted so the simulator can wake those
clients.

Deadlocks are detected by cycle search in the waits-for graph, as
BerkeleyDB does; the victim is the requester that closed the cycle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.errors import DeadlockError


class LockMode(enum.Enum):
    SHARED = "S"
    EXCLUSIVE = "X"


@dataclass
class LockRequest:
    txn_id: Any
    key: Any
    mode: LockMode
    granted: bool = False


@dataclass
class _KeyLock:
    holders: Dict[Any, LockMode] = field(default_factory=dict)
    queue: List[LockRequest] = field(default_factory=list)

    def compatible(self, txn_id: Any, mode: LockMode) -> bool:
        others = {t: m for t, m in self.holders.items() if t != txn_id}
        if not others:
            return True
        if mode == LockMode.EXCLUSIVE:
            return False
        return all(m == LockMode.SHARED for m in others.values())


class LockManager:
    """Strict two-phase locking: locks are held until release_all."""

    def __init__(self, detect_deadlocks: bool = True):
        self._locks: Dict[Any, _KeyLock] = {}
        self._detect = detect_deadlocks
        #: lifetime counters for the cost model / goodput accounting.
        self.acquires = 0
        self.waits = 0
        self.deadlocks = 0

    # -- queries -------------------------------------------------------------

    def holders(self, key: Any) -> Dict[Any, LockMode]:
        lock = self._locks.get(key)
        return dict(lock.holders) if lock else {}

    def waiting(self, key: Any) -> List[LockRequest]:
        lock = self._locks.get(key)
        return list(lock.queue) if lock else []

    def held_keys(self, txn_id: Any) -> List[Any]:
        return [k for k, lock in self._locks.items() if txn_id in lock.holders]

    # -- acquisition ------------------------------------------------------------

    def acquire(self, txn_id: Any, key: Any, mode: LockMode) -> LockRequest:
        """Request a lock; returns a request with ``granted`` set.

        An ungranted request is queued; the caller must suspend the
        transaction until a ``release_all`` reports it granted. Raises
        :class:`~repro.errors.DeadlockError` when queuing the request
        would close a waits-for cycle (the requester is the victim and
        must abort).
        """
        self.acquires += 1
        lock = self._locks.setdefault(key, _KeyLock())
        held = lock.holders.get(txn_id)
        if held == LockMode.EXCLUSIVE or held == mode:
            return LockRequest(txn_id, key, mode, granted=True)
        # Lock upgrade (S -> X) or fresh acquisition.
        no_queue_conflict = not any(
            r.mode == LockMode.EXCLUSIVE or mode == LockMode.EXCLUSIVE
            for r in lock.queue
            if r.txn_id != txn_id
        )
        if lock.compatible(txn_id, mode) and (no_queue_conflict or held is not None):
            lock.holders[txn_id] = (
                LockMode.EXCLUSIVE if mode == LockMode.EXCLUSIVE else
                lock.holders.get(txn_id, mode)
            )
            return LockRequest(txn_id, key, mode, granted=True)
        request = LockRequest(txn_id, key, mode)
        lock.queue.append(request)
        self.waits += 1
        if self._detect:
            cycle = self._find_cycle(txn_id)
            if cycle:
                lock.queue.remove(request)
                self.deadlocks += 1
                raise DeadlockError(txn_id, cycle)
        return request

    def _blockers_of(self, txn_id: Any) -> Set[Any]:
        blockers: Set[Any] = set()
        for lock in self._locks.values():
            for request in lock.queue:
                if request.txn_id != txn_id:
                    continue
                for holder, _mode in lock.holders.items():
                    if holder != txn_id:
                        blockers.add(holder)
                # Queued X requests ahead of us also block us.
                for ahead in lock.queue:
                    if ahead is request:
                        break
                    if ahead.txn_id != txn_id:
                        blockers.add(ahead.txn_id)
        return blockers

    def _find_cycle(self, start: Any) -> Optional[List[Any]]:
        path: List[Any] = []
        visited: Set[Any] = set()

        def visit(txn_id: Any) -> Optional[List[Any]]:
            if txn_id == start and path:
                return list(path)
            if txn_id in visited:
                return None
            visited.add(txn_id)
            path.append(txn_id)
            for blocker in self._blockers_of(txn_id):
                cycle = visit(blocker)
                if cycle is not None:
                    return cycle
            path.pop()
            return None

        return visit(start)

    # -- release -------------------------------------------------------------------

    def release_all(self, txn_id: Any) -> List[LockRequest]:
        """Release every lock and queued request of ``txn_id``.

        Returns the queued requests that became granted, in grant order,
        so the simulator can resume their owners.
        """
        granted: List[LockRequest] = []
        for key in list(self._locks):
            lock = self._locks[key]
            lock.holders.pop(txn_id, None)
            lock.queue = [r for r in lock.queue if r.txn_id != txn_id]
            granted.extend(self._promote(lock))
            if not lock.holders and not lock.queue:
                del self._locks[key]
        return granted

    def _promote(self, lock: _KeyLock) -> List[LockRequest]:
        """FIFO grant: wake the head of the queue (plus more readers)."""
        granted: List[LockRequest] = []
        while lock.queue:
            head = lock.queue[0]
            if not lock.compatible(head.txn_id, head.mode):
                break
            lock.queue.pop(0)
            current = lock.holders.get(head.txn_id)
            if head.mode == LockMode.EXCLUSIVE or current is None:
                lock.holders[head.txn_id] = head.mode
            head.granted = True
            granted.append(head)
            if head.mode == LockMode.EXCLUSIVE:
                break
        return granted
