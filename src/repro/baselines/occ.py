"""Optimistic concurrency control baseline (§7.1.1).

A modified Kung-Robinson validator, as in the paper: transactions read
the committed store freely, buffer writes, and validate at commit
against the write sets of every transaction that committed during their
lifetime — except that read-write transactions are not validated
against read-only ones (read-only transactions publish no writes, so
they can never invalidate anybody; they still validate their own reads,
which is the cost the paper observes on read-heavy workloads, §7.1.2).

Contrast with TARDiS commit validation, which only examines transactions
that committed *as children of the selected read state* — a branch-local
check instead of a global one (§7.1.2); and with TARDiS semantics, a
validation failure here is an abort, never a branch.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Set, Tuple

from repro.core.commit import install_writes
from repro.errors import KeyNotFound, TransactionClosed, ValidationError
from repro.obs import metrics as _met
from repro.storage.engine import RecordEngine, create_engine

ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


class OCCTransaction:
    """One optimistic transaction: private read/write buffers."""

    _ids = itertools.count(1)

    def __init__(self, store: "OCCStore", start_seq: int):
        self._store = store
        self.txn_id = next(OCCTransaction._ids)
        #: commit sequence number current when this transaction began;
        #: validation covers committers with a later sequence.
        self.start_seq = start_seq
        self.status = ACTIVE
        self.reads: Set[Any] = set()
        self.writes: Dict[Any, Any] = {}

    def get(self, key: Any, default: Any = KeyNotFound) -> Any:
        value = self._store.read(self, key)
        if value is _MISSING:
            if default is KeyNotFound:
                raise KeyNotFound(key)
            return default
        return value

    def put(self, key: Any, value: Any) -> None:
        self._store.write(self, key, value)

    def commit(self) -> None:
        self._store.commit(self)

    def abort(self) -> None:
        self._store.abort(self)


class OCCStore:
    """Single-version KV store with backward OCC validation."""

    def __init__(self, btree_degree: int = 16, engine: Any = None):
        #: record substrate, pluggable via the RecordEngine registry.
        self._records: RecordEngine = create_engine(
            engine if engine is not None else "btree", degree=btree_degree
        )
        #: committed write sets: list of (commit_seq, frozenset(keys)).
        self._history: List[Tuple[int, frozenset]] = []
        self._commit_seq = 0
        self._active_starts: Dict[int, int] = {}
        self.commits = 0
        self.aborts = 0
        self.validation_failures = 0
        #: total number of (committed-writer, reader) set checks, for the
        #: cost model — this is OCC's expensive validation phase.
        self.validation_checks = 0

    @property
    def records(self) -> RecordEngine:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def begin(self) -> OCCTransaction:
        txn = OCCTransaction(self, self._commit_seq)
        self._active_starts[txn.txn_id] = txn.start_seq
        return txn

    def _check(self, txn: OCCTransaction) -> None:
        if txn.status != ACTIVE:
            raise TransactionClosed("transaction is %s" % txn.status)

    def read(self, txn: OCCTransaction, key: Any) -> Any:
        """Read committed state (own writes first); never blocks."""
        self._check(txn)
        txn.reads.add(key)
        if key in txn.writes:
            return txn.writes[key]
        return self._records.get(key, _MISSING)

    def write(self, txn: OCCTransaction, key: Any, value: Any) -> None:
        """Buffer a write; never blocks."""
        self._check(txn)
        txn.writes[key] = value

    def validate(self, txn: OCCTransaction) -> int:
        """Backward validation; returns the number of checks performed.

        Raises :class:`~repro.errors.ValidationError` when a transaction
        that committed after ``txn`` began wrote a key ``txn`` read.
        """
        checks = 0
        for seq, write_set in reversed(self._history):
            if seq <= txn.start_seq:
                break
            checks += 1
            if write_set & txn.reads:
                self.validation_checks += checks
                raise ValidationError(
                    "read set invalidated by concurrent committer (seq %d)" % seq
                )
        self.validation_checks += checks
        return checks

    def commit(self, txn: OCCTransaction) -> None:
        self._check(txn)
        try:
            checks = self.validate(txn)
        except ValidationError:
            txn.status = ABORTED
            self.aborts += 1
            self.validation_failures += 1
            self._active_starts.pop(txn.txn_id, None)
            m = _met.DEFAULT
            if m.enabled:
                m.inc("baseline_occ_abort_total")
                m.inc("baseline_occ_validation_fail_total")
            raise
        install_writes(self._records, txn.writes)
        if txn.writes:
            # Only read-write transactions enter the validation history:
            # the paper's modification (no validation against read-only).
            self._commit_seq += 1
            self._history.append((self._commit_seq, frozenset(txn.writes)))
        txn.status = COMMITTED
        self.commits += 1
        self._active_starts.pop(txn.txn_id, None)
        m = _met.DEFAULT
        if m.enabled:
            m.inc("baseline_occ_commit_total")
            m.observe("baseline_occ_validation_checks", checks)
        self._prune_history()

    def abort(self, txn: OCCTransaction) -> None:
        self._check(txn)
        txn.status = ABORTED
        self.aborts += 1
        self._active_starts.pop(txn.txn_id, None)

    def _prune_history(self) -> None:
        """Drop history no active transaction can be validated against."""
        if not self._history:
            return
        floor = min(self._active_starts.values(), default=self._commit_seq)
        if len(self._history) > 64 and self._history[0][0] <= floor:
            self._history = [entry for entry in self._history if entry[0] > floor]


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
