"""Comparison systems from the paper's evaluation (§7.1.1).

* :class:`TwoPhaseLockingStore` — a single-version key-value store with
  strict two-phase locking over the same B-tree substrate as TARDiS; the
  stand-in for BerkeleyDB ("BDB" in the paper's figures).
* :class:`OCCStore` — the paper's custom optimistic concurrency control
  comparator, a modified Kung-Robinson algorithm in which read-write
  transactions are not validated against read-only ones.

Both expose a *non-blocking state-machine* interface so that the
discrete-event simulation can drive many logical clients over them:
operations return immediately with either a result or a "must wait"
indication, and lock releases report which waiters become runnable.
"""

from repro.baselines.locks import LockManager, LockMode, LockRequest
from repro.baselines.seqstore import TwoPhaseLockingStore, LockingTransaction
from repro.baselines.occ import OCCStore, OCCTransaction

__all__ = [
    "LockManager",
    "LockMode",
    "LockRequest",
    "TwoPhaseLockingStore",
    "LockingTransaction",
    "OCCStore",
    "OCCTransaction",
]
