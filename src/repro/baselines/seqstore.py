"""A sequential, strictly serializable, lock-based store (the "BDB" baseline).

The paper compares TARDiS against BerkeleyDB Java Edition configured as a
plain ACID store: single-version records, strict two-phase locking,
readers block writers and vice versa. This module reproduces that
behaviour over the same B-tree substrate TARDiS uses, so the two systems
differ only in concurrency control — exactly the comparison the paper
makes.

The interface is a non-blocking state machine for the discrete-event
simulation: ``read``/``write`` return ``("ok", value)`` or
``("wait", request)``; when a conflicting transaction finishes, its
``commit``/``abort`` returns the lock requests that became granted so
the simulator can resume the blocked clients (which then simply retry
the operation — the lock is now held).
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.baselines.locks import LockManager, LockMode, LockRequest
from repro.core.commit import install_writes
from repro.errors import KeyNotFound, TransactionClosed
from repro.obs import metrics as _met
from repro.storage.engine import RecordEngine, create_engine

ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"


class LockingTransaction:
    """One strict-2PL transaction."""

    _ids = itertools.count(1)

    def __init__(self, store: "TwoPhaseLockingStore"):
        self._store = store
        self.txn_id = next(LockingTransaction._ids)
        self.status = ACTIVE
        self.reads: Set[Any] = set()
        self.writes: Dict[Any, Any] = {}
        #: set while a lock request is queued (simulation bookkeeping).
        self.blocked_on: Optional[LockRequest] = None

    # Convenience blocking-style API for single-threaded use: in the
    # absence of concurrent holders every lock grants immediately.

    def get(self, key: Any, default: Any = KeyNotFound) -> Any:
        status, value = self._store.read(self, key)
        if status != "ok":
            raise RuntimeError("lock wait in single-threaded use")
        if value is _MISSING:
            if default is KeyNotFound:
                raise KeyNotFound(key)
            return default
        return value

    def put(self, key: Any, value: Any) -> None:
        status, _ = self._store.write(self, key, value)
        if status != "ok":
            raise RuntimeError("lock wait in single-threaded use")

    def commit(self) -> None:
        self._store.commit(self)

    def abort(self) -> None:
        self._store.abort(self)


class TwoPhaseLockingStore:
    """Single-version KV store with strict two-phase locking."""

    # Deliberately lock-free: the baseline is driven from the
    # single-threaded discrete-event loop, so its state needs no
    # threading.Lock. The annotation documents that assumption; running
    # it from real threads would trip the dynamic lockset checker.
    _GUARDED_BY = {
        "_records": "external:des-loop",
        "commits": "external:des-loop",
        "aborts": "external:des-loop",
    }

    def __init__(
        self,
        detect_deadlocks: bool = True,
        btree_degree: int = 16,
        engine: Any = None,
    ):
        #: record substrate, pluggable via the RecordEngine registry.
        self._records: RecordEngine = create_engine(
            engine if engine is not None else "btree", degree=btree_degree
        )
        self.locks = LockManager(detect_deadlocks=detect_deadlocks)
        self.commits = 0
        self.aborts = 0

    @property
    def records(self) -> RecordEngine:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def begin(self) -> LockingTransaction:
        return LockingTransaction(self)

    def _check(self, txn: LockingTransaction) -> None:
        if txn.status != ACTIVE:
            raise TransactionClosed("transaction is %s" % txn.status)

    def read(self, txn: LockingTransaction, key: Any) -> Tuple[str, Any]:
        """Acquire a shared lock and read.

        Returns ``("ok", value)`` (``value`` is the module-level missing
        sentinel when the key is absent) or ``("wait", request)`` when
        the lock is queued. Raises ``DeadlockError`` when waiting would
        deadlock — the caller must abort.
        """
        self._check(txn)
        request = self.locks.acquire(txn.txn_id, key, LockMode.SHARED)
        if not request.granted:
            txn.blocked_on = request
            return ("wait", request)
        txn.blocked_on = None
        txn.reads.add(key)
        if key in txn.writes:
            return ("ok", txn.writes[key])
        return ("ok", self._records.get(key, _MISSING))

    def write_lock(self, txn: LockingTransaction, key: Any) -> Tuple[str, Any]:
        """Acquire the exclusive lock on ``key`` without writing yet.

        The SELECT-FOR-UPDATE primitive: clients that know they will
        update a key after reading it lock exclusively up front, avoiding
        S -> X upgrade deadlocks.
        """
        self._check(txn)
        request = self.locks.acquire(txn.txn_id, key, LockMode.EXCLUSIVE)
        if not request.granted:
            txn.blocked_on = request
            return ("wait", request)
        txn.blocked_on = None
        return ("ok", None)

    def write(self, txn: LockingTransaction, key: Any, value: Any) -> Tuple[str, Any]:
        """Acquire an exclusive lock and buffer the write."""
        self._check(txn)
        request = self.locks.acquire(txn.txn_id, key, LockMode.EXCLUSIVE)
        if not request.granted:
            txn.blocked_on = request
            return ("wait", request)
        txn.blocked_on = None
        txn.writes[key] = value
        return ("ok", None)

    def commit(self, txn: LockingTransaction) -> List[LockRequest]:
        """Apply buffered writes, release locks; returns woken requests."""
        self._check(txn)
        install_writes(self._records, txn.writes)
        txn.status = COMMITTED
        self.commits += 1
        m = _met.DEFAULT
        if m.enabled:
            m.inc("baseline_2pl_commit_total")
        return self.locks.release_all(txn.txn_id)

    def abort(self, txn: LockingTransaction) -> List[LockRequest]:
        self._check(txn)
        txn.status = ABORTED
        self.aborts += 1
        m = _met.DEFAULT
        if m.enabled:
            m.inc("baseline_2pl_abort_total")
            m.set_gauge("baseline_2pl_deadlocks", self.locks.deadlocks)
            m.set_gauge("baseline_2pl_lock_waits", self.locks.waits)
        return self.locks.release_all(txn.txn_id)


class _Missing:
    def __repr__(self) -> str:  # pragma: no cover
        return "<missing>"


_MISSING = _Missing()
