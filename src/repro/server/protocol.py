"""The TARDiS wire protocol: length-prefixed JSON frames.

Every message — request or response — is one *frame*:

    +----------------+---------------------------+
    | uint32 (BE)    | UTF-8 JSON object         |
    | payload length | exactly that many bytes   |
    +----------------+---------------------------+

A zero-length frame is invalid, and a declared length above the codec's
cap (:data:`MAX_FRAME`, 1 MiB by default) is rejected *before* the
payload is read, so a hostile or confused peer cannot make the receiver
buffer unbounded data. Both sides close the connection on a framing
error: once the byte stream is torn there is no way to resynchronize.

Requests are JSON objects ``{"id": <int>, "op": "<OP>", ...}``;
responses echo the id: ``{"id": <int>, "ok": true, ...}`` or
``{"id": <int>, "ok": false, "error": {"code", "message"}}``. Requests
on one connection are processed strictly in order, so ``id`` exists for
client-side bookkeeping, not reordering. The full command and error-code
catalogue is specified in docs/internals.md §12.

One exception to request/response pairing: a connection that issued
``OBS_SUBSCRIBE`` also receives server-initiated *push frames* —
``{"push": "obs", "seq": <int>, "dropped": <int>, "snapshot": {...}}``
— interleaved between responses on the sampler's cadence. Push frames
carry no ``id``; clients route on the ``push`` key (docs/internals.md
§14 specifies the snapshot schema and the slow-consumer drop policy).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, Iterator, Optional

from repro.errors import FrameTooLarge, ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME",
    "HEADER",
    "OPS",
    "PUSH_KINDS",
    "ERROR_CODES",
    "encode_frame",
    "FrameDecoder",
    "ok_response",
    "error_response",
]

#: bumped on any incompatible change; HELLO negotiates (exact match).
PROTOCOL_VERSION = 1

#: default cap on one frame's JSON payload, in bytes.
MAX_FRAME = 1 << 20

#: the 4-byte big-endian unsigned payload-length prefix.
HEADER = struct.Struct(">I")

#: the command verbs (requests carry one as their ``op`` field).
OPS = frozenset(
    {
        "HELLO",   # handshake: bind the connection to a client session
        "BEGIN",   # start a single-mode transaction
        "READ",    # read a key inside a transaction
        "READ_MANY",  # read a batch of keys in one round trip
        "WRITE",   # buffer a write (or delete) inside a transaction
        "COMMIT",  # commit a transaction
        "ABORT",   # abort a transaction
        "MERGE",   # start a merge transaction over the current branches
        "STATS",   # server + store counters (health/leak checks)
        "OBS_SNAPSHOT",     # one-shot observability snapshot
        "OBS_SUBSCRIBE",    # push obs snapshots on the sampler cadence
        "OBS_UNSUBSCRIBE",  # stop the push stream; returns accounting
        "BYE",     # polite close: server responds, then drops the link
    }
)

#: kinds of server-initiated push frames (the ``push`` field).
PUSH_KINDS = frozenset({"obs"})

#: wire error codes -> meaning. ``BAD_FRAME``/``FRAME_TOO_LARGE`` are
#: connection-fatal (framing is lost); everything else is per-request.
ERROR_CODES: Dict[str, str] = {
    "BAD_FRAME": "payload was not a JSON object, or had a zero length",
    "FRAME_TOO_LARGE": "declared payload length exceeds the server's cap",
    "BAD_REQUEST": "missing or ill-typed request field",
    "UNKNOWN_OP": "the op verb is not in the protocol",
    "NO_HELLO": "a command was issued before the HELLO handshake",
    "ALREADY_HELLO": "a second HELLO was issued on the connection",
    "BAD_VERSION": "the client's protocol version does not match",
    "SESSION_IN_USE": "the session name is bound to another live connection",
    "UNKNOWN_TXN": "the txn id does not name an open transaction",
    "TXN_ABORTED": "the transaction could not commit (end constraint)",
    "TXN_CLOSED": "the transaction already committed or aborted",
    "BEGIN_FAILED": "no state satisfies the begin constraint",
    "KEY_CONFLICT": "the key holds conflicting values across merged branches",
    "READ_ONLY": "a write was issued in a read-only transaction",
    "BAD_CONSTRAINT": "unknown begin/end constraint name",
    "SHARD_UNAVAILABLE": "a shard worker died or timed out serving the request",
    "OBS_UNAVAILABLE": "the server runs no live sampler (start with --obs-interval)",
    "TIMEOUT": "the request exceeded the server's per-request timeout",
    "SERVER_BUSY": "the server is at its connection cap",
    "SHUTTING_DOWN": "the server is draining and takes no new work",
    "INTERNAL": "unexpected server-side failure",
}


def encode_frame(obj: Dict[str, Any], max_frame: int = MAX_FRAME) -> bytes:
    """Serialize one message to its wire form (header + JSON payload).

    Raises :class:`~repro.errors.FrameTooLarge` when the encoded payload
    exceeds ``max_frame`` — the sender's half of the cap both sides
    enforce.
    """
    payload = json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if len(payload) > max_frame:
        raise FrameTooLarge(len(payload), max_frame)
    return HEADER.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser for an arbitrarily chunked byte stream.

    ``feed`` bytes as they arrive (any chunking: one byte at a time, or
    several frames fused), then drain complete messages::

        decoder = FrameDecoder()
        decoder.feed(sock.recv(4096))
        for message in decoder.frames():
            handle(message)

    Raises :class:`~repro.errors.FrameTooLarge` as soon as a header
    declares an oversized payload (without buffering it) and
    :class:`~repro.errors.ProtocolError` for zero-length frames,
    undecodable payloads, and non-object documents. After either, the
    stream is unrecoverable and the connection must be closed.
    """

    __slots__ = ("_buffer", "_need", "max_frame", "frames_decoded", "bytes_fed")

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self._buffer = bytearray()
        #: payload length of the frame in progress; None while the
        #: header itself is incomplete.
        self._need: Optional[int] = None
        self.max_frame = max_frame
        self.frames_decoded = 0
        self.bytes_fed = 0

    def feed(self, data: bytes) -> None:
        self.bytes_fed += len(data)
        self._buffer.extend(data)

    def pending(self) -> int:
        """Bytes buffered but not yet consumed by a complete frame."""
        return len(self._buffer)

    def next_frame(self) -> Optional[Dict[str, Any]]:
        """The next complete message, or None until more bytes arrive."""
        if self._need is None:
            if len(self._buffer) < HEADER.size:
                return None
            (length,) = HEADER.unpack(bytes(self._buffer[: HEADER.size]))
            if length == 0:
                raise ProtocolError("zero-length frame")
            if length > self.max_frame:
                raise FrameTooLarge(length, self.max_frame)
            del self._buffer[: HEADER.size]
            self._need = length
        if len(self._buffer) < self._need:
            return None
        payload = bytes(self._buffer[: self._need])
        del self._buffer[: self._need]
        self._need = None
        try:
            message = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError("undecodable frame payload: %s" % exc)
        if not isinstance(message, dict):
            raise ProtocolError(
                "frame payload must be a JSON object, got %s"
                % type(message).__name__
            )
        self.frames_decoded += 1
        return message

    def frames(self) -> Iterator[Dict[str, Any]]:
        """Drain every complete message currently buffered."""
        while True:
            message = self.next_frame()
            if message is None:
                return
            yield message


def ok_response(request_id: Any, **fields: Any) -> Dict[str, Any]:
    response: Dict[str, Any] = {"id": request_id, "ok": True}
    response.update(fields)
    return response


def error_response(request_id: Any, code: str, message: str = "") -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError("unknown error code: %r" % (code,))
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message or ERROR_CODES[code]},
    }
