"""TARDiS-as-a-service: the asyncio TCP front-end.

One :class:`TardisServer` wraps one :class:`~repro.core.store.TardisStore`
and speaks the length-prefixed JSON protocol of
:mod:`repro.server.protocol`. Each accepted connection is bound (by the
HELLO handshake) to one :class:`~repro.core.store.ClientSession`, so the
paper's session guarantees — Ancestor begin anchored at the client's
last commit — hold per connection exactly as they do in-process.

Concurrency model: the asyncio event loop multiplexes socket I/O across
every connection; the store operations themselves run on a dedicated
single worker thread (``_executor``), which serializes them — the store
is lock-protected, but its read path is optimized for the one-writer
discrete-event harness, and a single worker keeps the wall-clock
behaviour honest while still letting the loop time out stuck requests
(``asyncio.wait_for`` around the executor hop) and keep accepting,
parsing, and answering frames meanwhile.

Production plumbing:

* **Backpressure** — at most ``max_connections`` live connections (the
  excess gets a ``SERVER_BUSY`` error frame and an immediate close);
  requests on one connection are processed strictly in order, so a
  pipelining client is throttled by its own unanswered frames; responses
  go through ``writer.drain()`` so a slow reader blocks its own
  connection only.
* **Per-request timeouts** — a request that exceeds ``request_timeout``
  is answered with a ``TIMEOUT`` error; the connection survives.
* **Graceful shutdown** — :meth:`TardisServer.shutdown` stops accepting,
  refuses new transactions (``SHUTTING_DOWN``) while letting open ones
  run to COMMIT/ABORT for up to ``drain_timeout`` seconds, then closes
  the stragglers; disconnect cleanup aborts their transactions and
  closes their sessions, so a drained server leaks nothing.
* **Disconnect cleanup** — a dropped connection aborts its open
  transactions and closes its session via the (idempotent)
  ``TardisStore.close_session``, releasing read-state pins and GC
  ceilings.

Observability: the ``tardis_net_server_*`` counters/gauges/histograms
are recorded against the default metrics registry (catalogued in
``METRIC_NAMES``, so the metric-drift rule covers them), and a plain
stats dict — independent of whether the registry is enabled — feeds the
STATS command and the shutdown report.

Live ops plane (docs/internals.md §14): with ``obs_sample_interval``
set, an :class:`~repro.obs.sampler.ObsSampler` task samples the store's
divergence series, the server gauges, per-op latency percentiles, and
the shard plane's worker health on a wall-clock cadence (each sample
runs on the store executor, serialized with request handlers), and runs
the flight-recorder triggers live so threshold trips become alerts.
Snapshots are served one-shot via ``OBS_SNAPSHOT`` and streamed to
``OBS_SUBSCRIBE``-ed connections as push frames. Slow-consumer policy:
each subscription buffers at most ``obs_queue_frames`` snapshots; when
the subscriber's socket cannot keep up, new snapshots are *dropped*
(never buffered unboundedly, never blocking the sampler), counted per
subscription, and the next delivered frame carries the cumulative
``dropped`` count so the gap is visible downstream.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Set

from repro.core.constraints import (
    AncestorConstraint,
    AnyConstraint,
    Constraint,
    ParentConstraint,
    ReadCommittedConstraint,
    SerializabilityConstraint,
    SnapshotIsolationConstraint,
)
from repro.core.merge import MergeTransaction
from repro.core.store import TardisStore
from repro.core.transaction import ACTIVE, COMMITTED, BaseTransaction
from repro.errors import (
    BeginError,
    FrameTooLarge,
    MultipleValuesError,
    ProtocolError,
    ReadOnlyViolation,
    ShardUnavailableError,
    TardisError,
    TransactionAborted,
    TransactionClosed,
)
from repro.obs import metrics as _met
from repro.obs.sampler import ObsSampler
from repro.server.protocol import (
    MAX_FRAME,
    OPS,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    error_response,
    ok_response,
)

__all__ = ["TardisServer", "ServerThread", "start_in_thread", "run_server"]

#: begin-constraint names accepted by BEGIN (Table 1 of the paper).
BEGIN_CONSTRAINTS: Dict[str, Callable[[], Constraint]] = {
    "ancestor": AncestorConstraint,
    "any": AnyConstraint,
    "parent": ParentConstraint,
}

#: end-constraint names accepted by COMMIT.
END_CONSTRAINTS: Dict[str, Callable[[], Constraint]] = {
    "serializability": SerializabilityConstraint,
    "snapshot-isolation": SnapshotIsolationConstraint,
    "read-committed": ReadCommittedConstraint,
    "any": AnyConstraint,
}

#: sentinel distinguishing "key absent" from an explicit None value.
_MISSING = object()


class _RequestError(Exception):
    """Raised by a handler to produce a typed wire error response."""

    def __init__(self, code: str, message: str = "") -> None:
        super().__init__(code)
        self.code = code
        self.message = message


class _Connection:
    """Per-connection state: the session binding and open transactions.

    Everything here is mutated only on the store executor thread (the
    handlers) or after the connection's request loop has exited (the
    cleanup, also dispatched to the executor), never concurrently.
    """

    _GUARDED_BY = {
        "txns": "external:store-executor",
        "session_name": "external:store-executor",
    }

    __slots__ = (
        "id",
        "peer",
        "writer",
        "session_name",
        "txns",
        "next_txn_id",
        "hello_done",
    )

    def __init__(self, conn_id: int, peer: str, writer: asyncio.StreamWriter) -> None:
        self.id = conn_id
        self.peer = peer
        self.writer = writer
        self.session_name: Optional[str] = None
        #: txn wire id -> open BaseTransaction.
        self.txns: Dict[int, BaseTransaction] = {}
        self.next_txn_id = 1
        self.hello_done = False


class _ObsSubscription:
    """One OBS_SUBSCRIBE stream: a bounded snapshot queue + writer task.

    The drop policy lives here: ``offer`` never blocks and never buffers
    more than ``capacity`` snapshots — when the writer task (throttled
    by the subscriber's socket) falls behind, the *new* snapshot is
    dropped and counted, and the next frame that does go out carries the
    cumulative ``dropped`` total. ``offer`` runs on the event loop only
    (like the writer task), so the counters need no lock; the
    unsubscribe handler merely reads them for its accounting reply.
    """

    __slots__ = ("conn_id", "writer", "capacity", "queue", "sent", "dropped", "task")

    def __init__(
        self, conn_id: int, writer: asyncio.StreamWriter, capacity: int
    ) -> None:
        self.conn_id = conn_id
        self.writer = writer
        self.capacity = capacity
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=capacity)
        self.sent = 0
        self.dropped = 0
        self.task: Optional[asyncio.Task] = None

    def offer(self, snapshot: Dict[str, Any]) -> bool:
        """Enqueue for delivery; False (and counted) when full."""
        try:
            self.queue.put_nowait(snapshot)
            return True
        except asyncio.QueueFull:
            self.dropped += 1
            return False


class TardisServer:
    """An asyncio TCP server exposing one TardisStore over the wire."""

    _GUARDED_BY = {
        "_conns": "self._lock",
        "_session_names": "self._lock",
        "_owned_sessions": "self._lock",
        "_stats": "self._lock",
        "_inflight": "self._lock",
        "_obs_subs": "self._lock",
    }

    def __init__(
        self,
        store: Optional[TardisStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        site: str = "net",
        engine: Optional[str] = None,
        shards: Optional[int] = None,
        shard_workers: Optional[int] = None,
        max_connections: int = 128,
        request_timeout: float = 5.0,
        drain_timeout: float = 5.0,
        max_frame: int = MAX_FRAME,
        obs_sample_interval: Optional[float] = None,
        obs_tail: int = 60,
        obs_queue_frames: int = 4,
    ) -> None:
        #: the server owns (and closes at shutdown) only a store it built.
        self._owns_store = store is None
        self.store = (
            store
            if store is not None
            else TardisStore(
                site, engine=engine, shards=shards, shard_workers=shard_workers
            )
        )
        self.host = host
        self.port = port  # rewritten with the bound port after start()
        self.max_connections = max_connections
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.max_frame = max_frame
        self._server: Optional[asyncio.AbstractServer] = None
        #: single worker: store calls are serialized here so the loop can
        #: time them out and keep servicing sockets (module docstring).
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="tardis-store"
        )
        self._lock = threading.Lock()
        self._conns: Dict[int, _Connection] = {}
        self._session_names: Set[str] = set()
        #: every session name this server ever bound; the shutdown report
        #: counts the ones still present in the store as leaks.
        self._owned_sessions: Set[str] = set()
        self._next_conn_id = 1
        self._inflight = 0
        self._closing = False
        self._stats: Dict[str, int] = {
            "connections_total": 0,
            "connections_rejected": 0,
            "requests_total": 0,
            "errors_total": 0,
            "timeouts_total": 0,
            "commits": 0,
            "aborts": 0,
            "merges": 0,
            "disconnect_aborts": 0,
            "bytes_in": 0,
            "bytes_out": 0,
            "obs_samples": 0,
            "obs_frames_total": 0,
            "obs_frames_dropped": 0,
        }
        self._tasks: Set[asyncio.Task] = set()
        self.report: Optional[Dict[str, Any]] = None
        # -- live ops plane (docs/internals.md §14) ------------------------
        #: wall seconds between sampler ticks; None leaves the sampler
        #: task off (OBS_SNAPSHOT still works — it samples on demand).
        self.obs_sample_interval = obs_sample_interval
        self.obs_tail = obs_tail
        self.obs_queue_frames = obs_queue_frames
        self.obs = ObsSampler(
            self.store,
            site=self.store.site,
            tail=obs_tail,
            counters_fn=self._obs_counters,
            gauges_fn=self._obs_gauges,
            latency_fn=self._obs_latency,
        )
        #: per-op request-latency histograms (wire op -> Histogram);
        #: created/updated on the event loop thread only, snapshotted by
        #: the sampler via _obs_latency.
        self._op_latency: Dict[str, _met.Histogram] = {}
        self._obs_subs: Dict[int, _ObsSubscription] = {}
        self._obs_task: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> "TardisServer":
        """Bind and start accepting; ``self.port`` holds the real port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._loop = asyncio.get_running_loop()
        if self.obs_sample_interval is not None and self.obs_sample_interval > 0:
            self._obs_task = self._loop.create_task(self._obs_loop())
        return self

    @property
    def address(self) -> str:
        return "%s:%d" % (self.host, self.port)

    async def shutdown(self, drain_timeout: Optional[float] = None) -> Dict[str, Any]:
        """Graceful stop: drain in-flight work, close every session.

        1. Stop accepting (the listening socket closes); new BEGIN/MERGE
           requests on live connections get ``SHUTTING_DOWN``.
        2. Wait up to ``drain_timeout`` for in-flight requests and open
           transactions to finish.
        3. Force-close surviving connections; their cleanup aborts open
           transactions and closes their sessions.

        Returns (and stores in ``self.report``) a summary including the
        sessions the server leaked — an empty list on a clean drain.
        """
        if self.report is not None:
            return self.report
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Stop the live ops plane first: the sampler must not hop onto
        # the executor after it shuts down, and subscriber writer tasks
        # must not race the force-close below.
        obs_tasks: List[asyncio.Task] = []
        if self._obs_task is not None:
            self._obs_task.cancel()
            obs_tasks.append(self._obs_task)
            self._obs_task = None
        with self._lock:
            subs = list(self._obs_subs.values())
            self._obs_subs.clear()
        for sub in subs:
            if sub.task is not None:
                sub.task.cancel()
                obs_tasks.append(sub.task)
        if obs_tasks:
            await asyncio.wait(obs_tasks, timeout=2.0)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + (
            self.drain_timeout if drain_timeout is None else drain_timeout
        )
        drained = False
        while True:
            with self._lock:
                busy = self._inflight > 0 or any(
                    conn.txns for conn in self._conns.values()
                )
            if not busy:
                drained = True
                break
            if loop.time() >= deadline:
                break
            await asyncio.sleep(0.01)
        with self._lock:
            survivors = list(self._conns.values())
        for conn in survivors:
            conn.writer.close()
        if self._tasks:
            await asyncio.wait(list(self._tasks), timeout=5.0)
        self._executor.shutdown(wait=True)
        with self._lock:
            leaked = sorted(
                name
                for name in self._owned_sessions
                # Executor already drained (shutdown(wait=True) above): the
                # store is quiesced, there is no serialization to bypass.
                if any(s.name == name for s in self.store.sessions())  # tardis: ignore[async-discipline]
            )
            report: Dict[str, Any] = dict(self._stats)
        report["drained_in_time"] = drained
        report["forced_closes"] = len(survivors)
        report["leaked_sessions"] = leaked
        report["open_states"] = len(self.store.dag)
        # A server that built its own store tears it down too; with a
        # proc-sharded storage layer that reaps the shard workers, and
        # any that had to be force-killed count as leaks in the report.
        leaked_workers = 0
        if self._owns_store:
            # Executor drained above: teardown is single-threaded by now.
            self.store.close()  # tardis: ignore[async-discipline]
            leaked_workers = self.store.leaked_workers
        report["leaked_workers"] = leaked_workers
        self.report = report
        return report

    # -- connection handling ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.add(task)
        try:
            await self._serve_connection(reader, writer)
        finally:
            if task is not None:
                self._tasks.discard(task)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = "%s:%s" % peername[:2] if peername else "?"
        m = _met.DEFAULT
        with self._lock:
            rejected = self._closing or len(self._conns) >= self.max_connections
            if rejected:
                self._stats["connections_rejected"] += 1
            else:
                conn = _Connection(self._next_conn_id, peer, writer)
                self._next_conn_id += 1
                self._conns[conn.id] = conn
                self._stats["connections_total"] += 1
                active = len(self._conns)
        if rejected:
            code = "SHUTTING_DOWN" if self._closing else "SERVER_BUSY"
            await self._send(None, writer, error_response(None, code))
            writer.close()
            return
        if m.enabled:
            m.inc("tardis_net_server_connections_total")
            m.set_gauge("tardis_net_server_connections_active", active)
        decoder = FrameDecoder(self.max_frame)
        try:
            while True:
                message = None
                try:
                    message = decoder.next_frame()
                except FrameTooLarge as exc:
                    await self._send(
                        conn, writer, error_response(None, "FRAME_TOO_LARGE", str(exc))
                    )
                    break
                except ProtocolError as exc:
                    await self._send(
                        conn, writer, error_response(None, "BAD_FRAME", str(exc))
                    )
                    break
                if message is None:
                    data = await reader.read(65536)
                    if not data:
                        break  # EOF
                    with self._lock:
                        self._stats["bytes_in"] += len(data)
                    if m.enabled:
                        m.inc("tardis_net_server_bytes_in_total", len(data))
                    decoder.feed(data)
                    continue
                response = await self._dispatch(conn, message)
                await self._send(conn, writer, response)
                if message.get("op") == "BYE":
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        except OSError:
            pass
        finally:
            await self._teardown_connection(conn, writer)

    async def _send(
        self,
        conn: Optional[_Connection],
        writer: asyncio.StreamWriter,
        response: Dict[str, Any],
    ) -> None:
        try:
            frame = encode_frame(response, self.max_frame)
        except (TypeError, ValueError, FrameTooLarge):
            # A stored value was not JSON-serializable (possible when the
            # store is shared with in-process writers) or the response
            # outgrew the frame cap: degrade to a typed error.
            frame = encode_frame(
                error_response(
                    response.get("id"), "INTERNAL", "response not serializable"
                )
            )
        m = _met.DEFAULT
        with self._lock:
            self._stats["bytes_out"] += len(frame)
            if not response.get("ok", False):
                self._stats["errors_total"] += 1
        if m.enabled:
            m.inc("tardis_net_server_bytes_out_total", len(frame))
            if not response.get("ok", False):
                m.inc("tardis_net_server_errors_total")
        try:
            writer.write(frame)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def _teardown_connection(
        self, conn: _Connection, writer: asyncio.StreamWriter
    ) -> None:
        # Cleanup runs on the store executor like every other store
        # access, so it serializes behind any still-running handler for
        # this connection instead of racing it.
        loop = asyncio.get_running_loop()
        try:
            await loop.run_in_executor(self._executor, self._cleanup_sync, conn)
        except RuntimeError:
            # Executor already shut down (server stopped underneath us):
            # clean up inline — the worker is gone, nothing races.
            self._cleanup_sync(conn)
        try:
            writer.close()
        except OSError:
            pass
        m = _met.DEFAULT
        with self._lock:
            active = len(self._conns)
        if m.enabled:
            m.set_gauge("tardis_net_server_connections_active", active)

    def _cleanup_sync(self, conn: _Connection) -> None:
        open_txns = [t for t in conn.txns.values() if t.status == ACTIVE]
        conn.txns.clear()
        if conn.session_name is not None:
            # close_session aborts whatever is still ACTIVE on the
            # session (including txns above) and is idempotent, so a
            # polite BYE racing a socket drop stays safe.
            self.store.close_session(conn.session_name)
        m = _met.DEFAULT
        with self._lock:
            self._conns.pop(conn.id, None)
            if conn.session_name is not None:
                self._session_names.discard(conn.session_name)
            if open_txns:
                self._stats["disconnect_aborts"] += len(open_txns)
            sub = self._obs_subs.pop(conn.id, None)
        if sub is not None and self._loop is not None:
            # A subscriber that disconnected (politely or not) must not
            # leak its writer task; the cancel hops to the loop thread.
            try:
                self._loop.call_soon_threadsafe(self._cancel_sub_writer, sub)
            except RuntimeError:
                pass  # loop already closed (server stopping)
        if open_txns and m.enabled:
            m.inc("tardis_net_server_disconnect_aborts_total", len(open_txns))

    # -- live ops plane (sampler task + push streams) ----------------------

    def _obs_counters(self) -> Dict[str, Any]:
        """Cumulative server counters for the sampler (executor thread)."""
        with self._lock:
            return dict(self._stats)

    def _obs_gauges(self) -> Dict[str, Any]:
        """Instantaneous server gauges for the sampler (executor thread)."""
        sessions = len(self.store.sessions())
        with self._lock:
            return {
                "sessions": sessions,
                "inflight": self._inflight,
                "connections": len(self._conns),
            }

    def _obs_latency(self) -> Dict[str, Dict[str, Any]]:
        """Per-op latency summaries from the request histograms."""
        out: Dict[str, Dict[str, Any]] = {}
        for op, hist in list(self._op_latency.items()):
            if not hist.count:
                continue
            out[op] = {
                "count": hist.count,
                "mean": hist.mean,
                "p50": hist.quantile(0.5),
                "p90": hist.quantile(0.9),
                "p99": hist.quantile(0.99),
                "max": hist.max,
            }
        return out

    async def _obs_loop(self) -> None:
        """The sampler task: sample on the executor, publish, sleep.

        Each sample runs on the store executor, serialized with request
        handlers — a sampler tick can delay one request by its own cost
        (small: a DAG walk plus counter reads), never race it.
        """
        assert self.obs_sample_interval is not None
        loop = asyncio.get_running_loop()
        try:
            while not self._closing:
                started = loop.time()
                try:
                    snapshot = await loop.run_in_executor(
                        self._executor, self.obs.sample
                    )
                except RuntimeError:
                    break  # executor shut down underneath us
                except Exception:  # tardis: ignore[bare-except] — a failed sample must not kill the server
                    snapshot = None
                if snapshot is not None:
                    self._publish_obs(snapshot)
                delay = self.obs_sample_interval - (loop.time() - started)
                await asyncio.sleep(max(0.0, delay))
        except asyncio.CancelledError:
            pass

    def _publish_obs(self, snapshot: Dict[str, Any]) -> None:
        """Offer one snapshot to every subscription (event loop thread)."""
        m = _met.DEFAULT
        with self._lock:
            self._stats["obs_samples"] += 1
            subs = list(self._obs_subs.values())
        dropped = 0
        for sub in subs:
            if not sub.offer(snapshot):
                dropped += 1
        if dropped:
            with self._lock:
                self._stats["obs_frames_dropped"] += dropped
        if m.enabled:
            m.inc("tardis_net_server_obs_samples_total")
            m.set_gauge("tardis_net_server_obs_subscribers", len(subs))
            if dropped:
                m.inc("tardis_net_server_obs_dropped_total", dropped)

    def _ensure_sub_writer(self, sub: _ObsSubscription) -> None:
        """Start the writer task for ``sub`` (event loop thread)."""
        with self._lock:
            current = self._obs_subs.get(sub.conn_id)
        if current is not sub:
            return  # unsubscribed/disconnected before the task started
        if sub.task is None and self._loop is not None:
            sub.task = self._loop.create_task(self._sub_writer(sub))

    def _cancel_sub_writer(self, sub: _ObsSubscription) -> None:
        if sub.task is not None:
            sub.task.cancel()

    async def _sub_writer(self, sub: _ObsSubscription) -> None:
        """Drain one subscription's queue onto its socket.

        The socket (via ``drain``) throttles this task; the queue bound
        plus drop counting in ``offer`` is what keeps a slow consumer
        from buffering the server into the ground.
        """
        m = _met.DEFAULT
        try:
            while True:
                snapshot = await sub.queue.get()
                frame = {
                    "push": "obs",
                    "seq": snapshot["seq"],
                    "dropped": sub.dropped,
                    "snapshot": snapshot,
                }
                data = encode_frame(frame, self.max_frame)
                sub.writer.write(data)
                await sub.writer.drain()
                sub.sent += 1
                with self._lock:
                    self._stats["obs_frames_total"] += 1
                    self._stats["bytes_out"] += len(data)
                if m.enabled:
                    m.inc("tardis_net_server_obs_frames_total")
                    m.inc("tardis_net_server_bytes_out_total", len(data))
        except asyncio.CancelledError:
            pass
        except (ConnectionResetError, BrokenPipeError, OSError, FrameTooLarge):
            # Socket gone (the connection teardown does the accounting)
            # or a snapshot outgrew the frame cap: stop the stream, keep
            # the connection's request/response framing intact.
            pass

    # -- request dispatch --------------------------------------------------

    async def _dispatch(
        self, conn: _Connection, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        request_id = request.get("id")
        op = request.get("op")
        m = _met.DEFAULT
        with self._lock:
            self._stats["requests_total"] += 1
            self._inflight += 1
        if m.enabled:
            m.inc("tardis_net_server_requests_total")
        start = time.perf_counter()
        try:
            if not isinstance(op, str) or op not in OPS:
                return error_response(request_id, "UNKNOWN_OP", "op=%r" % (op,))
            loop = asyncio.get_running_loop()
            try:
                return await asyncio.wait_for(
                    loop.run_in_executor(self._executor, self._execute, conn, request),
                    self.request_timeout,
                )
            except asyncio.TimeoutError:
                with self._lock:
                    self._stats["timeouts_total"] += 1
                if m.enabled:
                    m.inc("tardis_net_server_timeouts_total")
                return error_response(
                    request_id,
                    "TIMEOUT",
                    "request exceeded %.3fs" % self.request_timeout,
                )
        finally:
            with self._lock:
                self._inflight -= 1
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            if isinstance(op, str) and op in OPS:
                hist = self._op_latency.get(op)
                if hist is None:
                    hist = self._op_latency[op] = _met.Histogram(
                        "tardis_net_server_request_ms@op=%s" % op
                    )
                hist.record(elapsed_ms)
            if m.enabled:
                m.observe("tardis_net_server_request_ms", elapsed_ms)
                if isinstance(op, str) and op in OPS:
                    m.observe("tardis_net_server_request_ms@op=%s" % op, elapsed_ms)

    def _execute(self, conn: _Connection, request: Dict[str, Any]) -> Dict[str, Any]:
        """Run one request on the store executor; always returns a response."""
        request_id = request.get("id")
        op = request["op"]
        try:
            handler = getattr(self, "_op_%s" % op.lower())
            if op != "HELLO" and not conn.hello_done:
                raise _RequestError("NO_HELLO", "say HELLO first")
            return handler(conn, request_id, request)
        except _RequestError as exc:
            return error_response(request_id, exc.code, exc.message)
        except TransactionAborted as exc:
            return error_response(request_id, "TXN_ABORTED", str(exc))
        except TransactionClosed as exc:
            return error_response(request_id, "TXN_CLOSED", str(exc))
        except ReadOnlyViolation as exc:
            return error_response(request_id, "READ_ONLY", str(exc))
        except MultipleValuesError as exc:
            return error_response(request_id, "KEY_CONFLICT", str(exc))
        except BeginError as exc:
            return error_response(request_id, "BEGIN_FAILED", str(exc))
        except ShardUnavailableError as exc:
            # Before TardisError: a dead shard worker is a typed,
            # retryable condition, not an opaque INTERNAL.
            return error_response(request_id, "SHARD_UNAVAILABLE", str(exc))
        except TardisError as exc:
            return error_response(request_id, "INTERNAL", repr(exc))
        except Exception as exc:  # tardis: ignore[bare-except] — one bad request must not kill the connection loop
            return error_response(request_id, "INTERNAL", repr(exc))

    # -- op handlers (store executor thread) -------------------------------

    def _op_hello(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        if conn.hello_done:
            raise _RequestError("ALREADY_HELLO", "connection is bound to %r" % conn.session_name)
        version = request.get("protocol", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise _RequestError(
                "BAD_VERSION",
                "server speaks protocol %d, client sent %r" % (PROTOCOL_VERSION, version),
            )
        name = request.get("session")
        if name is not None and not isinstance(name, str):
            raise _RequestError("BAD_REQUEST", "session must be a string")
        with self._lock:
            if name is not None and name in self._session_names:
                raise _RequestError("SESSION_IN_USE", name)
        session = self.store.session(name)
        with self._lock:
            self._session_names.add(session.name)
            self._owned_sessions.add(session.name)
        conn.session_name = session.name
        conn.hello_done = True
        return ok_response(
            request_id,
            session=session.name,
            site=self.store.site,
            protocol=PROTOCOL_VERSION,
        )

    def _session(self, conn: _Connection) -> Any:
        assert conn.session_name is not None
        return self.store.session(conn.session_name)

    def _txn_of(self, conn: _Connection, request: Dict[str, Any]) -> BaseTransaction:
        txn_id = request.get("txn")
        txn = conn.txns.get(txn_id) if isinstance(txn_id, int) else None
        if txn is None:
            raise _RequestError("UNKNOWN_TXN", "txn=%r" % (txn_id,))
        return txn

    def _op_begin(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        if self._closing:
            raise _RequestError("SHUTTING_DOWN", "no new transactions while draining")
        constraint = None
        name = request.get("constraint")
        if name is not None:
            factory = BEGIN_CONSTRAINTS.get(name)
            if factory is None:
                raise _RequestError(
                    "BAD_CONSTRAINT",
                    "%r (begin constraints: %s)" % (name, sorted(BEGIN_CONSTRAINTS)),
                )
            constraint = factory()
        txn = self.store.begin(
            begin_constraint=constraint,
            session=self._session(conn),
            read_only=bool(request.get("read_only", False)),
        )
        txn_id = conn.next_txn_id
        conn.next_txn_id += 1
        conn.txns[txn_id] = txn
        return ok_response(request_id, txn=txn_id, read_state=repr(txn.read_state.id))

    def _op_merge(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        if self._closing:
            raise _RequestError("SHUTTING_DOWN", "no new transactions while draining")
        merge = self.store.begin_merge(session=self._session(conn))
        txn_id = conn.next_txn_id
        conn.next_txn_id += 1
        conn.txns[txn_id] = merge
        fork_points = merge.find_fork_points()
        conflicts: List[Dict[str, Any]] = []
        for key in merge.find_conflict_writes():
            base = (
                merge.get_for_id(key, fork_points[0], default=None)
                if fork_points
                else None
            )
            conflicts.append(
                {"key": key, "base": base, "values": merge.get_all(key)}
            )
        with self._lock:
            self._stats["merges"] += 1
        return ok_response(
            request_id,
            txn=txn_id,
            parents=[repr(p) for p in merge.parents],
            fork_points=[repr(f) for f in fork_points],
            conflicts=conflicts,
        )

    def _op_read(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        if "key" not in request:
            raise _RequestError("BAD_REQUEST", "READ needs a key")
        txn = self._txn_of(conn, request)
        value = txn.get(request["key"], default=_MISSING)
        if value is _MISSING:
            return ok_response(request_id, found=False, value=None)
        return ok_response(request_id, found=True, value=value)

    def _op_read_many(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        keys = request.get("keys")
        if not isinstance(keys, list):
            raise _RequestError("BAD_REQUEST", "READ_MANY needs a keys list")
        txn = self._txn_of(conn, request)
        values = txn.get_many(keys, default=_MISSING)
        return ok_response(
            request_id,
            found=[value is not _MISSING for value in values],
            values=[None if value is _MISSING else value for value in values],
        )

    def _op_write(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        if "key" not in request:
            raise _RequestError("BAD_REQUEST", "WRITE needs a key")
        txn = self._txn_of(conn, request)
        if request.get("delete", False):
            txn.delete(request["key"])
        else:
            if "value" not in request:
                raise _RequestError("BAD_REQUEST", "WRITE needs a value (or delete)")
            txn.put(request["key"], request["value"])
        return ok_response(request_id)

    def _op_commit(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        txn = self._txn_of(conn, request)
        constraint = None
        name = request.get("constraint")
        if name is not None:
            factory = END_CONSTRAINTS.get(name)
            if factory is None:
                raise _RequestError(
                    "BAD_CONSTRAINT",
                    "%r (end constraints: %s)" % (name, sorted(END_CONSTRAINTS)),
                )
            constraint = factory()
        try:
            commit_id = txn.commit(constraint)
        finally:
            if txn.status != ACTIVE:
                conn.txns.pop(request.get("txn"), None)
                with self._lock:
                    if txn.status == COMMITTED:
                        self._stats["commits"] += 1
                    else:
                        self._stats["aborts"] += 1
        return ok_response(
            request_id,
            commit_state=repr(commit_id),
            merge=isinstance(txn, MergeTransaction),
        )

    def _op_abort(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        txn = self._txn_of(conn, request)
        txn.abort()
        conn.txns.pop(request.get("txn"), None)
        with self._lock:
            self._stats["aborts"] += 1
        return ok_response(request_id)

    def _op_stats(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        with self._lock:
            stats: Dict[str, Any] = dict(self._stats)
            stats["connections_active"] = len(self._conns)
            stats["inflight"] = self._inflight
        stats["draining"] = self._closing
        stats["open_sessions"] = len(self.store.sessions())
        stats["open_txns"] = sum(
            1
            for sess in self.store.sessions()
            for txn in list(sess._active_txns)
            if txn.status == ACTIVE
        )
        stats["store"] = {
            "site": self.store.site,
            "states": len(self.store.dag),
            "leaves": len(self.store.dag.leaves()),
            "commits": self.store.metrics.commits,
            "merges": self.store.metrics.merges,
            "records": self.store.versions.num_records(),
        }
        workers_alive = getattr(self.store.versions, "workers_alive", None)
        if workers_alive is not None:
            stats["store"]["shard_workers"] = self.store.versions.n_workers
            stats["store"]["shard_workers_alive"] = workers_alive()
        with self._lock:
            subscribers = len(self._obs_subs)
        stats["obs"] = {
            "sampler": self._obs_task is not None,
            "interval_s": self.obs_sample_interval,
            "subscribers": subscribers,
            # The light form: gauges/counters/latency/shards, no series.
            "snapshot": ObsSampler.trim(self.obs.latest_or_sample(), 0),
        }
        return ok_response(request_id, stats=stats)

    def _op_obs_snapshot(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        tail = request.get("tail")
        if tail is not None and not isinstance(tail, int):
            raise _RequestError("BAD_REQUEST", "tail must be an integer")
        # With the sampler running, serve its latest snapshot (cheap, at
        # most one interval stale); without it, sample on demand — we are
        # already on the store executor, so this is race-free.
        if self._obs_task is not None:
            snapshot = self.obs.latest_or_sample()
        else:
            snapshot = self.obs.sample()
        return ok_response(request_id, snapshot=ObsSampler.trim(snapshot, tail))

    def _op_obs_subscribe(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        if self._obs_task is None or self._closing:
            raise _RequestError("OBS_UNAVAILABLE")
        with self._lock:
            sub = self._obs_subs.get(conn.id)
            resumed = sub is not None
            if sub is None:
                sub = _ObsSubscription(conn.id, conn.writer, self.obs_queue_frames)
                self._obs_subs[conn.id] = sub
        # The writer task must be created on the event loop thread; this
        # handler runs on the store executor.
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._ensure_sub_writer, sub)
        return ok_response(
            request_id,
            interval_s=self.obs_sample_interval,
            tail=self.obs_tail,
            resumed=resumed,
        )

    def _op_obs_unsubscribe(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        with self._lock:
            sub = self._obs_subs.pop(conn.id, None)
        if sub is not None and self._loop is not None:
            self._loop.call_soon_threadsafe(self._cancel_sub_writer, sub)
        # Idempotent: unsubscribing while not subscribed just reports so.
        return ok_response(
            request_id,
            subscribed=sub is not None,
            frames=sub.sent if sub is not None else 0,
            dropped=sub.dropped if sub is not None else 0,
        )

    def _op_bye(
        self, conn: _Connection, request_id: Any, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        # The response is sent first; the connection loop closes after.
        return ok_response(request_id)


# ---------------------------------------------------------------------------
# Running a server in the foreground (``tardis serve``).


def run_server(
    server: TardisServer,
    port_file: Optional[str] = None,
    announce: Callable[[str], None] = lambda line: print(line, flush=True),
) -> Dict[str, Any]:
    """Run ``server`` until SIGINT/SIGTERM, then drain; returns the report.

    ``port_file`` (written once the socket is bound, containing the real
    port) is how ``bench_net.py`` and the CI smoke job discover an
    ephemeral ``--port 0`` allocation.
    """

    async def _main() -> Dict[str, Any]:
        await server.start()
        announce(
            "tardis serve: listening on %s (site=%s, max_connections=%d)"
            % (server.address, server.store.site, server.max_connections)
        )
        loop = asyncio.get_running_loop()
        if port_file:

            def _write_port() -> None:
                with open(port_file, "w") as handle:
                    handle.write("%d\n" % server.port)

            await loop.run_in_executor(None, _write_port)
        stop = asyncio.Event()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, ValueError):
                pass  # platform without signal support on loops
        try:
            await stop.wait()
        finally:
            await server.shutdown()
        assert server.report is not None
        return server.report

    try:
        return asyncio.run(_main())
    except KeyboardInterrupt:
        # Signal handlers unavailable: best effort — the loop is gone,
        # so report whatever was gathered before the interrupt.
        return server.report or {"interrupted": True, "leaked_sessions": []}


# ---------------------------------------------------------------------------
# Running a server on a background thread (tests, in-process demos).


class ServerThread:
    """A TardisServer running its own event loop on a daemon thread."""

    def __init__(
        self, server: TardisServer, loop: asyncio.AbstractEventLoop, thread: threading.Thread
    ) -> None:
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return self.server.address

    def stop(self, drain_timeout: Optional[float] = None) -> Dict[str, Any]:
        """Gracefully shut the server down; returns the shutdown report."""
        future = asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain_timeout), self.loop
        )
        report = future.result(timeout=30.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        return report


def start_in_thread(
    store: Optional[TardisStore] = None, **server_kwargs: Any
) -> ServerThread:
    """Start a TardisServer on a fresh event loop in a daemon thread.

    Blocks until the server is listening (``handle.port`` is bound);
    ``handle.stop()`` drains and returns the shutdown report.
    """
    server = TardisServer(store=store, **server_kwargs)
    started = threading.Event()
    boot: Dict[str, Any] = {}

    def _run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        boot["loop"] = loop
        try:
            loop.run_until_complete(server.start())
        except OSError as exc:
            boot["error"] = exc
            started.set()
            loop.close()
            return
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    thread = threading.Thread(target=_run, name="tardis-server", daemon=True)
    thread.start()
    started.wait(timeout=10.0)
    if "error" in boot:
        raise boot["error"]
    return ServerThread(server, boot["loop"], thread)
