"""The TARDiS network front-end: wire protocol and asyncio TCP server.

``tardis serve`` (see :mod:`repro.tools.cli`) wraps
:class:`TardisServer` with signal handling and a shutdown report; tests
and in-process demos use :func:`start_in_thread`. The protocol is
specified in docs/internals.md §12.
"""

from repro.server.protocol import (
    ERROR_CODES,
    MAX_FRAME,
    OPS,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    error_response,
    ok_response,
)
from repro.server.server import ServerThread, TardisServer, start_in_thread

__all__ = [
    "ERROR_CODES",
    "MAX_FRAME",
    "OPS",
    "PROTOCOL_VERSION",
    "FrameDecoder",
    "encode_frame",
    "error_response",
    "ok_response",
    "ServerThread",
    "TardisServer",
    "start_in_thread",
]
