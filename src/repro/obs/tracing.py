"""Branch-aware tracing: spans and a bounded ring-buffer event log.

Two primitives:

* **Spans** follow one logical operation (a transaction, a merge, a GC
  cycle) through ``begin → ops → commit/abort``. Spans nest per thread;
  a finished span records its duration and its parent into the event
  log, so a transaction's life reads as one indented trace.
* **Events** are point-in-time records of the branch-level happenings
  the paper reasons about — fork, merge, promotion, GC, replication
  apply — each a ``kind`` plus free-form attributes (state ids, key
  counts).

Both land in a bounded ring buffer (:class:`Tracer` keeps the newest
``capacity`` events), so tracing is safe to leave on in long runs: memory
is fixed, and ``record`` is an O(1) deque append under one lock.

Like metrics, the module-level :data:`DEFAULT` tracer starts disabled —
hot paths guard with ``if tracer.enabled:`` and pay one attribute check.

Event kind catalogue (see docs/internals.md §8):

== ==================  ===========================================
kind                    attrs
== ==================  ===========================================
``txn.commit``          ``state``, ``writes``, ``ripple``, ``fork``
``txn.abort``           ``reason``
``branch.fork``         ``state``, ``parent``
``branch.merge``        ``state``, ``parents``, ``writes``
``gc.cycle``            ``marked``, ``removed``, ``promoted``, ``dropped``, ``live_states``
``gc.promotion``        ``state``, ``promoted_to``
``repl.send``           ``state``, ``src``
``repl.apply``          ``state``, ``src``
``repl.cache``          ``state``, ``missing``
``repl.fetch``          ``state``, ``peer``
``repl.drop``           ``state``

Cross-replica events additionally carry ``trace``/``parent`` (the
:class:`~repro.obs.context.TraceContext` of the originating commit) and
``site`` once merged across ring buffers — see :mod:`repro.obs.context`.
``spec.confirm``        ``tickets``
``spec.misspeculate``   ``tickets``
``span``                ``name``, ``ms``, ``depth``, ``parent``
== ==================  ===========================================
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

from repro.obs import metrics as _met

__all__ = [
    "TraceEvent",
    "Span",
    "Tracer",
    "DEFAULT",
    "default_tracer",
    "set_default_tracer",
    "enable",
    "use_tracer",
]


class TraceEvent:
    """One entry of the event log."""

    __slots__ = ("ts", "kind", "attrs")

    def __init__(self, ts: float, kind: str, attrs: Dict[str, Any]):
        self.ts = ts
        self.kind = kind
        self.attrs = attrs

    def to_dict(self) -> Dict[str, Any]:
        data = {"ts": self.ts, "kind": self.kind}
        data.update(self.attrs)
        return data

    def __repr__(self) -> str:
        attrs = " ".join("%s=%r" % kv for kv in self.attrs.items())
        return "<%s %s>" % (self.kind, attrs)


class Span:
    """One live traced operation. Created via :meth:`Tracer.span`."""

    __slots__ = ("name", "attrs", "start", "end", "depth", "parent")

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        start: float,
        depth: int,
        parent: Optional[str],
    ):
        self.name = name
        self.attrs = attrs
        self.start = start
        self.end: Optional[float] = None
        #: nesting depth at creation (0 == top level)
        self.depth = depth
        #: name of the enclosing span, if any
        self.parent = parent

    @property
    def duration_ms(self) -> float:
        end = self.end if self.end is not None else self.start
        return (end - self.start) * 1000.0

    def annotate(self, **attrs: Any) -> None:
        self.attrs.update(attrs)

    def __repr__(self) -> str:
        state = "open" if self.end is None else "%.3fms" % self.duration_ms
        return "<Span %s depth=%d %s>" % (self.name, self.depth, state)


class Tracer:
    """Span contexts plus a bounded ring buffer of trace events."""

    _GUARDED_BY = {
        "_events": "self._lock",
        "dropped": "self._lock",
    }

    def __init__(
        self,
        capacity: int = 4096,
        enabled: bool = True,
        clock=time.perf_counter,
    ):
        self.enabled = enabled
        self.capacity = capacity
        self._clock = clock
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()
        #: events evicted by the ring buffer — a nonzero value means the
        #: oldest part of any reconstructed timeline is missing.
        self.dropped = 0
        #: cached tardis_trace_dropped_total counter (at capacity, every
        #: append evicts, so the metric lookup must not be per-event).
        self._drop_registry = None
        self._drop_counter = None

    # -- events ----------------------------------------------------------
    #
    # The ring stores raw ``(ts, kind, attrs)`` tuples, not TraceEvent
    # objects: recording is the hot path (several events per traced
    # commit) and the wrapper is only needed by readers, so it is
    # materialized lazily in :meth:`events`. Successive ``events()``
    # calls therefore return *new* TraceEvent wrappers, but they share
    # the underlying attrs dicts, so attr mutations (e.g. the site
    # tagging in ``merge_events``) stick across calls.

    def _record(self, ts: float, kind: str, attrs: Dict[str, Any]) -> None:
        with self._lock:
            evicting = len(self._events) == self.capacity
            if evicting:
                self.dropped += 1
            self._events.append((ts, kind, attrs))
        if evicting:
            registry = _met.DEFAULT
            if registry.enabled:
                if self._drop_registry is not registry:
                    self._drop_registry = registry
                    self._drop_counter = registry.counter(
                        "tardis_trace_dropped_total"
                    )
                self._drop_counter.inc()

    def event(self, kind: str, **attrs: Any) -> None:
        """Record a point event; no-op when disabled."""
        if not self.enabled:
            return
        self._record(self._clock(), kind, attrs)

    def events(
        self, kind: Optional[str] = None, limit: Optional[int] = None
    ) -> List[TraceEvent]:
        """Newest-last view of the buffer, optionally filtered by kind."""
        with self._lock:
            raw = list(self._events)
        if kind is not None:
            raw = [entry for entry in raw if entry[1] == kind]
        if limit is not None:
            raw = raw[-limit:] if limit > 0 else []
        return [TraceEvent(ts, k, attrs) for ts, k, attrs in raw]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    # -- spans -----------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Open a nested span; on exit, record it into the event log."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1].name if stack else None
        span = Span(name, dict(attrs), self._clock(), len(stack), parent)
        stack.append(span)
        try:
            yield span
        finally:
            span.end = self._clock()
            stack.pop()
            entry_attrs = {
                "name": span.name,
                "ms": span.duration_ms,
                "depth": span.depth,
                "parent": span.parent,
            }
            entry_attrs.update(span.attrs)
            self._record(span.end, "span", entry_attrs)

    def to_list(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        return [e.to_dict() for e in self.events(limit=limit)]

    def __repr__(self) -> str:
        return "<Tracer enabled=%s events=%d/%d>" % (
            self.enabled,
            len(self._events),
            self.capacity,
        )


#: sentinel yielded by a disabled tracer so ``with tracer.span(...) as s:``
#: works unconditionally.
_NULL_SPAN = Span("(disabled)", {}, 0.0, 0, None)
_NULL_SPAN.end = 0.0


#: The library-wide default tracer. Disabled until a consumer opts in.
DEFAULT = Tracer(enabled=False)


def default_tracer() -> Tracer:
    return DEFAULT


def set_default_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the module default; returns the previous one."""
    global DEFAULT
    previous = DEFAULT
    DEFAULT = tracer
    return previous


def enable(on: bool = True) -> None:
    """Toggle recording on the current default tracer."""
    DEFAULT.enabled = on


@contextmanager
def use_tracer(tracer: Tracer):
    """Temporarily install ``tracer`` as the default."""
    previous = set_default_tracer(tracer)
    try:
        yield tracer
    finally:
        set_default_tracer(previous)
