"""Render a registry to JSON / Prometheus text; snapshot/diff deltas.

``snapshot()`` captures a registry as plain data; ``diff(before, after)``
subtracts two snapshots, which is how benchmarks report *per-run*
counters from long-lived stores (take a snapshot before the measured
window, one after, diff them).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, Optional

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import Tracer

__all__ = ["to_json", "to_prometheus", "snapshot", "diff", "histogram_from_snapshot"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    clean = _NAME_RE.sub("_", name)
    if clean and clean[0].isdigit():
        clean = "_" + clean
    return clean


# -- JSON ------------------------------------------------------------------


def to_json(
    registry: MetricsRegistry,
    tracer: Optional[Tracer] = None,
    indent: Optional[int] = 2,
    include_buckets: bool = False,
    event_limit: int = 100,
) -> str:
    """The registry (and optionally recent trace events) as a JSON doc."""
    payload: Dict[str, Any] = {"metrics": registry.to_dict(include_buckets)}
    if tracer is not None:
        payload["events"] = tracer.to_list(limit=event_limit)
    return json.dumps(payload, indent=indent, default=str, sort_keys=True)


# -- Prometheus text exposition format -------------------------------------


def to_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text format v0.0.4 (histograms as cumulative buckets)."""
    lines = []
    for metric in registry.metrics():
        name = _prom_name(metric.name)
        if metric.help:
            lines.append("# HELP %s %s" % (name, metric.help))
        if isinstance(metric, Counter):
            lines.append("# TYPE %s counter" % name)
            lines.append("%s %d" % (name, metric.value))
        elif isinstance(metric, Gauge):
            lines.append("# TYPE %s gauge" % name)
            lines.append("%s %s" % (name, _fmt(metric.value)))
        elif isinstance(metric, Histogram):
            lines.append("# TYPE %s histogram" % name)
            cumulative = 0
            for upper, count in metric.buckets():
                cumulative += count
                lines.append(
                    '%s_bucket{le="%s"} %d' % (name, _fmt(upper), cumulative)
                )
            lines.append('%s_bucket{le="+Inf"} %d' % (name, metric.count))
            lines.append("%s_sum %s" % (name, _fmt(metric.sum)))
            lines.append("%s_count %d" % (name, metric.count))
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


# -- snapshot / diff --------------------------------------------------------


def snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """Capture the registry as plain data (JSON-safe, including buckets)."""
    return registry.to_dict(include_buckets=True)


def diff(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """Per-metric delta between two snapshots of the same registry.

    Counters subtract; gauges report the *after* value plus the delta;
    histograms subtract counts/sums and per-bucket counts, so quantiles
    of just the window can be rebuilt via
    :func:`histogram_from_snapshot`. Metrics absent from ``before`` are
    treated as zero.
    """
    out: Dict[str, Any] = {}
    for name, now in after.items():
        prev = before.get(name, {})
        kind = now.get("type")
        if kind == "counter":
            out[name] = {"type": kind, "value": now["value"] - prev.get("value", 0)}
        elif kind == "gauge":
            out[name] = {
                "type": kind,
                "value": now["value"],
                "delta": now["value"] - prev.get("value", 0.0),
            }
        elif kind == "histogram":
            prev_buckets = prev.get("buckets", {})
            buckets = {
                idx: count - prev_buckets.get(idx, 0)
                for idx, count in now.get("buckets", {}).items()
                if count - prev_buckets.get(idx, 0)
            }
            out[name] = {
                "type": kind,
                "count": now["count"] - prev.get("count", 0),
                "sum": now["sum"] - prev.get("sum", 0.0),
                "zero": now.get("zero", 0) - prev.get("zero", 0),
                "buckets": buckets,
            }
        else:  # pragma: no cover - future metric kinds pass through
            out[name] = now
    return out


def histogram_from_snapshot(name: str, data: Dict[str, Any]) -> Histogram:
    """Rebuild a histogram from snapshot/diff data (quantiles of a window)."""
    hist = Histogram(name)
    for idx, count in data.get("buckets", {}).items():
        index = int(idx)
        lo, hi = Histogram.bucket_bounds(index)
        mid = (lo + hi) / 2.0
        hist._buckets[index] = hist._buckets.get(index, 0) + count
        hist._count += count
        hist._sum += mid * count
        hist._min = min(hist._min, lo)
        hist._max = max(hist._max, hi)
    zero = data.get("zero", 0)
    if zero:
        hist._zero += zero
        hist._count += zero
        hist._min = min(hist._min, 0.0)
        hist._max = max(hist._max, 0.0)
    return hist
