"""Metrics primitives: counters, gauges, log-bucketed histograms.

A :class:`MetricsRegistry` is a thread-safe namespace of named metrics.
The registry carries a single cheap ``enabled`` flag so instrumented hot
paths can skip all work with one attribute check::

    from repro.obs import metrics as obs

    reg = obs.DEFAULT
    if reg.enabled:
        reg.inc("tardis_txn_commit_total")

Histograms are **fixed log-linear buckets** (HdrHistogram-style): each
power of two is split into :data:`Histogram.SUBBUCKETS` linear
sub-buckets, so ``record`` is O(1), memory is proportional to the number
of *occupied* buckets (a sparse dict), and two histograms recorded on
different threads or sites merge by adding bucket counts. Quantile
estimates are bucket midpoints, so the relative error is bounded by
``1 / SUBBUCKETS`` (see :meth:`Histogram.quantile`). This is the
contrast with :class:`repro.workload.stats.LatencyStats`, which keeps
every sample.

The module-level :data:`DEFAULT` registry starts **disabled**: the
library records nothing until a consumer turns it on (``enable()``) or
installs its own registry (``use_registry``), so un-instrumented users
pay only the flag check.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT",
    "METRIC_NAMES",
    "SERIES_NAMES",
    "default_registry",
    "set_default_registry",
    "enable",
    "use_registry",
]


class Counter:
    """A monotonically increasing named count."""

    kind = "counter"
    __slots__ = ("name", "help", "_value", "_lock")

    _GUARDED_BY = {"_value": "self._lock"}

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self) -> int:
        return self._value

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    def merge(self, other: "Counter") -> None:
        self.inc(other._value)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self._value}

    def __repr__(self) -> str:
        return "<Counter %s=%d>" % (self.name, self._value)


class Gauge:
    """A named value that can go up and down (live states, queue depth)."""

    kind = "gauge"
    __slots__ = ("name", "help", "_value", "_lock")

    _GUARDED_BY = {"_value": "self._lock"}

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    def merge(self, other: "Gauge") -> None:
        # Merging gauges across threads/sites: sum (live states per site
        # add up; consumers wanting max can read per-site registries).
        self.add(other._value)

    def to_dict(self) -> Dict[str, Any]:
        return {"type": self.kind, "value": self._value}

    def __repr__(self) -> str:
        return "<Gauge %s=%r>" % (self.name, self._value)


class Histogram:
    """Streaming log-linear histogram: O(1) record, bounded error.

    Bucket layout: a positive value ``v`` with ``frexp(v) == (m, e)``
    (``m`` in ``[0.5, 1)``) lands in bucket ``e * SUBBUCKETS + sub``
    where ``sub = floor((2m - 1) * SUBBUCKETS)``. Bucket ``(e, sub)``
    spans ``[2**(e-1) * (1 + sub/S), 2**(e-1) * (1 + (sub+1)/S))`` so
    the relative bucket width is at most ``1/SUBBUCKETS``. Zero and
    negative values are counted in a dedicated zero bucket.
    """

    kind = "histogram"
    SUBBUCKETS = 16

    __slots__ = (
        "name",
        "help",
        "_buckets",
        "_zero",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
    )

    _GUARDED_BY = {
        "_buckets": "self._lock",
        "_zero": "self._lock",
        "_count": "self._lock",
        "_sum": "self._lock",
        "_min": "self._lock",
        "_max": "self._lock",
    }

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._buckets: Dict[int, int] = {}
        self._zero = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------

    @classmethod
    def bucket_index(cls, value: float) -> Optional[int]:
        """The bucket index of ``value``; None for the zero bucket."""
        if value <= 0.0:
            return None
        m, e = math.frexp(value)
        sub = int((m * 2.0 - 1.0) * cls.SUBBUCKETS)
        if sub >= cls.SUBBUCKETS:  # m rounded up to 1.0
            sub = cls.SUBBUCKETS - 1
        return e * cls.SUBBUCKETS + sub

    @classmethod
    def bucket_bounds(cls, index: int) -> Tuple[float, float]:
        """``[lo, hi)`` bounds of bucket ``index``."""
        e, sub = divmod(index, cls.SUBBUCKETS)
        base = math.ldexp(1.0, e - 1)
        lo = base * (1.0 + sub / cls.SUBBUCKETS)
        hi = base * (1.0 + (sub + 1) / cls.SUBBUCKETS)
        return lo, hi

    def record(self, value: float) -> None:
        # bucket_index inlined: record runs several times per transaction
        # and the classmethod dispatch is measurable at that rate.
        if value <= 0.0:
            index = None
        else:
            m, e = math.frexp(value)
            sub = int((m * 2.0 - 1.0) * self.SUBBUCKETS)
            if sub >= self.SUBBUCKETS:  # m rounded up to 1.0
                sub = self.SUBBUCKETS - 1
            index = e * self.SUBBUCKETS + sub
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if index is None:
                self._zero += 1
            else:
                self._buckets[index] = self._buckets.get(index, 0) + 1

    def record_many(self, values) -> None:
        """Fold a batch of samples in under one lock acquisition.

        For producers that already keep their samples elsewhere (the
        workload runner's latency list), one end-of-run batch costs a
        single lock and loop instead of a per-transaction ``record``.
        """
        subbuckets = self.SUBBUCKETS
        with self._lock:
            buckets = self._buckets
            for value in values:
                self._count += 1
                self._sum += value
                if value < self._min:
                    self._min = value
                if value > self._max:
                    self._max = value
                if value <= 0.0:
                    self._zero += 1
                    continue
                m, e = math.frexp(value)
                sub = int((m * 2.0 - 1.0) * subbuckets)
                if sub >= subbuckets:  # m rounded up to 1.0
                    sub = subbuckets - 1
                index = e * subbuckets + sub
                buckets[index] = buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram in (cross-thread / cross-site merge)."""
        with other._lock:
            buckets = dict(other._buckets)
            zero, count = other._zero, other._count
            total, lo, hi = other._sum, other._min, other._max
        with self._lock:
            for index, n in buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n
            self._zero += zero
            self._count += count
            self._sum += total
            self._min = min(self._min, lo)
            self._max = max(self._max, hi)

    # -- queries ---------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]).

        Returns the midpoint of the bucket holding the rank-``ceil(qN)``
        sample, clamped to the observed min/max — so the estimate's
        relative error is at most ``1 / SUBBUCKETS``.
        """
        with self._lock:
            count = self._count
            if not count:
                return 0.0
            rank = max(1, min(count, math.ceil(q * count)))
            cumulative = self._zero
            if rank <= cumulative:
                return 0.0
            for index in sorted(self._buckets):
                cumulative += self._buckets[index]
                if rank <= cumulative:
                    lo, hi = self.bucket_bounds(index)
                    mid = (lo + hi) / 2.0
                    return max(self._min, min(self._max, mid))
            return self._max

    def percentile(self, p: float) -> float:
        return self.quantile(p / 100.0)

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def buckets(self) -> List[Tuple[float, int]]:
        """Occupied buckets as ``(upper_bound, count)``, ascending."""
        with self._lock:
            out = [(0.0, self._zero)] if self._zero else []
            for index in sorted(self._buckets):
                out.append((self.bucket_bounds(index)[1], self._buckets[index]))
        return out

    def to_dict(self, include_buckets: bool = False) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.quantile(0.90),
            "p99": self.p99,
        }
        if include_buckets:
            with self._lock:
                data["zero"] = self._zero
                data["buckets"] = {str(i): n for i, n in sorted(self._buckets.items())}
        return data

    def __repr__(self) -> str:
        return "<Histogram %s n=%d mean=%.4g>" % (self.name, self._count, self.mean)


class MetricsRegistry:
    """A thread-safe namespace of named metrics.

    ``get-or-create`` accessors (:meth:`counter`, :meth:`gauge`,
    :meth:`histogram`) are idempotent; convenience recorders
    (:meth:`inc`, :meth:`observe`, :meth:`set_gauge`) combine lookup and
    update and no-op when the registry is disabled, so call sites stay
    one line. Instrumented hot paths should still guard with
    ``if registry.enabled:`` to skip argument evaluation entirely.
    """

    _GUARDED_BY = {"_metrics": "self._lock"}

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # -- structure -------------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    "metric %r already registered as %s" % (name, metric.kind)
                )
            return metric
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    "metric %r already registered as %s" % (name, metric.kind)
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)

    def get(self, name: str):
        return self._metrics.get(name)

    def counter_value(self, name: str, default: int = 0) -> int:
        """Current value of counter ``name``; ``default`` when absent.

        Read-side convenience for consumers summarizing related
        counters (e.g. ``tardis top`` computing cache hit rates from
        ``tardis_*_cache_hit_total`` / ``_miss_total``) without
        creating the metric as a side effect.
        """
        metric = self._metrics.get(name)
        if metric is None or not isinstance(metric, Counter):
            return default
        return metric.value

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def metrics(self) -> Iterator[Any]:
        for name in self.names():
            yield self._metrics[name]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- convenience recorders -------------------------------------------

    # The recorders bypass the typed accessors on a dict hit: these run
    # once per transaction, and the accessor's extra call frame plus
    # isinstance check measurably widens the instrumented/uninstrumented
    # gap. Trade-off: recording under a name registered as a different
    # kind raises AttributeError here instead of the accessors'
    # TypeError; creation (the cold path) still type-checks.

    def inc(self, name: str, n: int = 1) -> None:
        if self.enabled:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._get_or_create(Counter, name, "")
            metric.inc(n)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._get_or_create(Histogram, name, "")
            metric.record(value)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._get_or_create(Gauge, name, "")
            metric.set(value)

    # -- aggregation ------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (same-named metrics must agree on kind)."""
        for name in other.names():
            theirs = other.get(name)
            mine = self._get_or_create(type(theirs), name, theirs.help)
            mine.merge(theirs)

    def to_dict(self, include_buckets: bool = False) -> Dict[str, Any]:
        out = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.name] = metric.to_dict(include_buckets=include_buckets)
            else:
                out[metric.name] = metric.to_dict()
        return out

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __repr__(self) -> str:
        return "<MetricsRegistry enabled=%s metrics=%d>" % (
            self.enabled,
            len(self._metrics),
        )


# ---------------------------------------------------------------------------
# The metric name catalogue.
#
# The registry creates metrics on first use, so a typo'd name would
# silently split a metric in two. Every ``tardis_*`` registry metric the
# library records must be declared here, and every name declared here
# must have a producer; ``tardis check`` (rule ``metric-name-drift``)
# enforces both directions, plus that consumers (CLI, docs, tests) only
# reference declared names.

#: registry metrics (counters/gauges/histograms), name -> help.
METRIC_NAMES: Dict[str, str] = {
    "tardis_begin_cache_hit_total": "begin() served from the begin cache",
    "tardis_begin_cache_miss_total": "begin() recomputed read states",
    "tardis_begin_visits": "DAG states visited per begin()",
    "tardis_branch_count": "current leaf count (gauge)",
    "tardis_branch_fork_total": "forks created by concurrent commits",
    "tardis_branch_merge_total": "merge commits",
    "tardis_commit_cross_shard_total": "commits whose write set spanned shards",
    "tardis_commit_ripple_steps": "states rippled past per commit",
    "tardis_commit_shard_abort_total": "commits aborted by a failed shard prepare",
    "tardis_dag_depth": "longest root-to-leaf path (gauge)",
    "tardis_dag_retro_updates_total": "retroactive path_mask widenings",
    "tardis_dag_splice_total": "states spliced out of the DAG",
    "tardis_dag_width": "widest antichain estimate (gauge)",
    "tardis_gc_cycle_total": "GC cycles run",
    "tardis_gc_live_records": "records alive after a GC cycle",
    "tardis_gc_live_states": "states alive after a GC cycle",
    "tardis_gc_promotion_table": "promotion-table size after GC",
    "tardis_gc_records_dropped_total": "record versions GC reclaimed",
    "tardis_gc_records_promoted_total": "record versions GC promoted",
    "tardis_gc_states_removed_total": "DAG states GC removed",
    "tardis_lockset_races_total": "races the lockset checker reported",
    "tardis_lockset_tracked_total": "fields watched by the lockset checker",
    "tardis_merge_conflict_keys": "conflicting keys per merge",
    "tardis_merge_parents": "parents per merge commit",
    "tardis_net_buffered_dropped_total": "buffered messages dropped",
    "tardis_net_buffered_flushed_total": "buffered messages flushed",
    "tardis_net_buffered_total": "messages buffered by partitions",
    "tardis_net_messages_delivered_total": "network messages delivered",
    "tardis_net_messages_sent_total": "network messages sent",
    "tardis_net_server_bytes_in_total": "bytes read from client sockets",
    "tardis_net_server_bytes_out_total": "bytes written to client sockets",
    "tardis_net_server_connections_active": "live server connections (gauge)",
    "tardis_net_server_connections_total": "connections the server accepted",
    "tardis_net_server_disconnect_aborts_total": "txns aborted by disconnect cleanup",
    "tardis_net_server_errors_total": "error responses sent",
    "tardis_net_server_obs_dropped_total": "obs push frames dropped (slow consumers)",
    "tardis_net_server_obs_frames_total": "obs push frames delivered to subscribers",
    "tardis_net_server_obs_samples_total": "live sampler ticks taken",
    "tardis_net_server_obs_subscribers": "live obs subscriptions (gauge)",
    "tardis_net_server_request_ms": "server request latency (ms); also labeled @op=<OP>",
    "tardis_net_server_requests_total": "requests the server processed",
    "tardis_net_server_timeouts_total": "requests that hit the per-request timeout",
    "tardis_repl_apply_total": "replicated commits applied locally",
    "tardis_repl_cache_total": "replication fetches served from cache",
    "tardis_repl_drop_total": "replication messages dropped",
    "tardis_repl_fetch_total": "replication state fetches",
    "tardis_repl_lag_total": "total cross-site replication lag (gauge)",
    "tardis_repl_remote_apply_total": "remote commit records applied",
    "tardis_repl_send_total": "replication messages sent",
    "tardis_shard_access_total": "record accesses routed to a shard (@s<i> per shard)",
    "tardis_spec_confirm_total": "speculative executions confirmed",
    "tardis_spec_misspec_total": "misspeculations detected",
    "tardis_spec_reexec_total": "speculative re-executions",
    "tardis_spec_submit_total": "speculative submissions",
    "tardis_trace_dropped_total": "trace events dropped by the ring",
    "tardis_txn_abort_total": "transactions aborted",
    "tardis_txn_begin_total": "transactions begun",
    "tardis_txn_commit_readonly_total": "read-only commit fast paths",
    "tardis_txn_commit_total": "transactions committed",
    "tardis_txn_write_keys": "keys written per committing transaction",
    "tardis_vis_cache_hit_total": "visibility-cache hits",
    "tardis_vis_cache_invalidations_total": "visibility-cache invalidations",
    "tardis_vis_cache_miss_total": "visibility-cache misses",
    "tardis_wal_group_flush_total": "WAL group-commit flushes",
    "tardis_writeset_index_hit_total": "write-set index hits",
    "tardis_writeset_index_miss_total": "write-set index misses",
}

#: windowed-series base names; instances carry an ``@<site>`` suffix
#: (``@s<i>`` per shard, ``@w<i>`` per worker for the shard-plane ones).
SERIES_NAMES: Dict[str, str] = {
    "tardis_branch_count": "leaves per site over time",
    "tardis_dag_depth": "DAG depth per site over time",
    "tardis_dag_width": "DAG width per site over time",
    "tardis_merge_debt": "branches beyond one pending merge",
    "tardis_net_commits": "cumulative server-side commits over time",
    "tardis_net_connections": "live server connections over time",
    "tardis_net_inflight": "requests in flight over time",
    "tardis_net_requests": "cumulative requests processed over time",
    "tardis_net_sessions": "open store sessions over time",
    "tardis_repl_lag": "states committed at src not applied at dst",
    "tardis_shard_accesses": "cumulative accesses per shard over time",
    "tardis_shard_queue_depth": "in-flight batches per shard worker over time",
    "tardis_shard_workers_alive": "live shard workers over time",
    "tardis_staleness_ms": "time since the site last had a single leaf",
}


#: The library-wide default registry. Disabled until a consumer opts in.
DEFAULT = MetricsRegistry(enabled=False)


def default_registry() -> MetricsRegistry:
    return DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the module default; returns the previous one."""
    global DEFAULT
    previous = DEFAULT
    DEFAULT = registry
    return previous


def enable(on: bool = True) -> None:
    """Toggle recording on the current default registry."""
    DEFAULT.enabled = on


@contextmanager
def use_registry(registry: MetricsRegistry):
    """Temporarily install ``registry`` as the default (benchmark runs)."""
    previous = set_default_registry(registry)
    try:
        yield registry
    finally:
        set_default_registry(previous)
