"""The branch-divergence flight recorder.

A flight recorder answers "what was the system doing when it went
wrong?" without anyone watching: when a :class:`~repro.obs.series.Trigger`
on the :class:`~repro.obs.series.DivergenceMonitor` trips (e.g. branch
count above K for W simulated ms), the recorder freezes

* the newest N trace events from every site's ring buffer (merged,
  causally ordered, with per-site drop counts so truncation is visible),
* the tails of every divergence series (the quantitative run-up), and
* a structural snapshot of each site's State DAG at the moment of the
  trip (states, parents, leaves, marks, promotion-table size),

into one JSON document. ``python -m repro.tools.cli flight <dump.json>``
pretty-prints it (:func:`format_flight`).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.obs.context import merge_events
from repro.obs.series import DivergenceMonitor, Trigger
from repro.obs.tracing import Tracer

__all__ = ["FlightRecorder", "dag_snapshot", "format_flight"]

#: schema version of flight-recorder dump documents.
FLIGHT_SCHEMA_VERSION = 1


def dag_snapshot(store) -> Dict[str, Any]:
    """A JSON-safe structural snapshot of one store's State DAG."""
    states = []
    for state in sorted(store.dag.states(), key=lambda s: s.id):
        states.append(
            {
                "id": repr(state.id),
                "parents": [repr(p.id) for p in state.parents],
                "children": len(state.children),
                "leaf": state.is_leaf,
                "merge": state.is_merge,
                "marked": state.marked,
                "write_keys": len(state.write_keys),
            }
        )
    return {
        "site": store.site,
        "states": states,
        "leaves": [repr(s.id) for s in store.dag.leaves()],
        "promotion_table": store.dag.promotion_table_size,
        "records": store.versions.num_records(),
    }


class FlightRecorder:
    """Freezes trace + series + DAG state to JSON when a threshold trips.

    ``tracers`` maps site name to that site's :class:`Tracer` (one entry
    for a single-site store); ``stores`` maps site name to the store
    whose DAG gets snapshotted. ``arm()`` registers a threshold rule on
    a monitor; each excursion produces at most one dump (the trigger
    re-arms when the series falls back below the threshold).
    """

    def __init__(
        self,
        tracers: Dict[str, Tracer],
        stores: Dict[str, Any],
        monitor: Optional[DivergenceMonitor] = None,
        event_limit: int = 200,
        series_tail: int = 32,
        out_dir: Optional[str] = None,
    ):
        self.tracers = dict(tracers)
        self.stores = dict(stores)
        self.monitor = monitor
        self.event_limit = event_limit
        self.series_tail = series_tail
        #: None disables file output (dumps stay in-memory on .dumps).
        self.out_dir = out_dir
        self.dumps: List[Dict[str, Any]] = []
        self.paths: List[str] = []

    # -- arming ---------------------------------------------------------------

    def arm(
        self,
        series: str,
        threshold: float,
        hold_ms: float,
        monitor: Optional[DivergenceMonitor] = None,
    ) -> Trigger:
        """Dump when ``series`` exceeds ``threshold`` for ``hold_ms``."""
        monitor = monitor or self.monitor
        if monitor is None:
            raise ValueError("no DivergenceMonitor to arm against")
        self.monitor = monitor

        def action(mon, trigger, now, name, value):
            self.record(
                reason="%s=%g > %g for %gms" % (name, value, threshold, hold_ms),
                tripped_at=now,
                rule={**trigger.to_dict(), "series_tripped": name, "value": value},
            )

        return monitor.add_trigger(series, threshold, hold_ms, action)

    # -- recording ------------------------------------------------------------

    def snapshot(
        self,
        reason: str,
        tripped_at: Optional[float] = None,
        rule: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Build (without persisting) one flight dump document."""
        events = merge_events(self.tracers)[-self.event_limit :]
        doc: Dict[str, Any] = {
            "flight_schema": FLIGHT_SCHEMA_VERSION,
            "reason": reason,
            "tripped_at_ms": tripped_at,
            "rule": rule or {},
            "events": [
                {"ts": e.ts, "kind": e.kind, **{k: repr(v) if not isinstance(v, (str, int, float, bool, type(None))) else v for k, v in e.attrs.items()}}
                for e in events
            ],
            "dropped_events": {
                site: tracer.dropped for site, tracer in sorted(self.tracers.items())
            },
            "series": self.monitor.tails(self.series_tail) if self.monitor else {},
            "dag": {
                site: dag_snapshot(store)
                for site, store in sorted(self.stores.items())
            },
        }
        return doc

    def record(
        self,
        reason: str,
        tripped_at: Optional[float] = None,
        rule: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Snapshot now; persist to ``out_dir`` when configured."""
        doc = self.snapshot(reason, tripped_at=tripped_at, rule=rule)
        self.dumps.append(doc)
        if self.out_dir is not None:
            name = "flight_%03d.json" % len(self.dumps)
            path = os.path.join(self.out_dir, name)
            with open(path, "w") as handle:
                json.dump(doc, handle, indent=2, default=str, sort_keys=True)
                handle.write("\n")
            self.paths.append(path)
        return doc

    def __repr__(self) -> str:
        return "<FlightRecorder sites=%d dumps=%d>" % (
            len(self.tracers),
            len(self.dumps),
        )


# -- pretty printing ---------------------------------------------------------


def format_flight(doc: Dict[str, Any], event_limit: int = 50) -> str:
    """Render a flight dump for humans (``tardis flight <dump.json>``)."""
    lines = []
    lines.append("=" * 72)
    lines.append(
        "FLIGHT RECORDER DUMP — %s" % doc.get("reason", "(no reason recorded)")
    )
    tripped = doc.get("tripped_at_ms")
    rule = doc.get("rule") or {}
    if tripped is not None:
        lines.append(
            "tripped at %.3fms  rule: %s > %s held %sms"
            % (
                tripped,
                rule.get("series", "?"),
                rule.get("threshold", "?"),
                rule.get("hold_ms", "?"),
            )
        )
    lines.append("=" * 72)

    dropped = doc.get("dropped_events") or {}
    if any(dropped.values()):
        lines.append("")
        lines.append(
            "!! truncated timelines: %s"
            % ", ".join(
                "%s dropped %d" % (site, n) for site, n in sorted(dropped.items()) if n
            )
        )

    series = doc.get("series") or {}
    if series:
        lines.append("")
        lines.append("-- series (newest samples) " + "-" * 33)
        for name, samples in sorted(series.items()):
            if not samples:
                continue
            t, v = samples[-1]
            values = " ".join("%g" % s[1] for s in samples[-8:])
            lines.append("  %-32s last=%g @ %.1fms   tail: %s" % (name, v, t, values))

    dags = doc.get("dag") or {}
    if dags:
        lines.append("")
        lines.append("-- state DAGs " + "-" * 46)
        for site, snap in sorted(dags.items()):
            lines.append(
                "  %-6s states=%-4d leaves=%-3d promotions=%-3d records=%d"
                % (
                    site,
                    len(snap.get("states", [])),
                    len(snap.get("leaves", [])),
                    snap.get("promotion_table", 0),
                    snap.get("records", 0),
                )
            )
            for leaf in snap.get("leaves", []):
                lines.append("    leaf %s" % leaf)

    events = doc.get("events") or []
    if events:
        lines.append("")
        lines.append("-- last %d trace events " % min(len(events), event_limit) + "-" * 36)
        for event in events[-event_limit:]:
            attrs = {
                k: v
                for k, v in event.items()
                if k not in ("ts", "kind", "site")
            }
            rendered = " ".join("%s=%s" % kv for kv in sorted(attrs.items()))
            lines.append(
                "  %10.3fms  %-6s %-14s %s"
                % (event.get("ts", 0.0), event.get("site", "?"), event["kind"], rendered)
            )
    return "\n".join(lines)
