"""Windowed time-series: how divergence evolves *over* a run.

Counters and histograms aggregate; they cannot answer the questions the
paper's Figures 10–13 are actually about — how branch count, DAG
width/depth, replication lag, and merge debt evolve over (simulated)
time. This module adds the missing shape:

* :class:`WindowedGauge` / :class:`WindowedCounter` — a fixed-size ring
  of ``(sim_time_ms, value)`` samples (memory bounded, O(1) append);
* :class:`DivergenceMonitor` — samples the branch-divergence state of
  one or many TARDiS stores on a discrete-event-simulator tick and
  feeds the series; in a cluster it also measures per-peer replication
  lag (states committed at one site, not yet applied at another);
* :class:`Trigger` — a threshold rule (``value > threshold`` held for
  ``hold_ms``) that fires an action once per excursion — the hook the
  flight recorder (:mod:`repro.obs.flight`) arms.

Series serialize as ``{"type": "series", "samples": [[t, v], ...]}`` and
are folded into ``RunResult.obs_metrics`` / ``BENCH_*.json`` alongside
the registry snapshot (see docs/internals.md §8).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import metrics as _met

__all__ = [
    "WindowedGauge",
    "WindowedCounter",
    "Trigger",
    "DivergenceMonitor",
    "dag_extent",
]


class WindowedGauge:
    """A named ring of ``(t, value)`` samples; newest ``capacity`` kept."""

    kind = "series"
    __slots__ = ("name", "help", "capacity", "_samples")

    def __init__(self, name: str, capacity: int = 512, help: str = ""):
        self.name = name
        self.help = help
        self.capacity = capacity
        self._samples: deque = deque(maxlen=capacity)

    def sample(self, t: float, value: float) -> None:
        self._samples.append((t, value))

    def samples(self) -> List[Tuple[float, float]]:
        return list(self._samples)

    def last(self) -> Optional[Tuple[float, float]]:
        return self._samples[-1] if self._samples else None

    def __len__(self) -> int:
        return len(self._samples)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": self.kind,
            "samples": [[t, v] for t, v in self._samples],
        }

    def __repr__(self) -> str:
        return "<%s %s n=%d/%d>" % (
            type(self).__name__,
            self.name,
            len(self._samples),
            self.capacity,
        )


class WindowedCounter(WindowedGauge):
    """A monotonically increasing count sampled onto the ring.

    ``inc`` accumulates between ticks; ``sample(t)`` records the
    cumulative total at ``t``, so the series is the counter's growth
    curve and rates fall out of adjacent samples.
    """

    __slots__ = ("_total",)

    def __init__(self, name: str, capacity: int = 512, help: str = ""):
        super().__init__(name, capacity=capacity, help=help)
        self._total = 0.0

    @property
    def total(self) -> float:
        return self._total

    def inc(self, n: float = 1.0) -> None:
        self._total += n

    def sample(self, t: float, value: Optional[float] = None) -> None:
        if value is not None:
            self._total += value
        self._samples.append((t, self._total))


class Trigger:
    """``value > threshold`` held for ``hold_ms`` fires ``action`` once.

    ``series`` is matched as a prefix, so one rule can watch a family
    (``tardis_branch_count`` watches every site's branch count). The
    trigger re-arms when the value falls back to/below the threshold.
    """

    __slots__ = ("series", "threshold", "hold_ms", "action", "_over_since", "_fired")

    def __init__(
        self,
        series: str,
        threshold: float,
        hold_ms: float,
        action: Callable[["DivergenceMonitor", "Trigger", float, str, float], None],
    ):
        self.series = series
        self.threshold = threshold
        self.hold_ms = hold_ms
        self.action = action
        self._over_since: Dict[str, float] = {}
        self._fired: Dict[str, bool] = {}

    def observe(
        self, monitor: "DivergenceMonitor", name: str, now: float, value: float
    ) -> None:
        if value <= self.threshold:
            self._over_since.pop(name, None)
            self._fired.pop(name, None)
            return
        since = self._over_since.setdefault(name, now)
        if now - since >= self.hold_ms and not self._fired.get(name):
            self._fired[name] = True
            self.action(monitor, self, now, name, value)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "series": self.series,
            "threshold": self.threshold,
            "hold_ms": self.hold_ms,
        }


def dag_extent(dag) -> Tuple[int, int]:
    """``(width, depth)`` of a State DAG.

    Depth is the longest root→leaf path; width is the largest number of
    states sharing one depth level (how broad the branch frontier got).
    State ids are monotonic along every branch, so one pass in id order
    computes both without recursion.
    """
    depth_of: Dict[Any, int] = {}
    level_counts: Dict[int, int] = {}
    for state in sorted(dag.states(), key=lambda s: s.id):
        d = 1 + max((depth_of.get(p.id, 0) for p in state.parents), default=-1)
        depth_of[state.id] = d
        level_counts[d] = level_counts.get(d, 0) + 1
    if not level_counts:
        return 0, 0
    return max(level_counts.values()), max(level_counts)


class DivergenceMonitor:
    """Samples branch-divergence series from one or many TARDiS stores.

    Per site and tick: ``tardis_branch_count@<site>`` (current leaves),
    ``tardis_dag_width@<site>`` / ``tardis_dag_depth@<site>`` (see
    :func:`dag_extent`), ``tardis_merge_debt@<site>`` (branches beyond
    one that must eventually merge), and
    ``tardis_staleness_ms@<site>`` (simulated time since the site last
    had a single leaf — how long it has been continuously diverged).
    With several stores, every ordered pair also gets
    ``tardis_repl_lag@<src>-><dst>``: states committed (present) at
    ``src`` but not yet applied at ``dst``.

    ``sample()`` is driven from discrete-event-simulator ticks
    (:meth:`install`); the latest values are mirrored into the default
    metrics registry as gauges so ``tardis top`` and Prometheus dumps
    see them too.
    """

    def __init__(
        self,
        stores: Dict[str, Any],
        clock: Callable[[], float],
        network: Any = None,
        capacity: int = 512,
        measure_lag: Optional[bool] = None,
    ):
        self.stores = dict(stores)
        self.clock = clock
        self.network = network
        self.capacity = capacity
        #: measure per-peer replication lag (defaults on for >1 store;
        #: it is an O(states) set difference per ordered pair).
        self.measure_lag = (
            measure_lag if measure_lag is not None else len(self.stores) > 1
        )
        self.series: Dict[str, WindowedGauge] = {}
        self.triggers: List[Trigger] = []
        self.samples_taken = 0
        self._last_converged: Dict[str, float] = {}

    # -- series management ---------------------------------------------------

    def gauge(self, name: str) -> WindowedGauge:
        series = self.series.get(name)
        if series is None:
            series = self.series[name] = WindowedGauge(name, capacity=self.capacity)
        return series

    def add_trigger(
        self,
        series: str,
        threshold: float,
        hold_ms: float,
        action: Callable[["DivergenceMonitor", Trigger, float, str, float], None],
    ) -> Trigger:
        trigger = Trigger(series, threshold, hold_ms, action)
        self.triggers.append(trigger)
        return trigger

    # -- sampling ------------------------------------------------------------

    def _feed(self, name: str, now: float, value: float) -> None:
        self.gauge(name).sample(now, value)
        for trigger in self.triggers:
            if name.startswith(trigger.series):
                trigger.observe(self, name, now, value)

    def sample(self) -> None:
        now = self.clock()
        self.samples_taken += 1
        m = _met.DEFAULT
        for site, store in self.stores.items():
            dag = store.dag
            branch_count = len(dag.leaves())
            width, depth = dag_extent(dag)
            if branch_count <= 1:
                self._last_converged[site] = now
            staleness = now - self._last_converged.setdefault(site, now)
            merge_debt = max(0, branch_count - 1)
            self._feed("tardis_branch_count@%s" % site, now, branch_count)
            self._feed("tardis_dag_width@%s" % site, now, width)
            self._feed("tardis_dag_depth@%s" % site, now, depth)
            self._feed("tardis_merge_debt@%s" % site, now, merge_debt)
            self._feed("tardis_staleness_ms@%s" % site, now, staleness)
            if m.enabled:
                m.set_gauge("tardis_branch_count", branch_count)
                m.set_gauge("tardis_dag_width", width)
                m.set_gauge("tardis_dag_depth", depth)
        if self.measure_lag and len(self.stores) > 1:
            ids = {
                site: {s.id for s in store.dag.states()}
                for site, store in self.stores.items()
            }
            total_lag = 0
            for src, src_ids in ids.items():
                for dst, dst_ids in ids.items():
                    if src == dst:
                        continue
                    lag = len(src_ids - dst_ids)
                    total_lag += lag
                    self._feed("tardis_repl_lag@%s->%s" % (src, dst), now, lag)
            self._feed("tardis_repl_lag@total", now, total_lag)
            if m.enabled:
                m.set_gauge("tardis_repl_lag_total", total_lag)

    def install(self, sim, interval_ms: float) -> None:
        """Schedule a recurring sample every ``interval_ms`` on ``sim``."""

        def tick() -> None:
            self.sample()
            sim.schedule(interval_ms, tick)

        sim.schedule(interval_ms, tick)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """All series as ``{"name": {"type": "series", "samples": ...}}``."""
        return {name: s.to_dict() for name, s in sorted(self.series.items())}

    def tails(self, n: int = 32) -> Dict[str, List[List[float]]]:
        """The newest ``n`` samples of each series (flight-recorder dumps)."""
        return {
            name: [[t, v] for t, v in s.samples()[-n:]]
            for name, s in sorted(self.series.items())
        }

    def __repr__(self) -> str:
        return "<DivergenceMonitor sites=%d series=%d samples=%d>" % (
            len(self.stores),
            len(self.series),
            self.samples_taken,
        )
