"""Wall-clock observability sampling: the live ops plane's engine.

The windowed series (:mod:`repro.obs.series`) and the flight recorder
(:mod:`repro.obs.flight`) were built for discrete-event-simulator ticks;
this module drives the very same machinery from wall-clock time against
a *live* store — the network server's. An :class:`ObsSampler` owns

* a :class:`~repro.obs.series.DivergenceMonitor` over the one store it
  watches (branch count, DAG width/depth, merge debt, staleness), with
  its clock rebased to wall milliseconds since the sampler was built;
* extra server-plane series fed from caller-supplied callables —
  sessions, in-flight requests, connections, cumulative request/commit
  counts, per-shard access totals, and per-worker queue depth/liveness
  from the proc-shard plane (the ``tardis_net_*`` / ``tardis_shard_*``
  entries of ``SERIES_NAMES``);
* a :class:`~repro.obs.flight.FlightRecorder` whose triggers run *live*
  on every sample: a threshold trip appends a JSON-safe alert to a
  bounded ring (and keeps the full flight dump in memory, capped), so
  divergence excursions surface while the server is up instead of in a
  post-mortem file.

``sample()`` builds one JSON-safe *snapshot* document — the unit the
wire protocol ships for ``OBS_SNAPSHOT`` and ``OBS_SUBSCRIBE`` push
frames, and the thing ``tardis top`` renders. Schema (all values plain
JSON; docs/internals.md §14 is the reference):

.. code-block:: python

    {
        "obs_schema": 1,
        "seq": 7,                 # monotonically increasing sample number
        "t_ms": 1234.5,           # wall ms since the sampler started
        "site": "net",
        "gauges": {"branch_count", "dag_width", "dag_depth",
                   "merge_debt", "staleness_ms", "states",
                   "sessions", "inflight", "connections"},
        "counters": {...},        # cumulative server stats + store commits
        "latency_ms": {"COMMIT": {"count", "mean", "p50", "p90",
                                  "p99", "max"}, ...},
        "shards": None | {"n_shards", "accesses", "n_workers",
                          "workers": [{"worker", "shards", "alive",
                                       "queue_depth", "pid", "ping_ms"}],
                          "workers_alive", "workers_dead",
                          "leaked_workers"},
        "series": {"tardis_branch_count@net": [[t, v], ...], ...},
        "alerts": [{"t_ms", "series", "value", "threshold",
                    "hold_ms", "reason"}, ...],
        "flight_dumps": 1,        # in-memory dumps captured by trips
    }

Thread-safety: the sampler has no lock of its own. The server calls
``sample()`` on its store-executor thread (serialized with every other
store access) and hands the returned snapshot — a plain dict that is
never mutated afterwards — to the event loop for publishing, so readers
only ever see completed snapshots via :meth:`latest`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.flight import FlightRecorder
from repro.obs.series import DivergenceMonitor

__all__ = ["ObsSampler", "DEFAULT_TRIGGERS", "OBS_SCHEMA_VERSION"]

#: schema version of snapshot documents (bumped on incompatible change).
OBS_SCHEMA_VERSION = 1

#: default armed triggers: ``(series_prefix, threshold, hold_ms)``.
#: Branch count / merge debt above 8 held for 2 wall-seconds is the
#: paper's "divergence is running away" shape; staleness catches a
#: branch frontier nobody merges down.
DEFAULT_TRIGGERS: Tuple[Tuple[str, float, float], ...] = (
    ("tardis_branch_count", 8.0, 2000.0),
    ("tardis_merge_debt", 8.0, 2000.0),
    ("tardis_staleness_ms", 60000.0, 2000.0),
)


class ObsSampler:
    """Samples one live store (plus server-plane callables) on demand.

    ``counters_fn`` returns cumulative server counters (requests_total,
    commits, ...); ``gauges_fn`` returns instantaneous server gauges
    (sessions, inflight, connections); ``latency_fn`` returns per-op
    latency summaries. All three are optional so the sampler also works
    bare against a store (tests, embedding).
    """

    def __init__(
        self,
        store: Any,
        site: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
        capacity: int = 512,
        tail: int = 60,
        counters_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        gauges_fn: Optional[Callable[[], Dict[str, Any]]] = None,
        latency_fn: Optional[Callable[[], Dict[str, Dict[str, Any]]]] = None,
        triggers: Tuple[Tuple[str, float, float], ...] = DEFAULT_TRIGGERS,
        alert_capacity: int = 64,
        flight_dump_cap: int = 8,
    ) -> None:
        self.store = store
        self.site = site if site is not None else getattr(store, "site", "local")
        self.tail = tail
        self._clock = clock
        self._t0 = clock()
        #: wall ms since construction — the monitor's time axis.
        monitor_clock = lambda: (self._clock() - self._t0) * 1000.0  # noqa: E731
        self.monitor = DivergenceMonitor(
            {self.site: store},
            clock=monitor_clock,
            capacity=capacity,
            measure_lag=False,
        )
        self.flight = FlightRecorder({}, {self.site: store}, monitor=self.monitor)
        self.flight_dump_cap = flight_dump_cap
        self.counters_fn = counters_fn
        self.gauges_fn = gauges_fn
        self.latency_fn = latency_fn
        self.alerts: deque = deque(maxlen=alert_capacity)
        self.alerts_total = 0
        self.seq = 0
        #: the newest completed snapshot; never mutated once published.
        self.latest: Optional[Dict[str, Any]] = None
        for series, threshold, hold_ms in triggers:
            self.arm(series, threshold, hold_ms)

    # -- triggers ----------------------------------------------------------

    def arm(self, series: str, threshold: float, hold_ms: float) -> None:
        """Alert (and flight-dump, capped) when ``series`` > threshold
        holds for ``hold_ms`` wall milliseconds; re-arms per excursion."""

        def action(monitor, trigger, now, name, value):
            self.alerts_total += 1
            self.alerts.append(
                {
                    "t_ms": now,
                    "series": name,
                    "value": value,
                    "threshold": threshold,
                    "hold_ms": hold_ms,
                    "reason": "%s=%g > %g held %gms" % (name, value, threshold, hold_ms),
                }
            )
            if len(self.flight.dumps) < self.flight_dump_cap:
                self.flight.record(
                    reason="live trip: %s=%g > %g for %gms"
                    % (name, value, threshold, hold_ms),
                    tripped_at=now,
                    rule={**trigger.to_dict(), "series_tripped": name, "value": value},
                )

        self.monitor.add_trigger(series, threshold, hold_ms, action)

    # -- sampling ----------------------------------------------------------

    def sample(self) -> Dict[str, Any]:
        """Take one sample and return the snapshot document.

        Must run serialized with store mutations (the server calls it on
        the store executor); the returned dict is immutable by contract.
        """
        self.seq += 1
        # Feeds the divergence series and runs the triggers.
        self.monitor.sample()
        now = self.monitor.clock()
        store = self.store
        dag = store.dag
        gauges: Dict[str, Any] = {"states": len(dag)}
        for base in (
            "tardis_branch_count",
            "tardis_dag_width",
            "tardis_dag_depth",
            "tardis_merge_debt",
            "tardis_staleness_ms",
        ):
            last = self.monitor.gauge("%s@%s" % (base, self.site)).last()
            gauges[base[len("tardis_") :]] = last[1] if last else 0

        if self.gauges_fn is not None:
            g = self.gauges_fn()
            gauges["sessions"] = g.get("sessions", 0)
            gauges["inflight"] = g.get("inflight", 0)
            gauges["connections"] = g.get("connections", 0)
            self.monitor._feed("tardis_net_sessions@%s" % self.site, now, gauges["sessions"])
            self.monitor._feed("tardis_net_inflight@%s" % self.site, now, gauges["inflight"])
            self.monitor._feed(
                "tardis_net_connections@%s" % self.site, now, gauges["connections"]
            )

        counters: Dict[str, Any] = {}
        if self.counters_fn is not None:
            counters = dict(self.counters_fn())
            self.monitor._feed(
                "tardis_net_requests@%s" % self.site,
                now,
                counters.get("requests_total", 0),
            )
            self.monitor._feed(
                "tardis_net_commits@%s" % self.site, now, counters.get("commits", 0)
            )
        counters["store_commits"] = store.metrics.commits
        counters["store_merges"] = store.metrics.merges

        latency: Dict[str, Dict[str, Any]] = {}
        if self.latency_fn is not None:
            latency = self.latency_fn()

        shards = self._shard_section(now)

        snapshot: Dict[str, Any] = {
            "obs_schema": OBS_SCHEMA_VERSION,
            "seq": self.seq,
            "t_ms": now,
            "site": self.site,
            "gauges": gauges,
            "counters": counters,
            "latency_ms": latency,
            "shards": shards,
            "series": self.monitor.tails(self.tail),
            "alerts": list(self.alerts),
            "alerts_total": self.alerts_total,
            "flight_dumps": len(self.flight.dumps),
        }
        self.latest = snapshot
        return snapshot

    def _shard_section(self, now: float) -> Optional[Dict[str, Any]]:
        """Per-shard/per-worker health, or None for a flat store."""
        health_fn = getattr(self.store, "shard_health", None)
        health = health_fn() if health_fn is not None else None
        if health is None:
            return None
        for i, count in enumerate(health.get("accesses", [])):
            self.monitor._feed("tardis_shard_accesses@s%d" % i, now, count)
        for worker in health.get("workers", []):
            self.monitor._feed(
                "tardis_shard_queue_depth@w%d" % worker["worker"],
                now,
                worker["queue_depth"],
            )
        if "workers_alive" in health:
            self.monitor._feed(
                "tardis_shard_workers_alive@%s" % self.site,
                now,
                health["workers_alive"],
            )
        return health

    def latest_or_sample(self) -> Dict[str, Any]:
        """The newest snapshot, sampling fresh when none exists yet."""
        return self.latest if self.latest is not None else self.sample()

    # -- views -------------------------------------------------------------

    @staticmethod
    def trim(snapshot: Dict[str, Any], tail: Optional[int]) -> Dict[str, Any]:
        """A copy of ``snapshot`` with series tails cut to ``tail``.

        ``tail=None`` returns the snapshot as-is; ``tail=0`` drops the
        series section entirely (the light form STATS embeds).
        """
        if tail is None:
            return snapshot
        out = dict(snapshot)
        if tail <= 0:
            out.pop("series", None)
        else:
            out["series"] = {
                name: samples[-tail:]
                for name, samples in snapshot.get("series", {}).items()
            }
        return out

    def __repr__(self) -> str:
        return "<ObsSampler site=%s seq=%d alerts=%d>" % (
            self.site,
            self.seq,
            self.alerts_total,
        )
