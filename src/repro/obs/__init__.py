"""Observability: metrics registry, branch-aware tracing, exporters.

Zero-dependency, near-zero-overhead when disabled. See
docs/internals.md §8 for the metric name catalogue and usage patterns.

Quick start::

    from repro import obs

    obs.enable()                       # turn on the default registry+tracer
    store = TardisStore("siteA")
    ...                                # run transactions
    print(obs.to_prometheus(obs.metrics.DEFAULT))
    for event in obs.tracing.DEFAULT.events(kind="branch.fork"):
        print(event)
"""

from repro.obs import metrics, tracing
from repro.obs.export import (
    diff,
    histogram_from_snapshot,
    snapshot,
    to_json,
    to_prometheus,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.tracing import (
    Span,
    TraceEvent,
    Tracer,
    default_tracer,
    set_default_tracer,
    use_tracer,
)


def enable(on: bool = True) -> None:
    """Toggle both the default registry and the default tracer."""
    metrics.enable(on)
    tracing.enable(on)


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceEvent",
    "Tracer",
    "default_registry",
    "default_tracer",
    "diff",
    "enable",
    "histogram_from_snapshot",
    "metrics",
    "set_default_registry",
    "set_default_tracer",
    "snapshot",
    "to_json",
    "to_prometheus",
    "tracing",
    "use_registry",
    "use_tracer",
]
