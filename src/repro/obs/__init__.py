"""Observability: metrics registry, branch-aware tracing, exporters.

Zero-dependency, near-zero-overhead when disabled. See
docs/internals.md §8 for the metric name catalogue and usage patterns.

Quick start::

    from repro import obs

    obs.enable()                       # turn on the default registry+tracer
    store = TardisStore("siteA")
    ...                                # run transactions
    print(obs.to_prometheus(obs.metrics.DEFAULT))
    for event in obs.tracing.DEFAULT.events(kind="branch.fork"):
        print(event)
"""

from repro.obs import metrics, tracing
from repro.obs.context import (
    TraceContext,
    causal_timeline,
    format_timeline,
    merge_events,
    trace_id_of,
)
from repro.obs.export import (
    diff,
    histogram_from_snapshot,
    snapshot,
    to_json,
    to_prometheus,
)
from repro.obs.flight import FlightRecorder, dag_snapshot, format_flight
from repro.obs.sampler import ObsSampler
from repro.obs.series import (
    DivergenceMonitor,
    Trigger,
    WindowedCounter,
    WindowedGauge,
    dag_extent,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
    use_registry,
)
from repro.obs.tracing import (
    Span,
    TraceEvent,
    Tracer,
    default_tracer,
    set_default_tracer,
    use_tracer,
)


def enable(on: bool = True) -> None:
    """Toggle both the default registry and the default tracer."""
    metrics.enable(on)
    tracing.enable(on)


__all__ = [
    "Counter",
    "DivergenceMonitor",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsSampler",
    "Span",
    "TraceContext",
    "TraceEvent",
    "Tracer",
    "Trigger",
    "WindowedCounter",
    "WindowedGauge",
    "causal_timeline",
    "dag_extent",
    "dag_snapshot",
    "default_registry",
    "default_tracer",
    "diff",
    "enable",
    "format_flight",
    "format_timeline",
    "histogram_from_snapshot",
    "merge_events",
    "metrics",
    "set_default_registry",
    "set_default_tracer",
    "snapshot",
    "to_json",
    "to_prometheus",
    "trace_id_of",
    "tracing",
    "use_registry",
    "use_tracer",
]
