"""Synchronous TARDiS client: plain sockets, blocking calls.

The client mirrors the in-process API shape so application code ports
with a search-and-replace::

    from repro.client import TardisClient

    client = TardisClient(port=7145, session="alice")
    with client.begin() as t:
        t.put("greeting", "hello")

    merge = client.merge()
    for conflict in merge.conflicts:
        merge.put(conflict["key"], max(conflict["values"]))
    merge.commit()

Requests on one connection are answered strictly in order, so the
client is a simple send-one/read-one loop; one ``TardisClient`` must not
be shared across threads (open one per thread — sessions are cheap).

Error mapping: ``TXN_ABORTED`` re-raises
:class:`~repro.errors.TransactionAborted` and ``BEGIN_FAILED`` re-raises
:class:`~repro.errors.BeginError`, so retry loops written against the
in-process store work unchanged; every other wire error surfaces as
:class:`~repro.errors.ServerError` with the code attached.
"""

from __future__ import annotations

import socket
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.errors import (
    BeginError,
    KeyNotFound,
    NetworkError,
    ServerError,
    ShardUnavailableError,
    TransactionAborted,
    TransactionClosed,
)
from repro.server.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
)

__all__ = ["TardisClient", "ClientTransaction", "ClientMergeTransaction"]

_RAISE = object()


def raise_for_error(response: Dict[str, Any]) -> Dict[str, Any]:
    """Map an error response onto the library's exception hierarchy."""
    if response.get("ok", False):
        return response
    error = response.get("error") or {}
    code = error.get("code", "INTERNAL")
    message = error.get("message", "")
    if code == "TXN_ABORTED":
        raise TransactionAborted(message)
    if code == "TXN_CLOSED":
        raise TransactionClosed(message)
    if code == "BEGIN_FAILED":
        raise BeginError(message)
    if code == "SHARD_UNAVAILABLE":
        raise ShardUnavailableError(None, message)
    raise ServerError(code, message)


class _BaseClientTransaction:
    """Shared bookkeeping for the sync transaction handles."""

    def __init__(self, client: "TardisClient", txn_id: int) -> None:
        self._client = client
        self._txn_id = txn_id
        self.status = "active"
        #: state id repr of the commit state, once committed.
        self.commit_state: Optional[str] = None

    def get(self, key: Any, default: Any = _RAISE) -> Any:
        response = self._client._request("READ", txn=self._txn_id, key=key)
        if not response["found"]:
            if default is _RAISE:
                raise KeyNotFound(key)
            return default
        return response["value"]

    def get_many(self, keys: List[Any], default: Any = _RAISE) -> List[Any]:
        """Batch read: one READ_MANY round trip for the whole key list.

        Against a shard-partitioned server the batch fans out across the
        shard workers in parallel, so this is the wire API that actually
        exercises the scatter/gather read path.
        """
        response = self._client._request(
            "READ_MANY", txn=self._txn_id, keys=list(keys)
        )
        values = []
        for key, found, value in zip(keys, response["found"], response["values"]):
            if not found:
                if default is _RAISE:
                    raise KeyNotFound(key)
                value = default
            values.append(value)
        return values

    def put(self, key: Any, value: Any) -> None:
        self._client._request("WRITE", txn=self._txn_id, key=key, value=value)

    def delete(self, key: Any) -> None:
        self._client._request("WRITE", txn=self._txn_id, key=key, delete=True)

    def commit(self, constraint: Optional[str] = None) -> str:
        fields: Dict[str, Any] = {"txn": self._txn_id}
        if constraint is not None:
            fields["constraint"] = constraint
        try:
            response = self._client._request("COMMIT", **fields)
        except (TransactionAborted, TransactionClosed):
            self.status = "aborted"
            raise
        self.status = "committed"
        self.commit_state = response["commit_state"]
        return self.commit_state

    def abort(self) -> None:
        self._client._request("ABORT", txn=self._txn_id)
        self.status = "aborted"

    def __enter__(self) -> "_BaseClientTransaction":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self.status == "active":
            if exc_type is None:
                self.commit()
            else:
                self.abort()


class ClientTransaction(_BaseClientTransaction):
    """A single-mode transaction over the wire."""

    def __init__(self, client: "TardisClient", txn_id: int, read_state: str) -> None:
        super().__init__(client, txn_id)
        #: state id repr of the snapshot this transaction reads.
        self.read_state = read_state

    def __repr__(self) -> str:
        return "<ClientTransaction txn=%d read_state=%s status=%s>" % (
            self._txn_id,
            self.read_state,
            self.status,
        )


class ClientMergeTransaction(_BaseClientTransaction):
    """A merge transaction over the wire.

    The server computes the reconciliation context at MERGE time:
    ``parents`` (the branch heads being merged), ``fork_points``, and
    ``conflicts`` — a list of ``{"key", "base", "values"}`` dicts, one
    per key written concurrently on several branches (``base`` is the
    fork-point value for three-way merges). ``put`` the resolved values,
    then ``commit``.
    """

    def __init__(
        self,
        client: "TardisClient",
        txn_id: int,
        parents: List[str],
        fork_points: List[str],
        conflicts: List[Dict[str, Any]],
    ) -> None:
        super().__init__(client, txn_id)
        self.parents = parents
        self.fork_points = fork_points
        self.conflicts = conflicts

    def __repr__(self) -> str:
        return "<ClientMergeTransaction txn=%d parents=%d conflicts=%d status=%s>" % (
            self._txn_id,
            len(self.parents),
            len(self.conflicts),
            self.status,
        )


class TardisClient:
    """A blocking-socket client for one TARDiS server connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7145,
        session: Optional[str] = None,
        timeout: float = 10.0,
        max_frame: int = MAX_FRAME,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder(max_frame)
        self._next_id = 1
        self._closed = False
        self.max_frame = max_frame
        self.timeout = timeout
        #: server-push frames (OBS_SUBSCRIBE streams) diverted out of the
        #: request/response path, oldest first; drained by next_obs_frame.
        self._pushes: Deque[Dict[str, Any]] = deque()
        hello = self._request("HELLO", session=session, protocol=PROTOCOL_VERSION)
        #: the session name the server bound this connection to.
        self.session = hello["session"]
        #: the server's site name.
        self.site = hello["site"]

    # -- plumbing ---------------------------------------------------------

    def _request(self, op: str, **fields: Any) -> Dict[str, Any]:
        if self._closed:
            raise NetworkError("client is closed")
        request: Dict[str, Any] = {"id": self._next_id, "op": op}
        self._next_id += 1
        request.update(fields)
        self._sock.sendall(encode_frame(request, self.max_frame))
        response = self._read_frame()
        if response.get("id") != request["id"]:
            raise NetworkError(
                "response id %r does not match request id %r (protocol is ordered)"
                % (response.get("id"), request["id"])
            )
        return raise_for_error(response)

    def _read_frame(self) -> Dict[str, Any]:
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                if "push" in frame:
                    # Server-initiated frame (an obs stream) interleaved
                    # with a response: park it so request/response pairing
                    # stays strict while subscribed.
                    self._pushes.append(frame)
                    continue
                return frame
            data = self._sock.recv(65536)
            if not data:
                self._closed = True
                raise NetworkError("server closed the connection")
            self._decoder.feed(data)

    # -- transactions -----------------------------------------------------

    def begin(
        self, read_only: bool = False, constraint: Optional[str] = None
    ) -> ClientTransaction:
        """Start a transaction; constraint is a begin-constraint name
        (``ancestor``, ``any``, ``parent``; server default: ancestor)."""
        fields: Dict[str, Any] = {"read_only": read_only}
        if constraint is not None:
            fields["constraint"] = constraint
        response = self._request("BEGIN", **fields)
        return ClientTransaction(self, response["txn"], response["read_state"])

    def merge(self) -> ClientMergeTransaction:
        """Start a merge transaction over the current branch heads."""
        response = self._request("MERGE")
        return ClientMergeTransaction(
            self,
            response["txn"],
            response["parents"],
            response["fork_points"],
            response["conflicts"],
        )

    # -- autocommit convenience -------------------------------------------

    def put(self, key: Any, value: Any) -> str:
        """Single-write autocommit transaction; returns the commit state."""
        txn = self.begin()
        txn.put(key, value)
        return txn.commit()

    def get(self, key: Any, default: Any = None) -> Any:
        """Single-read autocommit transaction."""
        txn = self.begin(read_only=True)
        try:
            value = txn.get(key, default=default)
        finally:
            if txn.status == "active":
                txn.commit()
        return value

    def get_many(self, keys: List[Any], default: Any = None) -> List[Any]:
        """Batch-read autocommit transaction (one READ_MANY frame)."""
        txn = self.begin(read_only=True)
        try:
            values = txn.get_many(keys, default=default)
        finally:
            if txn.status == "active":
                txn.commit()
        return values

    def stats(self) -> Dict[str, Any]:
        """Server + store counters (see docs/internals.md §12)."""
        return self._request("STATS")["stats"]

    # -- live observability (docs/internals.md §14) -----------------------

    def obs_snapshot(self, tail: Optional[int] = None) -> Dict[str, Any]:
        """One observability snapshot (series tails cut to ``tail``)."""
        fields: Dict[str, Any] = {}
        if tail is not None:
            fields["tail"] = tail
        return self._request("OBS_SNAPSHOT", **fields)["snapshot"]

    def subscribe_obs(self) -> Dict[str, Any]:
        """Start the push stream; returns ``{interval_s, tail, resumed}``.

        Raises :class:`~repro.errors.ServerError` with code
        ``OBS_UNAVAILABLE`` when the server runs no live sampler. After
        subscribing, drain frames with :meth:`next_obs_frame` — ordinary
        requests keep working, pushes are diverted internally.
        """
        return self._request("OBS_SUBSCRIBE")

    def unsubscribe_obs(self) -> Dict[str, Any]:
        """Stop the stream; returns ``{subscribed, frames, dropped}``."""
        return self._request("OBS_UNSUBSCRIBE")

    def next_obs_frame(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """The next push frame, or None when ``timeout`` elapses first.

        Returns the whole wire frame: ``{"push": "obs", "seq", "dropped",
        "snapshot"}``. Frames already diverted by an interleaved request
        are served before the socket is read again.
        """
        if self._pushes:
            return self._pushes.popleft()
        if self._closed:
            raise NetworkError("client is closed")
        previous = self._sock.gettimeout()
        self._sock.settimeout(timeout if timeout is not None else previous)
        try:
            while True:
                frame = self._decoder.next_frame()
                if frame is not None:
                    if "push" in frame:
                        return frame
                    # A response with no request in flight is a protocol
                    # violation; surface it rather than swallowing.
                    raise NetworkError("unexpected response frame %r" % (frame.get("id"),))
                try:
                    data = self._sock.recv(65536)
                except socket.timeout:
                    return None
                if not data:
                    self._closed = True
                    raise NetworkError("server closed the connection")
                self._decoder.feed(data)
        finally:
            try:
                self._sock.settimeout(previous)
            except OSError:
                pass

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Polite close: BYE (best effort), then drop the socket."""
        if self._closed:
            return
        try:
            self._request("BYE")
        except (NetworkError, ServerError, OSError):
            pass
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "TardisClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return "<TardisClient session=%s site=%s%s>" % (
            self.session,
            self.site,
            " closed" if self._closed else "",
        )
