"""Asynchronous TARDiS client: asyncio streams, ``await``-shaped API.

The async twin of :class:`repro.client.client.TardisClient`, sharing its
error mapping and the wire codec. One ``AsyncTardisClient`` is one
connection/session; like the sync client it is a strict
send-one/read-one loop, so do not interleave requests from concurrent
tasks on a single client — open one client per task::

    client = await AsyncTardisClient.connect(port=7145, session="alice")
    txn = await client.begin()
    await txn.put("greeting", "hello")
    await txn.commit()
    await client.close()
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.client.client import _RAISE, raise_for_error
from repro.errors import KeyNotFound, NetworkError, ServerError
from repro.server.protocol import (
    MAX_FRAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
)

__all__ = ["AsyncTardisClient", "AsyncClientTransaction", "AsyncClientMergeTransaction"]


class AsyncClientTransaction:
    """A single-mode transaction over the wire (async)."""

    def __init__(
        self, client: "AsyncTardisClient", txn_id: int, read_state: str
    ) -> None:
        self._client = client
        self._txn_id = txn_id
        self.read_state = read_state
        self.status = "active"
        self.commit_state: Optional[str] = None

    async def get(self, key: Any, default: Any = _RAISE) -> Any:
        response = await self._client._request("READ", txn=self._txn_id, key=key)
        if not response["found"]:
            if default is _RAISE:
                raise KeyNotFound(key)
            return default
        return response["value"]

    async def get_many(self, keys: List[Any], default: Any = _RAISE) -> List[Any]:
        """Batch read: one READ_MANY round trip (see the sync twin)."""
        response = await self._client._request(
            "READ_MANY", txn=self._txn_id, keys=list(keys)
        )
        values = []
        for key, found, value in zip(keys, response["found"], response["values"]):
            if not found:
                if default is _RAISE:
                    raise KeyNotFound(key)
                value = default
            values.append(value)
        return values

    async def put(self, key: Any, value: Any) -> None:
        await self._client._request("WRITE", txn=self._txn_id, key=key, value=value)

    async def delete(self, key: Any) -> None:
        await self._client._request("WRITE", txn=self._txn_id, key=key, delete=True)

    async def commit(self, constraint: Optional[str] = None) -> str:
        fields: Dict[str, Any] = {"txn": self._txn_id}
        if constraint is not None:
            fields["constraint"] = constraint
        try:
            response = await self._client._request("COMMIT", **fields)
        except Exception:
            self.status = "aborted"
            raise
        self.status = "committed"
        self.commit_state = response["commit_state"]
        return self.commit_state

    async def abort(self) -> None:
        await self._client._request("ABORT", txn=self._txn_id)
        self.status = "aborted"

    async def __aenter__(self) -> "AsyncClientTransaction":
        return self

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self.status == "active":
            if exc_type is None:
                await self.commit()
            else:
                await self.abort()


class AsyncClientMergeTransaction(AsyncClientTransaction):
    """A merge transaction over the wire (async); see the sync twin."""

    def __init__(
        self,
        client: "AsyncTardisClient",
        txn_id: int,
        parents: List[str],
        fork_points: List[str],
        conflicts: List[Dict[str, Any]],
    ) -> None:
        super().__init__(client, txn_id, read_state="")
        self.parents = parents
        self.fork_points = fork_points
        self.conflicts = conflicts


class AsyncTardisClient:
    """An asyncio-streams client for one TARDiS server connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_frame: int = MAX_FRAME,
    ) -> None:
        # Use :meth:`connect` — the constructor wires pre-opened streams.
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder(max_frame)
        self._next_id = 1
        self._closed = False
        self.max_frame = max_frame
        self.session: Optional[str] = None
        self.site: Optional[str] = None
        #: push frames diverted out of the request/response path.
        self._pushes: Deque[Dict[str, Any]] = deque()

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 7145,
        session: Optional[str] = None,
        max_frame: int = MAX_FRAME,
    ) -> "AsyncTardisClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_frame=max_frame)
        hello = await client._request(
            "HELLO", session=session, protocol=PROTOCOL_VERSION
        )
        client.session = hello["session"]
        client.site = hello["site"]
        return client

    async def _request(self, op: str, **fields: Any) -> Dict[str, Any]:
        if self._closed:
            raise NetworkError("client is closed")
        request: Dict[str, Any] = {"id": self._next_id, "op": op}
        self._next_id += 1
        request.update(fields)
        self._writer.write(encode_frame(request, self.max_frame))
        await self._writer.drain()
        response = await self._read_frame()
        if response.get("id") != request["id"]:
            raise NetworkError(
                "response id %r does not match request id %r"
                % (response.get("id"), request["id"])
            )
        return raise_for_error(response)

    async def _read_frame(self) -> Dict[str, Any]:
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                if "push" in frame:
                    # Diverted like the sync client: pushes never break
                    # request/response pairing (drain via next_obs_frame).
                    self._pushes.append(frame)
                    continue
                return frame
            data = await self._reader.read(65536)
            if not data:
                self._closed = True
                raise NetworkError("server closed the connection")
            self._decoder.feed(data)

    async def begin(
        self, read_only: bool = False, constraint: Optional[str] = None
    ) -> AsyncClientTransaction:
        fields: Dict[str, Any] = {"read_only": read_only}
        if constraint is not None:
            fields["constraint"] = constraint
        response = await self._request("BEGIN", **fields)
        return AsyncClientTransaction(self, response["txn"], response["read_state"])

    async def merge(self) -> AsyncClientMergeTransaction:
        response = await self._request("MERGE")
        return AsyncClientMergeTransaction(
            self,
            response["txn"],
            response["parents"],
            response["fork_points"],
            response["conflicts"],
        )

    async def put(self, key: Any, value: Any) -> str:
        txn = await self.begin()
        await txn.put(key, value)
        return await txn.commit()

    async def get(self, key: Any, default: Any = None) -> Any:
        txn = await self.begin(read_only=True)
        try:
            value = await txn.get(key, default=default)
        finally:
            if txn.status == "active":
                await txn.commit()
        return value

    async def get_many(self, keys: List[Any], default: Any = None) -> List[Any]:
        """Batch-read autocommit transaction (one READ_MANY frame)."""
        txn = await self.begin(read_only=True)
        try:
            values = await txn.get_many(keys, default=default)
        finally:
            if txn.status == "active":
                await txn.commit()
        return values

    async def stats(self) -> Dict[str, Any]:
        return (await self._request("STATS"))["stats"]

    # -- live observability (docs/internals.md §14) -----------------------

    async def obs_snapshot(self, tail: Optional[int] = None) -> Dict[str, Any]:
        """One observability snapshot (series tails cut to ``tail``)."""
        fields: Dict[str, Any] = {}
        if tail is not None:
            fields["tail"] = tail
        return (await self._request("OBS_SNAPSHOT", **fields))["snapshot"]

    async def subscribe_obs(self) -> Dict[str, Any]:
        """Start the push stream; see the sync twin for semantics."""
        return await self._request("OBS_SUBSCRIBE")

    async def unsubscribe_obs(self) -> Dict[str, Any]:
        """Stop the stream; returns ``{subscribed, frames, dropped}``."""
        return await self._request("OBS_UNSUBSCRIBE")

    async def next_obs_frame(
        self, timeout: Optional[float] = None
    ) -> Optional[Dict[str, Any]]:
        """The next push frame, or None when ``timeout`` elapses first."""
        if self._pushes:
            return self._pushes.popleft()
        if self._closed:
            raise NetworkError("client is closed")
        while True:
            frame = self._decoder.next_frame()
            if frame is not None:
                if "push" in frame:
                    return frame
                raise NetworkError(
                    "unexpected response frame %r" % (frame.get("id"),)
                )
            try:
                data = await asyncio.wait_for(self._reader.read(65536), timeout)
            except asyncio.TimeoutError:
                return None
            if not data:
                self._closed = True
                raise NetworkError("server closed the connection")
            self._decoder.feed(data)

    async def close(self) -> None:
        if self._closed:
            return
        try:
            await self._request("BYE")
        except (NetworkError, ServerError, OSError):
            pass
        self._closed = True
        self._writer.close()

    async def __aenter__(self) -> "AsyncTardisClient":
        return self

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        await self.close()
