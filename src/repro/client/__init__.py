"""Client libraries for the TARDiS network server.

* :class:`TardisClient` — blocking sockets, mirrors the in-process API.
* :class:`AsyncTardisClient` — asyncio streams, ``await``-shaped twin.

Both speak the length-prefixed JSON protocol of
:mod:`repro.server.protocol` (docs/internals.md §12).
"""

from repro.client.aio import (
    AsyncClientMergeTransaction,
    AsyncClientTransaction,
    AsyncTardisClient,
)
from repro.client.client import (
    ClientMergeTransaction,
    ClientTransaction,
    TardisClient,
)

__all__ = [
    "AsyncClientMergeTransaction",
    "AsyncClientTransaction",
    "AsyncTardisClient",
    "ClientMergeTransaction",
    "ClientTransaction",
    "TardisClient",
]
