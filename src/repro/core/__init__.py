"""TARDiS core: the paper's primary contribution.

The branch-on-conflict transactional key-value store — State DAG, fork
paths, begin/end constraints, single-mode and merge-mode transactions,
garbage collection, and recovery.
"""

from repro.core.ids import StateId, ROOT_ID, IdAllocator
from repro.core.ancestry import AncestryIndex
from repro.core.fork_path import ForkPoint, ForkPath
from repro.core.state_dag import State, StateDAG
from repro.core.commit import CommitPipeline, install_writes
from repro.core.constraints import (
    AnyConstraint,
    SerializabilityConstraint,
    SnapshotIsolationConstraint,
    ReadCommittedConstraint,
    NoBranchingConstraint,
    KBranchingConstraint,
    ParentConstraint,
    AncestorConstraint,
    StateIdConstraint,
    And,
    Or,
)
from repro.core.store import TardisStore, ClientSession
from repro.core.transaction import Transaction, TOMBSTONE
from repro.core.merge import MergeTransaction
from repro.core.gc import GarbageCollector
from repro.core.recovery import recover_store, checkpoint_store

__all__ = [
    "StateId",
    "ROOT_ID",
    "IdAllocator",
    "AncestryIndex",
    "ForkPoint",
    "ForkPath",
    "State",
    "StateDAG",
    "CommitPipeline",
    "install_writes",
    "AnyConstraint",
    "SerializabilityConstraint",
    "SnapshotIsolationConstraint",
    "ReadCommittedConstraint",
    "NoBranchingConstraint",
    "KBranchingConstraint",
    "ParentConstraint",
    "AncestorConstraint",
    "StateIdConstraint",
    "And",
    "Or",
    "TardisStore",
    "ClientSession",
    "Transaction",
    "MergeTransaction",
    "TOMBSTONE",
    "GarbageCollector",
    "recover_store",
    "checkpoint_store",
]
