"""Garbage collection: ceilings, DAG compression, record promotion (§6.3).

TARDiS stores, by default, *all* stale and parallel versions and states.
To keep space overhead comparable to history-free stores it runs an
aggressive three-pronged collection (Figure 8):

1. **Ceiling marking** (bottom-up): clients place ceilings — promises to
   never again use a state preceding the ceiling as a read state. States
   that every ceiling-placing client has moved past are *marked* and can
   no longer be selected as read states.
2. **Safe-to-gc** (top-down): a marked state is safe when it is not
   pinned as a read state by an executing transaction and all its
   ancestors are safe — guaranteeing committing transactions never
   ripple down into deleted states and that deletion proceeds
   oldest-first.
3. **Collection**: safe states that are not fork points (and not
   leaves) are *promoted* — their single distinct child takes over their
   identity via the promotion table — and spliced out of the DAG.

Record promotion then rewrites record versions of deleted states to
their promoted identity and discards all but the newest of versions that
collapsed onto the same state, so that only current and fork-point
versions remain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Set

from repro.core.ids import StateId
from repro.errors import GarbageCollectedError
from repro.obs import metrics as _met
from repro.obs import tracing as _trc

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.state_dag import State, StateDAG
    from repro.core.store import TardisStore


@dataclass
class GCStats:
    """Result of one collection cycle."""

    marked: int = 0
    safe: int = 0
    states_removed: int = 0
    records_promoted: int = 0
    records_dropped: int = 0
    promotions_flushed: int = 0
    fork_entries_scrubbed: int = 0
    #: live counts after the cycle
    live_states: int = 0
    live_records: int = 0


class GarbageCollector:
    """The garbage collector unit of one TARDiS site (Figure 2)."""

    def __init__(self, store: "TardisStore") -> None:
        self._store = store
        self._ceilings: Dict[str, StateId] = {}
        self.cycles = 0
        #: hook used by replicated pessimistic GC: called with the set of
        #: candidate state ids; must return the subset we may collect.
        self.consent_filter: Optional[Callable[[Set[StateId]], Set[StateId]]] = None

    @property
    def ceilings(self) -> Dict[str, StateId]:
        return dict(self._ceilings)

    def place_ceiling(self, client: str, state_id: StateId) -> None:
        """Record ``client``'s promise never to read above ``state_id``."""
        self._ceilings[client] = state_id

    def clear_ceiling(self, client: str) -> None:
        self._ceilings.pop(client, None)

    def collect(self, flush_promotions: bool = False) -> GCStats:
        """Run one full cycle: mark, safe-to-gc, splice, promote records.

        ``flush_promotions`` additionally drops promotion-table entries
        once the record-promotion pass has rewritten every reference —
        after which looking up a collected state fails outright, the
        situation optimistic replicated GC resolves by refetching from a
        peer (§6.4).
        """
        stats = GCStats()
        store = self._store
        dag = store.dag
        with store._lock:
            self.cycles += 1
            marked = self._mark_pass(stats)
            if marked:
                # Marking changes which states find_read_state may
                # return without touching the DAG's shape, so the
                # read-path caches must see a generation move (splice
                # and retirement below bump it again, destructively).
                dag.bump_generation()
                self._safe_pass(stats)
                self._collect_pass(stats)
            promoted, dropped = store.versions.promote_and_prune(dag)
            stats.records_promoted = promoted
            stats.records_dropped = dropped
            if flush_promotions:
                flushed = dag.promotion_table_size
                dag.forget_promotions(list(self._all_promotion_ids()))
                stats.promotions_flushed = flushed - dag.promotion_table_size
            stats.live_states = len(dag)
            stats.live_records = store.versions.num_records()
        m = _met.DEFAULT
        if m.enabled:
            m.inc("tardis_gc_cycle_total")
            m.inc("tardis_gc_states_removed_total", stats.states_removed)
            m.inc("tardis_gc_records_promoted_total", stats.records_promoted)
            m.inc("tardis_gc_records_dropped_total", stats.records_dropped)
            m.set_gauge("tardis_gc_live_states", stats.live_states)
            m.set_gauge("tardis_gc_live_records", stats.live_records)
            m.set_gauge("tardis_gc_promotion_table", dag.promotion_table_size)
        t = _trc.DEFAULT
        if t.enabled:
            t.event(
                "gc.cycle",
                site=store.site,
                marked=stats.marked,
                removed=stats.states_removed,
                promoted=stats.records_promoted,
                dropped=stats.records_dropped,
                live_states=stats.live_states,
            )
        return stats

    # -- pass 1: ceiling marking (bottom-up) --------------------------------

    def _mark_pass(self, stats: GCStats) -> bool:
        """Mark states above *every* client's ceiling.

        A state is only unreadable once every ceiling-placing client has
        promised to stay below it, so the marked set is the intersection
        of the strict-ancestor sets of all ceilings.
        """
        dag = self._store.dag
        if not self._ceilings:
            return False
        common: Optional[Set[StateId]] = None
        for state_id in self._ceilings.values():
            try:
                ceiling = dag.resolve(state_id)
            except GarbageCollectedError:
                continue  # ceiling itself was absorbed by a newer one
            ancestors = self._strict_ancestors(ceiling)
            common = ancestors if common is None else (common & ancestors)
            if not common:
                return False
        if not common:
            return False
        for sid in common:
            state = dag.get(sid)
            if state is not None and not state.marked:
                state.marked = True
        stats.marked = sum(1 for s in dag.states() if s.marked)
        return True

    def _strict_ancestors(self, state: "State") -> Set[StateId]:
        seen: Set[StateId] = set()
        stack = list(state.parents)
        while stack:
            current = stack.pop()
            if current.id in seen:
                continue
            seen.add(current.id)
            stack.extend(current.parents)
        return seen

    # -- pass 2: safe-to-gc (top-down) ----------------------------------------

    def _safe_pass(self, stats: GCStats) -> None:
        dag = self._store.dag
        for state in sorted(dag.states(), key=lambda s: s.id):
            state.safe_to_gc = (
                state.marked
                and state.pins == 0
                and all(p.safe_to_gc for p in state.parents)
            )
        stats.safe = sum(1 for s in dag.states() if s.safe_to_gc)

    # -- pass 3: collection ------------------------------------------------------

    def _collect_pass(self, stats: GCStats) -> None:
        # Iterate to a fixpoint: a fork point whose branches fully
        # collapse into their merge during this cycle becomes a
        # single-child state and is collectable in the next sweep.
        dag = self._store.dag
        dead_forks: Set[StateId] = set()
        while True:
            candidates = [
                s
                for s in sorted(dag.states(), key=lambda s: s.id)
                if s.safe_to_gc and s.children and not s.is_fork_point
            ]
            if self.consent_filter is not None:
                allowed = self.consent_filter({s.id for s in candidates})
                candidates = [s for s in candidates if s.id in allowed]
            removed = 0
            for state in candidates:
                if dag.get(state.id) is not state:
                    continue  # already spliced this sweep
                if state.is_fork_point or not state.children:
                    continue
                if state.next_branch >= 2:
                    # A former fork point whose branches fully collapsed:
                    # once it is gone, every live state carries either
                    # all of its fork-path entries (merge descendants) or
                    # none (its ancestors), so the entries are scrubbable.
                    dead_forks.add(state.id)
                dag.splice_out(state)
                removed += 1
            stats.states_removed += removed
            if not removed:
                break
        if dead_forks:
            # Dead-fork rewriting now happens through the ancestry index:
            # the dead forks' bits are cleared from every live state's
            # mask and their positions retired for reuse (§6.1.3, §6.3).
            stats.fork_entries_scrubbed = dag.retire_forks(dead_forks)

    def _all_promotion_ids(self) -> Iterator[StateId]:
        dag = self._store.dag
        # Promotion entries still referenced by a record version must
        # survive the flush; everything else can go.
        referenced: Set[StateId] = set()
        for key in list(self._store.versions.keys()):
            referenced.update(self._store.versions.versions_of(key))
        for sid in list(_promotion_keys(dag)):
            if sid not in referenced:
                yield sid


def _promotion_keys(dag: "StateDAG") -> List[StateId]:
    return list(dag._promotions.keys())
