"""Fork points and fork paths (§6.1.3, Figures 5 and 7).

TARDiS abandons per-operation dependency tracking and summarizes a branch
by its *fork points*. A fork point is a pair ``(i, b)`` meaning "this
state is a descendant of the b-th child of state i". The set of fork
points accumulated along a branch is its *fork path*, and the ancestry
test of Figure 7 reduces to a subset check:

    state ``y`` can see records written at state ``x`` iff
    ``x.id == y.id``, or ``x.id < y.id`` and ``x.path ⊆ y.path``.

Fork paths stay small because conflicts are a small fraction of all
operations, which is what makes TARDiS reads cheap compared to causal
dependency checking (§6.1.3).

Merge states take the *union* of their parents' fork paths: carrying both
``(i, b1)`` and ``(i, b2)`` is precisely what makes the records of both
merged branches visible downstream of the merge.

Representation note: the visibility hot path no longer operates on this
class. Each :class:`~repro.core.state_dag.StateDAG` owns an
:class:`~repro.core.ancestry.AncestryIndex` that interns every fork
point to a bit position; a state's fork path is stored as an int bitmask
and the Figure 7 subset test is ``x_mask & y_mask == x_mask``.
:class:`ForkPath` survives as the thin decoded *view* — used for repr,
serialization, the replication wire format, and tests — produced on
demand by ``State.fork_path`` / ``AncestryIndex.path_of``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, NamedTuple, Tuple

from repro.core.ids import StateId


class ForkPoint(NamedTuple):
    """One branching decision: descendant of child ``branch`` of ``state_id``."""

    state_id: StateId
    branch: int

    def __repr__(self) -> str:
        return "(%r,%d)" % (self.state_id, self.branch)


class ForkPath:
    """An immutable set of fork points with subset/union operations."""

    __slots__ = ("_points",)

    EMPTY: "ForkPath"

    def __init__(self, points: Iterable[ForkPoint] = ()) -> None:
        self._points: FrozenSet[ForkPoint] = frozenset(points)

    @property
    def points(self) -> FrozenSet[ForkPoint]:
        return self._points

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[ForkPoint]:
        return iter(self._points)

    def __contains__(self, point: ForkPoint) -> bool:
        return point in self._points

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ForkPath) and self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        inner = "".join(repr(p) for p in sorted(self._points))
        return "{%s}" % inner

    def issubset(self, other: "ForkPath") -> bool:
        return self._points <= other._points

    def add(self, point: ForkPoint) -> "ForkPath":
        """A new path with ``point`` added."""
        if point in self._points:
            return self
        return ForkPath(self._points | {point})

    def union(self, *others: "ForkPath") -> "ForkPath":
        points = self._points
        for other in others:
            points = points | other._points
        return ForkPath(points)

    def branch_choices(self) -> Tuple[Tuple[StateId, int], ...]:
        """Fork points sorted by fork-state id (oldest first)."""
        return tuple(sorted(self._points))


ForkPath.EMPTY = ForkPath()
