"""The ancestry index: interned, integer-encoded fork paths (§6.1.3).

The Figure 7 visibility test reduces branch ancestry to a subset check
over fork points. The paper argues this check is cheap enough to run on
*every* read; a per-probe ``frozenset`` comparison squanders that
cheapness on hashing and allocation. This module makes the test a single
machine-word-ish operation: every :class:`~repro.core.fork_path.ForkPoint`
ever observed by a DAG is *interned* to a small bit position, a state's
fork path becomes an immutable int bitmask, and

    ``x ⊆ y``  becomes  ``x_mask & y_mask == x_mask``.

Fork paths stay small because conflicts are a small fraction of all
operations (§6.1.3), so the masks stay within one or two machine words
in steady state — especially since garbage collection *retires* the bits
of fully collapsed forks (see :meth:`AncestryIndex.release_forks`),
keeping the bit universe proportional to live conflicts rather than to
history length.

The index is owned by one :class:`~repro.core.state_dag.StateDAG`; bit
positions are site-local and never cross the replication wire (remote
states are re-encoded as they are grafted into the local DAG, so each
site's interning stays self-consistent).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.fork_path import ForkPath, ForkPoint
from repro.core.ids import StateId


def popcount(mask: int) -> int:
    """Number of set bits (fork-path length of an encoded path)."""
    return bin(mask).count("1")


class AncestryIndex:
    """Interns fork points to bit positions; fork paths become bitmasks.

    The three operations on the hot path are O(1) on word-sized masks:

    * :meth:`intern` — fork point -> single-bit mask (assigns a fresh bit
      on first sight, reusing retired positions);
    * subset test — plain ``x & y == x`` on the caller's side;
    * :meth:`release_forks` — retire every bit belonging to collapsed
      fork states so positions can be reused (GC's dead-fork rewriting).

    Decoding (:meth:`path_of`, :meth:`points_of`) is only needed for
    repr, serialization, and the branch-structure queries of the
    merge-mode API — never on the read path.
    """

    __slots__ = ("_bit_of", "_point_at", "_fork_bits", "_free")

    def __init__(self) -> None:
        #: fork point -> bit position
        self._bit_of: Dict[ForkPoint, int] = {}
        #: bit position -> fork point (None for retired positions)
        self._point_at: List[Optional[ForkPoint]] = []
        #: fork state id -> mask of every position interned for it
        self._fork_bits: Dict[StateId, int] = {}
        #: retired positions available for reuse
        self._free: List[int] = []

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        """Number of live (interned, not retired) fork points."""
        return len(self._bit_of)

    @property
    def capacity(self) -> int:
        """Highest bit position ever assigned (mask width in bits)."""
        return len(self._point_at)

    def bit_position(self, point: ForkPoint) -> Optional[int]:
        return self._bit_of.get(point)

    # -- encoding ----------------------------------------------------------

    def intern(self, point: ForkPoint) -> int:
        """Return the single-bit mask of ``point``, interning it if new."""
        pos = self._bit_of.get(point)
        if pos is None:
            if self._free:
                pos = self._free.pop()
                self._point_at[pos] = point
            else:
                pos = len(self._point_at)
                self._point_at.append(point)
            self._bit_of[point] = pos
            self._fork_bits[point.state_id] = self._fork_bits.get(
                point.state_id, 0
            ) | (1 << pos)
        return 1 << pos

    def mask_of(self, points: Iterable[ForkPoint]) -> int:
        """Encode an iterable of fork points as one bitmask."""
        mask = 0
        for point in points:
            mask |= self.intern(point)
        return mask

    # -- decoding ----------------------------------------------------------

    def points_of(self, mask: int) -> Iterator[ForkPoint]:
        """The fork points encoded by ``mask`` (ascending bit position)."""
        point_at = self._point_at
        while mask:
            low = mask & -mask
            point = point_at[low.bit_length() - 1]
            if point is not None:
                yield point
            mask ^= low

    def path_of(self, mask: int) -> ForkPath:
        """Decode a mask into a :class:`ForkPath` view (repr/wire format)."""
        if not mask:
            return ForkPath.EMPTY
        return ForkPath(self.points_of(mask))

    def choices_by_fork(self, mask: int) -> Dict[StateId, Set[int]]:
        """Branch choices encoded in ``mask``, grouped by fork state."""
        choices: Dict[StateId, Set[int]] = {}
        for point in self.points_of(mask):
            choices.setdefault(point.state_id, set()).add(point.branch)
        return choices

    # -- retirement (GC's dead-fork rewriting, §6.3) -----------------------

    def mask_of_forks(self, fork_ids: Iterable[StateId]) -> int:
        """Combined mask of every bit interned for the given fork states."""
        mask = 0
        for fork_id in fork_ids:
            mask |= self._fork_bits.get(fork_id, 0)
        return mask

    def release_forks(self, fork_ids: Iterable[StateId]) -> int:
        """Retire every bit of the given (collapsed) fork states.

        The caller must already have cleared those bits from every live
        state's mask — afterwards the positions are recycled for future
        fork points, which is what keeps the bit universe proportional to
        *live* conflicts. Returns the number of positions retired.
        """
        retired = 0
        for fork_id in fork_ids:
            bits = self._fork_bits.pop(fork_id, 0)
            while bits:
                low = bits & -bits
                pos = low.bit_length() - 1
                point = self._point_at[pos]
                if point is not None:
                    del self._bit_of[point]
                    self._point_at[pos] = None
                    self._free.append(pos)
                    retired += 1
                bits ^= low
        return retired

    def check_invariants(self) -> None:
        """Raise AssertionError when the interning tables disagree."""
        for point, pos in self._bit_of.items():
            assert self._point_at[pos] == point, (point, pos)
            assert self._fork_bits.get(point.state_id, 0) & (1 << pos), point
        live_positions = set(self._bit_of.values())
        for pos, point in enumerate(self._point_at):
            assert (point is not None) == (pos in live_positions), pos
        for pos in self._free:
            assert self._point_at[pos] is None, pos

    def __repr__(self) -> str:
        return "<AncestryIndex live=%d capacity=%d free=%d>" % (
            len(self._bit_of),
            len(self._point_at),
            len(self._free),
        )
