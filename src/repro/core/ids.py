"""State identifiers.

The paper requires state identifiers to be (i) monotonically increasing
along every branch, so that the key-version mapping stays topologically
sorted (§6.1.4), and (ii) stable across replication, so that a state keeps
its identity at every site (StateID replication, §6.4/§7.2.1).

Both properties hold for Lamport pairs ``(counter, site)`` ordered
lexicographically: a child's counter is one greater than the maximum of
its parents' counters, so ancestors always order before descendants; the
site component makes ids issued by different sites globally unique.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple


class StateId(NamedTuple):
    """Globally unique, branch-monotonic state identifier."""

    counter: int
    site: str

    def __repr__(self) -> str:
        if self.counter == 0 and not self.site:
            return "s0"
        return "s%d@%s" % (self.counter, self.site or "?")


#: The identifier of the initial (empty) state at every site.
ROOT_ID = StateId(0, "")


class IdAllocator:
    """Issues fresh state ids for one site, Lamport-style.

    ``next_id(parent_ids)`` returns an id strictly greater than every
    parent id, which preserves monotonicity along branches even when the
    parents were created at other sites. Observing remote ids (via
    ``observe``) keeps the local counter ahead of everything the site has
    seen, exactly like a Lamport clock.
    """

    def __init__(self, site: str) -> None:
        if not site:
            raise ValueError("site name must be non-empty")
        self._site = site
        self._counter = 0

    @property
    def site(self) -> str:
        return self._site

    def observe(self, state_id: StateId) -> None:
        """Advance the clock past an id seen from elsewhere."""
        if state_id.counter > self._counter:
            self._counter = state_id.counter

    def next_id(self, parent_ids: Iterable[StateId] = ()) -> StateId:
        top = max((pid.counter for pid in parent_ids), default=0)
        self._counter = max(self._counter, top) + 1
        return StateId(self._counter, self._site)
