"""The State DAG (§4, §6.1, Figure 5).

Each vertex is a logical state of the datastore; every committed update
transaction appends one state to its chosen branch. The DAG supplies the
four operations the rest of the system is built from:

* ``create_state`` — append a state (branch-on-conflict happens here: a
  second child of the same parent creates a fork point);
* ``descendant_check`` — the Figure 7 visibility test via fork paths;
* ``find_read_state`` — breadth-first search from the leaves up for the
  most recent state satisfying a begin constraint (§6.1.1);
* ``fork_points_of`` / ``states_between`` — the branch-structure queries
  behind the merge-mode API (§6.2).

Fork-path bookkeeping: the first child of a state carries no fork point
for it (there is no fork yet). When a second child appears, the parent
*becomes* a fork point: the new child takes entry ``(p, 1)`` and the
entry ``(p, 0)`` is pushed retroactively into the first child's subtree.
Forks arise between near-concurrent commits, so that subtree is almost
always tiny — this is the price of keeping ``descendant_check`` a pure
subset test. Branch numbers come from a per-state counter so they remain
stable when garbage collection splices intermediate states out.

Fork-path *representation* (§6.1.3): each DAG owns an
:class:`~repro.core.ancestry.AncestryIndex` that interns every fork
point to a small bit position, and a state stores its fork path as an
immutable int bitmask (``State.path_mask``). The Figure 7 subset test is
then a single integer operation — ``x_mask & y_mask == x_mask`` — with
no hashing or allocation per probe. ``State.fork_path`` remains as a
decoded :class:`ForkPath` view for repr, serialization, and the
branch-structure queries; garbage collection retires the bits of fully
collapsed forks through the index (:meth:`StateDAG.retire_forks`) so the
bit universe tracks *live* conflicts, not history length.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.ancestry import AncestryIndex, popcount
from repro.core.fork_path import ForkPath, ForkPoint
from repro.core.ids import ROOT_ID, IdAllocator, StateId
from repro.errors import GarbageCollectedError
from repro.obs import metrics as _met
from repro.obs import tracing as _trc


class State:
    """One vertex of the State DAG."""

    __slots__ = (
        "id",
        "parents",
        "children",
        "path_mask",
        "ancestry",
        "read_keys",
        "write_keys",
        "next_branch",
        "pins",
        "marked",
        "safe_to_gc",
    )

    def __init__(
        self,
        state_id: StateId,
        parents: Tuple["State", ...],
        path_mask: int,
        ancestry: AncestryIndex,
        read_keys: FrozenSet = frozenset(),
        write_keys: FrozenSet = frozenset(),
    ) -> None:
        self.id = state_id
        self.parents = parents
        self.children: List[State] = []
        #: fork path as an int bitmask over ``ancestry``'s interned
        #: fork points; the Figure 7 subset test operates on this.
        self.path_mask = path_mask
        #: the owning DAG's ancestry index (for decoding the mask).
        self.ancestry = ancestry
        #: read set of the transaction that created this state
        #: (needed by the Serializability end constraint, §6.1.1).
        self.read_keys = read_keys
        #: write set of the creating transaction; garbage collection merges
        #: promoted states' write keys in, so conflict detection survives
        #: DAG compression.
        self.write_keys = write_keys
        #: branch number the next child of this state will take.
        self.next_branch = 0
        #: number of executing transactions using this state as read state.
        self.pins = 0
        #: set by ceiling marking (§6.3): may no longer be a read state.
        self.marked = False
        #: set by the safe-to-gc pass (§6.3).
        self.safe_to_gc = False

    @property
    def fork_path(self) -> ForkPath:
        """Decoded :class:`ForkPath` view of :attr:`path_mask`.

        Read-only and rebuilt on access — use it for repr, serialization
        and branch-structure queries, never on the visibility hot path.
        """
        return self.ancestry.path_of(self.path_mask)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_fork_point(self) -> bool:
        """More than one *distinct* child.

        ``next_branch`` (the number of children ever attached) drives
        branch numbering and never decreases; the fork-point test instead
        uses distinct current children, so that a fork whose branches
        were merged and then fully compressed away (leaving the merge
        state as both children) becomes collectable again.
        """
        return len({id(c) for c in self.children}) > 1

    @property
    def is_merge(self) -> bool:
        return len(self.parents) >= 2

    def __repr__(self) -> str:
        return "<State %r children=%d path=%r>" % (
            self.id,
            len(self.children),
            self.fork_path,
        )


class StateDAG:
    """The per-site directed acyclic graph of datastore states."""

    def __init__(self, site: str) -> None:
        self.site = site
        self._allocator = IdAllocator(site)
        #: interns fork points to bit positions; owns mask encoding.
        self.ancestry = AncestryIndex()
        self.root = State(ROOT_ID, (), 0, self.ancestry)
        self._states: Dict[StateId, State] = {ROOT_ID: self.root}
        # Leaves in insertion order; iterated newest-first for BFS.
        self._leaves: Dict[StateId, State] = {ROOT_ID: self.root}
        #: promotion table: id of a garbage-collected state -> id of the
        #: child that took over its identity (§6.3).
        self._promotions: Dict[StateId, StateId] = {}
        #: count of retroactive fork-path pushes (exposed for benchmarks).
        self.retro_updates = 0
        #: monotone counter bumped on every event that can change what a
        #: read observes: state creation (commits, remote grafts), GC
        #: ceiling marking, splice-out, fork retirement, and record
        #: promotion. Read-path caches validate against it (§6.1.3-6.1.4
        #: reproduction note: see docs/internals.md §10).
        self.generation = 0
        #: value of :attr:`generation` at the last *destructive* event —
        #: one that rewrites existing bookkeeping (splice-out merges
        #: write keys into the child, fork retirement rewrites masks,
        #: record promotion rewrites version lists) rather than only
        #: appending. Caches keyed on masks or state contents must drop
        #: everything older than this watermark; append-only events
        #: (plain commits) leave it alone.
        self.destructive_gen = 0
        #: cached splice counter — splice_out runs once per collected
        #: state (roughly once per commit at steady state), so the
        #: per-call registry name lookup is measurable.
        self._hot_registry = None
        self._hot_splice = None

    # -- basic queries ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._states)

    def __contains__(self, state_id: StateId) -> bool:
        return state_id in self._states or state_id in self._promotions

    def get(self, state_id: StateId) -> Optional[State]:
        return self._states.get(state_id)

    def states(self) -> Iterator[State]:
        return iter(self._states.values())

    def leaves(self) -> List[State]:
        """Current leaves, most recent first."""
        return sorted(self._leaves.values(), key=lambda s: s.id, reverse=True)

    def num_forks(self) -> int:
        return sum(1 for s in self._states.values() if s.is_fork_point)

    def bump_generation(self) -> int:
        """Advance the cache generation (appending events; cheap)."""
        self.generation += 1
        return self.generation

    def mark_destructive(self) -> int:
        """Advance the generation and move the destructive watermark."""
        self.generation += 1
        self.destructive_gen = self.generation
        return self.generation

    def resolve(self, state_id: StateId) -> State:
        """Map an id to its live state, following promotions (§6.3).

        Raises :class:`GarbageCollectedError` when the id is unknown,
        which with optimistic replicated GC means the state must be
        re-fetched from a peer (§6.4).
        """
        seen = []
        current = state_id
        while current not in self._states:
            seen.append(current)
            if current not in self._promotions:
                raise GarbageCollectedError(state_id)
            current = self._promotions[current]
        # Path-compress the promotion chains we just walked. Redirecting
        # an alias to the same live state is invisible to readers, so no
        # generation bump is required.
        for sid in seen:
            self._promotions[sid] = current
        return self._states[current]  # tardis: ignore[generation-contract]

    # -- construction -----------------------------------------------------

    def create_state(
        self,
        parents: Iterable[State],
        read_keys: FrozenSet = frozenset(),
        write_keys: FrozenSet = frozenset(),
        state_id: Optional[StateId] = None,
    ) -> State:
        """Append a new state as a child of ``parents``.

        ``state_id`` is provided when applying a replicated transaction
        (the state keeps the id it was given at its origin site, §6.4);
        otherwise a fresh local id is allocated.
        """
        parents = tuple(parents)
        if not parents:
            raise ValueError("a state needs at least one parent")
        if state_id is None:
            state_id = self._allocator.next_id(p.id for p in parents)
        else:
            if state_id in self._states:
                raise ValueError("state id %r already present" % (state_id,))
            self._allocator.observe(state_id)

        # Retro updates must run before the union below: a parent's own
        # path may gain an entry when another parent (its ancestor) forks.
        branches = []
        for parent in parents:
            branch = parent.next_branch
            branches.append(branch)
            if branch == 1:
                # The parent just became a fork point: its first child's
                # subtree retroactively learns the branch it is on.
                first = parent.children[0]
                self._retro_add(first, ForkPoint(parent.id, 0))
        mask = 0
        for parent in parents:
            mask |= parent.path_mask
        for parent, branch in zip(parents, branches):
            if branch >= 1:
                mask |= self.ancestry.intern(ForkPoint(parent.id, branch))

        state = State(state_id, parents, mask, self.ancestry, read_keys, write_keys)
        for parent in parents:
            parent.children.append(state)
            parent.next_branch += 1
            self._leaves.pop(parent.id, None)
        self._states[state_id] = state
        self._leaves[state_id] = state
        self.generation += 1
        return state

    def _retro_add(self, subtree_root: State, point: ForkPoint) -> None:
        bit = self.ancestry.intern(point)
        stack = [subtree_root]
        visited: Set[StateId] = set()
        while stack:
            state = stack.pop()
            if state.id in visited:
                continue
            visited.add(state.id)
            state.path_mask |= bit
            stack.extend(state.children)
            self.retro_updates += 1
        m = _met.DEFAULT
        if m.enabled:
            # Only create_state calls this, and it bumps the generation
            # after the retro pass; bumping here too would double-count.
            m.inc("tardis_dag_retro_updates_total", len(visited))  # tardis: ignore[generation-contract]

    # -- visibility (Figure 7) ---------------------------------------------

    def descendant_check(self, x: State, y: State) -> bool:
        """True when state ``y`` can see records written at state ``x``.

        The fork-path subset test of Figure 7, evaluated over interned
        bitmasks: ``x ⊆ y`` is ``x_mask & y_mask == x_mask``.
        """
        if x.id == y.id:
            return True
        if x.id > y.id:
            return False
        x_mask = x.path_mask
        return x_mask & y.path_mask == x_mask

    def descendant_check_ids(self, x_id: StateId, y_id: StateId) -> bool:
        return self.descendant_check(self.resolve(x_id), self.resolve(y_id))

    def ancestor_walk_check(self, x: State, y: State) -> bool:
        """Reference ancestry test by graph walk (no fork paths).

        Exponentially more expensive on deep DAGs; kept as the ground
        truth for property tests and for the fork-path ablation benchmark.
        """
        if x.id > y.id:
            return False
        stack = [y]
        seen: Set[StateId] = set()
        while stack:
            state = stack.pop()
            if state.id == x.id:
                return True
            if state.id in seen or state.id < x.id:
                continue
            seen.add(state.id)
            stack.extend(state.parents)
        return False

    # -- read-state search (§6.1.1) ----------------------------------------

    def find_read_state(
        self,
        predicate: Callable[[State], bool],
        count_visits: Optional[List[int]] = None,
    ) -> Optional[State]:
        """BFS from the leaves up for the most recent acceptable state.

        ``predicate`` is the begin constraint (already bound to the
        client session). Ceiling-marked states are never returned (§6.3).
        ``count_visits``, when given, is a one-element list incremented
        per visited state — the simulation cost model charges begin cost
        proportionally.
        """
        queue = self.leaves()
        seen: Set[StateId] = {s.id for s in queue}
        index = 0
        while index < len(queue):
            state = queue[index]
            index += 1
            if count_visits is not None:
                count_visits[0] += 1
            if not state.marked and predicate(state):
                return state
            for parent in state.parents:
                if parent.id not in seen:
                    seen.add(parent.id)
                    queue.append(parent)
        return None

    def revalidate_read_state(
        self, state: State, predicate: Callable[[State], bool]
    ) -> bool:
        """Cheaply confirm that ``state`` is still what
        :meth:`find_read_state` would return for ``predicate``.

        The BFS visits all leaves newest-first before any interior
        state, so a cached result remains correct exactly when it is
        still a live, unmarked leaf that satisfies the predicate and no
        *newer* leaf is acceptable. That check is O(leaves) — typically
        one predicate evaluation — versus the BFS's queue/seen-set
        machinery, and it is what the begin-state cache runs on a hit
        candidate (docs/internals.md §10).
        """
        if self._leaves.get(state.id) is not state:
            return False
        for leaf in self.leaves():
            if leaf.id == state.id:
                return not leaf.marked and predicate(leaf)
            if not leaf.marked and predicate(leaf):
                return False  # a newer leaf wins the BFS
        return False

    # -- branch structure queries (§6.2) -------------------------------------

    def fork_points_of(self, states: Iterable[State]) -> List[State]:
        """Fork states at which the given states' branches diverged.

        A fork state ``f`` is a divergence point of a pair ``(x, y)``
        when each of the two carries a branch choice at ``f`` that the
        other lacks (two states where one's choices at ``f`` subsume the
        other's — e.g. downstream of a merge — did not diverge at ``f``).
        Returned nearest-first (descending id).
        """
        states = list(states)
        diverging: Set[StateId] = set()
        for i, x in enumerate(states):
            x_choices = self.ancestry.choices_by_fork(x.path_mask)
            for y in states[i + 1 :]:
                y_choices = self.ancestry.choices_by_fork(y.path_mask)
                for fork_id in set(x_choices) & set(y_choices):
                    xb, yb = x_choices[fork_id], y_choices[fork_id]
                    if xb - yb and yb - xb:
                        diverging.add(fork_id)
        resolved = [self.resolve(fid) for fid in diverging]
        return sorted(resolved, key=lambda s: s.id, reverse=True)

    def states_between(self, descendant: State, ancestor: State) -> List[State]:
        """States ``s`` with ``ancestor < s <= descendant`` on the branch.

        Walks parent edges up from ``descendant``, pruning anything that
        is not itself a descendant of ``ancestor``. Used to gather the
        write sets that define conflicting keys (§6.2).
        """
        if not self.descendant_check(ancestor, descendant):
            return []
        result: List[State] = []
        stack = [descendant]
        seen: Set[StateId] = set()
        while stack:
            state = stack.pop()
            if state.id in seen or state.id == ancestor.id:
                continue
            seen.add(state.id)
            if not self.descendant_check(ancestor, state):
                continue
            result.append(state)
            stack.extend(state.parents)
        return result

    # -- garbage-collection plumbing (§6.3) ----------------------------------

    def splice_out(self, state: State) -> State:
        """Remove a single-child, non-root state, promoting its identity.

        The state's only child takes over its position under every parent
        (branch numbers are per-state counters, so fork-path entries stay
        valid), inherits its write keys for conflict detection, and the
        promotion table redirects the dead id to the child.
        """
        if state.is_fork_point or not state.children:
            raise ValueError("only states with one distinct child can be spliced out")
        child = state.children[0]
        for parent in set(state.parents):
            parent.children = [child if c is state else c for c in parent.children]
        new_parents = list(child.parents)
        pos = new_parents.index(state)
        replacement = [p for p in state.parents if p not in new_parents and p is not child]
        new_parents[pos : pos + 1] = replacement
        child.parents = tuple(new_parents)
        child.write_keys = child.write_keys | state.write_keys
        if state is self.root:
            self.root = child
        del self._states[state.id]
        self._promotions[state.id] = child.id
        # Splicing merges write keys into the child and rewrites the
        # promotion table: destructive for every read-path cache.
        self.mark_destructive()
        m = _met.DEFAULT
        if m.enabled:
            if self._hot_registry is not m:
                self._hot_registry = m
                self._hot_splice = m.counter("tardis_dag_splice_total")
            self._hot_splice.inc()
        t = _trc.DEFAULT
        if t.enabled:
            t.event(
                "gc.promotion",
                state=repr(state.id),
                promoted_to=repr(child.id),
                site=self.site,
            )
        return child

    def retire_forks(self, dead_fork_ids: Set[StateId]) -> int:
        """Scrub fork-path entries of fully collapsed forks (§6.3).

        Clears the dead forks' bits from every live state's mask, then
        retires the bit positions through the ancestry index so they can
        be reused. Keeps fork paths proportional to *live* conflicts,
        which is what makes the Figure 7 subset check cheap over long
        executions (§6.1.3). Returns the number of entries scrubbed
        across all live states.
        """
        dead_mask = self.ancestry.mask_of_forks(dead_fork_ids)
        if not dead_mask:
            return 0
        keep = ~dead_mask
        scrubbed = 0
        for state in self._states.values():
            overlap = state.path_mask & dead_mask
            if overlap:
                scrubbed += popcount(overlap)
                state.path_mask &= keep
        self.ancestry.release_forks(dead_fork_ids)
        # Masks changed in place and bit positions will be reused: any
        # cache keyed on a path mask is now meaningless.
        self.mark_destructive()
        return scrubbed

    def promotion_of(self, state_id: StateId) -> Optional[StateId]:
        return self._promotions.get(state_id)

    @property
    def promotion_table_size(self) -> int:
        return len(self._promotions)

    def forget_promotions(self, ids: Iterable[StateId]) -> None:
        """Drop promotion entries once no record references them (§6.3).

        Dropping an entry is destructive: a cached ``resolve`` that
        relied on it would now raise, so cached reads keyed on the old
        ``destructive_gen`` must be invalidated.
        """
        dropped = 0
        for sid in ids:
            if self._promotions.pop(sid, None) is not None:
                dropped += 1
        if dropped:
            self.mark_destructive()

    # -- invariants (used by property tests) ----------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError when a structural invariant is violated.

        Checks: parent/child symmetry, id monotonicity along edges,
        leaf-set accuracy, fork-path consistency (every state's path is a
        superset of each parent's, with the correct fork entries), and
        agreement between the fork-path visibility test and the reference
        graph walk on sampled pairs.
        """
        self.ancestry.check_invariants()
        states = list(self._states.values())
        leaf_ids = {s.id for s in self._leaves.values()}
        for state in states:
            assert (state.id in leaf_ids) == state.is_leaf, state
            assert state.ancestry is self.ancestry, state
            for parent in state.parents:
                assert parent.id < state.id, "child id not greater than parent"
                assert state in parent.children, "parent/child asymmetry"
                assert parent.path_mask & state.path_mask == parent.path_mask, (
                    "child path misses parent entries: %r -> %r"
                    % (parent, state)
                )
            for child in state.children:
                assert state in child.parents, "child/parent asymmetry"
            assert state.pins >= 0
        # Visibility equivalence on a bounded sample.
        sample = states[:20]
        for x in sample:
            for y in sample:
                assert self.descendant_check(x, y) == self.ancestor_walk_check(
                    x, y
                ), (x.id, y.id)
