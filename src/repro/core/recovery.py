"""Fault tolerance and recovery (§6.5).

TARDiS logs, at commit time, the commit state id, its parent ids, and
the transaction's write-set keys (this implementation can also log the
values, which stands in for the record store's own persistence).
Recovery iterates the log chronologically, (i) inserting each state into
the DAG under its recorded parents, and (ii) re-adding the key-version
entries — id monotonicity guarantees no child is recovered before its
parents, and skip-list insertion order preserves the version ordering.

With asynchronous flush, a crash may leave a transaction only partially
persistent. The log is flushed sequentially, so the damage is confined
to a suffix: recovery verifies that every write of each entry is
persistent and discards the first incomplete transaction *and all
subsequent states* (orphaned records are harmless — the DAG and
key-version mapping decide what is readable — and are eventually pruned).

Checkpoints (``checkpoint_store``) snapshot the full DAG and record
store and compact the log.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.ids import StateId
from repro.core.store import TardisStore
from repro.storage.wal import CHECKPOINT, COMMIT, WriteAheadLog

_MISSING = object()


def checkpoint_store(store: TardisStore, snapshot_path: str) -> int:
    """Take a non-blocking checkpoint: snapshot + log compaction.

    Serializes every DAG state and record version to ``snapshot_path``
    and rewrites the log to a single checkpoint marker. Returns the
    number of states checkpointed.
    """
    with store._lock:
        states = [
            {
                "id": s.id,
                "parents": tuple(p.id for p in s.parents),
                "read_keys": tuple(s.read_keys),
                "write_keys": tuple(s.write_keys),
            }
            for s in sorted(store.dag.states(), key=lambda s: s.id)
        ]
        records = [
            (key, sid, store.versions.records.get((key, sid)))
            for key in store.versions.keys()
            for sid in store.versions.versions_of(key)
        ]
        promotions = dict(store.dag._promotions)
        top = max((s.id for s in store.dag.states()), default=store.dag.root.id)
        payload = {
            "site": store.site,
            "states": states,
            "records": records,
            "promotions": promotions,
            "top_id": top,
        }
        with open(snapshot_path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        if store.wal is not None:
            store.wal.compact_inplace(keep_from_state=top)
            store.wal.append_checkpoint(top)
    return len(states)


def recover_store(
    site: str,
    wal_path: str,
    snapshot_path: Optional[str] = None,
    record_source: Optional[Callable[[Any, StateId], Any]] = None,
    store_factory: Optional[Callable[..., Any]] = None,
    **store_kwargs: Any,
) -> Tuple[Any, Dict[str, int]]:
    """Rebuild a store from its checkpoint and commit log.

    ``record_source(key, state_id)`` supplies record values for log
    entries that did not log values (the paper persists records through
    the storage backend); it must return ``recovery.MISSING`` — exposed
    as the module-level ``_MISSING`` via :func:`missing` — when the
    record never reached stable storage, which triggers the
    discard-suffix rule. Returns ``(store, report)`` where ``report``
    counts replayed/discarded transactions.
    """
    factory = store_factory or TardisStore
    store = factory(site, **store_kwargs)
    report = {"checkpoint_states": 0, "replayed": 0, "discarded": 0}

    if snapshot_path is not None:
        report["checkpoint_states"] = _load_snapshot(store, snapshot_path)

    cut = False
    for record in WriteAheadLog.read(wal_path):
        if record.kind == CHECKPOINT:
            continue
        if record.kind != COMMIT:  # pragma: no cover - future kinds
            continue
        if cut:
            report["discarded"] += 1
            continue
        payload = record.payload
        state_id = payload["state_id"]
        if state_id in store.dag:
            continue  # already in the checkpoint
        values = payload.get("values")
        writes: Dict[Any, Any] = {}
        complete = True
        for key in payload["write_keys"]:
            if values is not None and key in values:
                writes[key] = values[key]
                continue
            if record_source is None:
                complete = False
                break
            value = record_source(key, state_id)
            if value is _MISSING:
                complete = False
                break
            writes[key] = value
        parents_present = all(pid in store.dag for pid in payload["parent_ids"])
        if not complete or not parents_present:
            # Atomicity: this transaction's effects are not fully
            # persistent; discard it and every subsequent state (§6.5).
            cut = True
            report["discarded"] += 1
            continue
        store.apply_remote(
            state_id,
            payload["parent_ids"],
            writes,
            write_keys=payload["write_keys"],
        )
        report["replayed"] += 1
    # apply_remote counts these as remote; recovery replays are local.
    store.metrics.remote_applied -= report["replayed"]
    return store, report


def missing() -> Any:
    """Sentinel a ``record_source`` returns for never-persisted records."""
    return _MISSING


def _load_snapshot(store: TardisStore, snapshot_path: str) -> int:
    with open(snapshot_path, "rb") as handle:
        payload = pickle.load(handle)
    dag = store.dag
    for entry in payload["states"]:
        if entry["id"] == dag.root.id:
            continue
        # A snapshot taken after garbage collection may start from a state
        # whose original ancestors (including the root) were compressed
        # away; anchor it at the fresh store's root.
        parents = [dag.resolve(pid) for pid in entry["parents"]] or [dag.root]
        dag.create_state(
            parents,
            read_keys=frozenset(entry["read_keys"]),
            write_keys=frozenset(entry["write_keys"]),
            state_id=entry["id"],
        )
    for key, sid, value in payload["records"]:
        store.versions.write(key, sid, value)
    dag._promotions.update(payload["promotions"])
    return len(payload["states"])
