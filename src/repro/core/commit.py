"""The unified commit pipeline (§6.1.2, §6.4, §6.5).

Before this module, every commit-shaped operation — a single-mode
commit, a merge commit, and the replicator's ``apply_remote`` — wired
the same sequence by hand: install the new state into the DAG, insert
the written record versions, append to the write-ahead log, bump the
observability counters. :class:`CommitPipeline` owns that sequence as
one code path, parameterized only by the commit's *origin*:

* ``LOCAL`` — an ordinary single-mode commit;
* ``MERGE`` — a merge-mode commit over several parents (§6.2);
* ``REMOTE`` — a replicated transaction grafted at its designated
  state id (§6.4).

Constraint evaluation (ripple-down, end checks) stays in the store —
those decide *whether and where* to commit; the pipeline performs the
commit once that decision is made. Being the single choke point also
makes it the natural place for group-commit batching of asynchronous
log appends and, later, fault injection.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.core.ids import StateId
from repro.core.state_dag import State, StateDAG
from repro.core.transaction import OpTrace
from repro.core.versions import VersionedRecordStore
from repro.errors import CrossShardAbort, ShardError
from repro.obs import metrics as _met
from repro.obs.context import TraceContext
from repro.storage.wal import WriteAheadLog

#: commit origins
LOCAL = "local"
MERGE = "merge"
REMOTE = "remote"


def install_writes(engine: Any, writes: Dict[Any, Any]) -> int:
    """Apply a committed write set to a flat record engine.

    The non-versioned half of the story: the lock-based and OCC
    baselines keep a single current value per key, so their commit step
    is a plain engine insert per write. Shared here so every store's
    write-apply loop is the same code. Returns the number of writes
    applied.
    """
    insert = engine.insert
    for key, value in writes.items():
        insert(key, value)
    return len(writes)


class CommitPipeline:
    """One code path for DAG installation, version insertion, WAL, metrics.

    ``group_commit`` enables group-commit batching for an *asynchronous*
    WAL (``sync=False``): buffered log records are force-flushed to disk
    every ``group_commit`` appends, bounding the window of commits a
    crash can lose while amortizing the fsync. It is ignored for a
    synchronous WAL (every append already reaches the OS) and when 0
    (flush only on explicit ``flush()``/``close()``, the paper's pure
    asynchronous mode).
    """

    __slots__ = (
        "dag",
        "versions",
        "wal",
        "log_values",
        "group_commit",
        "_unflushed",
        "write_index",
        "tracer",
        "last_ctx",
        "_hot_registry",
        "_hot_commit",
        "_hot_write_keys",
        "_hot_remote_apply",
    )

    def __init__(
        self,
        dag: StateDAG,
        versions: VersionedRecordStore,
        wal: Optional[WriteAheadLog] = None,
        log_values: bool = True,
        group_commit: int = 0,
        write_index: Any = None,
    ) -> None:
        self.dag = dag
        self.versions = versions
        self.wal = wal
        self.log_values = log_values
        self.group_commit = int(group_commit)
        self._unflushed = 0
        #: merge write-set index topped up at commit time (None when the
        #: store runs with read-path caches disabled).
        self.write_index = write_index
        #: per-store tracer (set via TardisStore.set_tracer); None means
        #: trace contexts are not generated and last_ctx stays None.
        self.tracer: Optional[Any] = None
        #: TraceContext of the most recent commit, for the store to stamp
        #: onto its trace events and hand to commit listeners. Read under
        #: the store lock, immediately after commit() returns.
        self.last_ctx: Optional[TraceContext] = None
        #: per-commit metric handles, re-resolved when the default
        #: registry changes identity (benchmark harnesses swap it per
        #: run) — the name lookup is measurable at commit rates.
        self._hot_registry = None
        self._hot_commit = None
        self._hot_write_keys = None
        self._hot_remote_apply = None

    def commit(
        self,
        parents: Sequence[State],
        writes: Dict[Any, Any],
        read_keys: FrozenSet = frozenset(),
        write_keys: Optional[Iterable[Any]] = None,
        state_id: Optional[StateId] = None,
        origin: str = LOCAL,
        trace: Optional[OpTrace] = None,
        ctx: Optional[TraceContext] = None,
    ) -> State:
        """Install one committed transaction and return its new state.

        ``state_id`` is given only for ``REMOTE`` commits (the state
        keeps its origin-site id, §6.4), and ``ctx`` is the trace
        context that arrived with a remote transaction. The caller holds
        the store lock and has already settled all constraint questions.

        Against a sharded storage layer the pipeline runs the shard
        commit protocol: the write set is *prepared* (planned into
        per-shard batches, target workers validated and — for
        multi-shard commits — staged, in ascending shard order) before
        the DAG state exists, so a dead worker aborts the transaction
        with a typed :class:`~repro.errors.CrossShardAbort` instead of
        leaving a committed-looking state whose writes were lost.
        """
        # The storage layer is duck-typed here: flat VersionedRecordStore
        # or a sharded store with the staged-commit contract.
        versions: Any = self.versions
        staged: Optional[Any] = None
        prepare = getattr(versions, "prepare_commit", None)
        if prepare is not None and writes:
            try:
                staged = prepare(writes)
            except ShardError as exc:
                self._observe_shard_abort()
                shard = getattr(exc, "shard", None)
                raise CrossShardAbort(
                    shard, "shard prepare failed: %s" % exc
                ) from exc
        # create_state bumps dag.generation, which is what tells the
        # begin-state cache to revalidate against the new leaf set.
        try:
            state = self.dag.create_state(
                parents,
                read_keys=read_keys,
                write_keys=frozenset(write_keys if write_keys is not None else writes),
                state_id=state_id,
            )
        except Exception:
            if staged is not None:
                versions.abandon_commit(staged)
            raise
        if self.write_index is not None:
            self.write_index.on_commit(state)
        tracer = self.tracer
        if ctx is None and tracer is not None and tracer.enabled:
            # LOCAL/MERGE commits originate a new trace here; REMOTE
            # commits whose message lost its context get one derived
            # from the origin-site state id they carry.
            # state.id.site is the originating site even for REMOTE
            # states, which keep their origin-site ids.
            ctx = TraceContext.for_commit(
                state.id, [p.id for p in parents], state.id.site
            )
        self.last_ctx = ctx
        if staged is not None:
            versions.install_commit(staged, state)
        else:
            for key, value in writes.items():
                self.versions.write(key, state.id, value)
        if trace is not None:
            trace.writes_applied += len(writes)
        self._append_log(state, writes)
        self._observe(origin, parents, writes)
        if staged is not None and staged.n_shards > 1:
            m = _met.DEFAULT
            if m.enabled:
                m.inc("tardis_commit_cross_shard_total")
        return state

    def _observe_shard_abort(self) -> None:
        m = _met.DEFAULT
        if m.enabled:
            m.inc("tardis_commit_shard_abort_total")

    # -- write-ahead logging (§6.5) ----------------------------------------

    def _append_log(self, state: State, writes: Dict[Any, Any]) -> None:
        wal = self.wal
        if wal is None:
            return
        wal.append_commit(
            state.id,
            tuple(p.id for p in state.parents),
            tuple(writes.keys()),
            values=dict(writes) if self.log_values else None,
        )
        if self.group_commit > 1 and not wal.sync:
            self._unflushed += 1
            if self._unflushed >= self.group_commit:
                wal.flush()
                self._unflushed = 0
                m = _met.DEFAULT
                if m.enabled:
                    m.inc("tardis_wal_group_flush_total")

    # -- observability -----------------------------------------------------

    def _observe(
        self, origin: str, parents: Sequence[State], writes: Dict[Any, Any]
    ) -> None:
        m = _met.DEFAULT
        if not m.enabled:
            return
        if self._hot_registry is not m:
            self._hot_registry = m
            self._hot_commit = m.counter("tardis_txn_commit_total")
            self._hot_write_keys = m.histogram("tardis_txn_write_keys")
            self._hot_remote_apply = m.counter("tardis_repl_remote_apply_total")
        if origin == REMOTE:
            self._hot_remote_apply.inc()
            return
        self._hot_commit.inc()
        self._hot_write_keys.record(len(writes))
        if origin == MERGE:
            m.inc("tardis_branch_merge_total")
            m.observe("tardis_merge_parents", len(parents))
