"""Begin and end constraints (Table 1, §5.1, §6.1).

TARDiS reformulates isolation levels and session guarantees as predicates
attached to ``begin`` and ``commit``:

* a **begin constraint** selects which states qualify as the
  transaction's read state (evaluated during the leaves-up BFS);
* an **end constraint** controls the commit "ripple": starting from the
  read state, the transaction descends through children for as long as
  each passed state is *compatible* with it, and the final candidate must
  additionally pass the constraint's *commit-site* predicate.

The compatibility half encodes isolation (Serializability: no passed
state wrote anything the transaction read; Snapshot Isolation: no passed
state wrote anything the transaction writes), while the commit-site half
encodes branching control (No Branching, K-Branching). Constraints
compose with ``&`` (intersection — both must hold; the paper's "union of
the Serializability and No Branching constraint" is this conjunction of
requirements) and ``|`` (either suffices).

The paper's defaults — ``Ancestor`` begin, ``Serializability`` end — give
per-branch serializability with read-my-writes; adding ``NoBranching``
turns local conflicts back into aborts, mimicking sequential storage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Tuple

from repro.core.ids import StateId
from repro.core.state_dag import State

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.transaction import BaseTransaction


class Constraint:
    """Base class: a predicate usable at begin and/or commit time."""

    #: human-readable name used in benchmark output.
    name = "constraint"
    can_begin = False
    can_end = False

    # Begin side -----------------------------------------------------------

    def satisfied_as_read_state(self, state: State, txn: "BaseTransaction") -> bool:
        """May ``state`` be the transaction's read state?"""
        raise NotImplementedError("%s is not a begin constraint" % self.name)

    # End side --------------------------------------------------------------

    def allows_ripple_past(self, state: State, txn: "BaseTransaction") -> bool:
        """May the committing transaction be serialized after ``state``?"""
        raise NotImplementedError("%s is not an end constraint" % self.name)

    def allows_commit_at(self, state: State, txn: "BaseTransaction") -> bool:
        """May the transaction commit as a (new) child of ``state``?"""
        raise NotImplementedError("%s is not an end constraint" % self.name)

    # Composition -----------------------------------------------------------

    def __and__(self, other: "Constraint") -> "And":
        return And(self, other)

    def __or__(self, other: "Constraint") -> "Or":
        return Or(self, other)

    def __repr__(self) -> str:
        return "<%s>" % self.name


class AnyConstraint(Constraint):
    """Always satisfied (Table 1: 'Any')."""

    name = "Any"
    can_begin = True
    can_end = True

    def satisfied_as_read_state(self, state: State, txn: "BaseTransaction") -> bool:
        return True

    def allows_ripple_past(self, state: State, txn: "BaseTransaction") -> bool:
        return True

    def allows_commit_at(self, state: State, txn: "BaseTransaction") -> bool:
        return True


class SerializabilityConstraint(Constraint):
    """Guarantees serializability within the branch (end constraint).

    The transaction may ripple past a state only when that state's write
    set is disjoint from the transaction's read set — i.e. everything the
    transaction read is still current at the commit point, the classic
    backward validation. Unlike OCC, only the children of the chosen read
    state's branch are checked, never the whole set of concurrent
    committers (§7.1.2).
    """

    name = "Serializability"
    can_end = True

    def allows_ripple_past(self, state: State, txn: "BaseTransaction") -> bool:
        return not (state.write_keys & txn.read_keys)

    def allows_commit_at(self, state: State, txn: "BaseTransaction") -> bool:
        return True


class SnapshotIsolationConstraint(Constraint):
    """Guarantees snapshot isolation within the branch (end constraint).

    First-committer-wins: the transaction may not ripple past a state
    that wrote any key the transaction also writes.
    """

    name = "SnapshotIsolation"
    can_end = True

    def allows_ripple_past(self, state: State, txn: "BaseTransaction") -> bool:
        return not (state.write_keys & txn.write_keys)

    def allows_commit_at(self, state: State, txn: "BaseTransaction") -> bool:
        return True


class ReadCommittedConstraint(Constraint):
    """Guarantees read committed (Table 1).

    Every state in the DAG reflects only committed transactions, so any
    read state qualifies and the commit may ripple arbitrarily far.
    """

    name = "ReadCommitted"
    can_begin = True
    can_end = True

    def satisfied_as_read_state(self, state: State, txn: "BaseTransaction") -> bool:
        return True

    def allows_ripple_past(self, state: State, txn: "BaseTransaction") -> bool:
        return True

    def allows_commit_at(self, state: State, txn: "BaseTransaction") -> bool:
        return True


class NoBranchingConstraint(Constraint):
    """State has no children (Table 1): never create a branch.

    As an end constraint this turns conflicts into aborts — combined with
    ``Serializability`` it mimics a traditional sequential store (§5.1).
    """

    name = "NoBranching"
    can_begin = True
    can_end = True

    def satisfied_as_read_state(self, state: State, txn: "BaseTransaction") -> bool:
        return state.is_leaf

    def allows_ripple_past(self, state: State, txn: "BaseTransaction") -> bool:
        return True

    def allows_commit_at(self, state: State, txn: "BaseTransaction") -> bool:
        return state.is_leaf


class KBranchingConstraint(Constraint):
    """State has fewer than k-1 children (Table 1).

    Bounds the local branching degree: with ``k=2`` it reduces to
    ``NoBranching``; larger ``k`` trades merge complexity for the
    performance of branch-on-conflict (§5.1).
    """

    name = "KBranching"
    can_begin = True
    can_end = True

    def __init__(self, k: int) -> None:
        if k < 2:
            raise ValueError("k must be >= 2")
        self.k = k
        self.name = "KBranching(%d)" % k

    def _ok(self, state: State) -> bool:
        return len(state.children) < self.k - 1

    def satisfied_as_read_state(self, state: State, txn: "BaseTransaction") -> bool:
        return self._ok(state)

    def allows_ripple_past(self, state: State, txn: "BaseTransaction") -> bool:
        return True

    def allows_commit_at(self, state: State, txn: "BaseTransaction") -> bool:
        return self._ok(state)


class ParentConstraint(Constraint):
    """State where the client last committed (Table 1, begin constraint).

    Behaves like a private Git branch: the client only ever sees its own
    operations (§7.1.4).
    """

    name = "Parent"
    can_begin = True

    def satisfied_as_read_state(self, state: State, txn: "BaseTransaction") -> bool:
        return state.id == txn.session.last_commit_id


class AncestorConstraint(Constraint):
    """Child of (descendant of) the client's last committed state.

    The paper's default begin constraint: the client sees its own writes
    plus those of any non-conflicting clients (§5.1).
    """

    name = "Ancestor"
    can_begin = True

    def satisfied_as_read_state(self, state: State, txn: "BaseTransaction") -> bool:
        anchor = txn.session.last_commit_state()
        return txn.dag.descendant_check(anchor, state)


class StateIdConstraint(Constraint):
    """State id matches one of the specified ids (Table 1).

    Used by the replicator: a replicated transaction carries the id of
    the state it must be applied to, reducing dependency checking to a
    constant-time lookup (§6.4). As an end constraint it forbids
    rippling: the transaction commits exactly at its read state.
    """

    name = "StateID"
    can_begin = True
    can_end = True

    def __init__(self, state_ids: Iterable[StateId]) -> None:
        self.state_ids: Tuple[StateId, ...] = tuple(state_ids)

    def satisfied_as_read_state(self, state: State, txn: "BaseTransaction") -> bool:
        return state.id in self.state_ids

    def allows_ripple_past(self, state: State, txn: "BaseTransaction") -> bool:
        return False

    def allows_commit_at(self, state: State, txn: "BaseTransaction") -> bool:
        return state.id in self.state_ids


class _Composite(Constraint):
    def __init__(self, *parts: Constraint) -> None:
        if len(parts) < 2:
            raise ValueError("composite constraints need >= 2 parts")
        self.parts = parts

    @property
    def can_begin(self) -> bool:  # type: ignore[override]
        return all(p.can_begin for p in self.parts)

    @property
    def can_end(self) -> bool:  # type: ignore[override]
        return all(p.can_end for p in self.parts)


class And(_Composite):
    """Intersection: all constraints must hold."""

    @property
    def name(self) -> str:  # type: ignore[override]
        return "(" + " & ".join(p.name for p in self.parts) + ")"

    def satisfied_as_read_state(self, state: State, txn: "BaseTransaction") -> bool:
        return all(p.satisfied_as_read_state(state, txn) for p in self.parts)

    def allows_ripple_past(self, state: State, txn: "BaseTransaction") -> bool:
        return all(p.allows_ripple_past(state, txn) for p in self.parts)

    def allows_commit_at(self, state: State, txn: "BaseTransaction") -> bool:
        return all(p.allows_commit_at(state, txn) for p in self.parts)


class Or(_Composite):
    """Union: any one constraint suffices."""

    @property
    def can_begin(self) -> bool:  # type: ignore[override]
        return any(p.can_begin for p in self.parts)

    @property
    def can_end(self) -> bool:  # type: ignore[override]
        return any(p.can_end for p in self.parts)

    @property
    def name(self) -> str:  # type: ignore[override]
        return "(" + " | ".join(p.name for p in self.parts) + ")"

    def satisfied_as_read_state(self, state: State, txn: "BaseTransaction") -> bool:
        return any(
            p.can_begin and p.satisfied_as_read_state(state, txn) for p in self.parts
        )

    def allows_ripple_past(self, state: State, txn: "BaseTransaction") -> bool:
        return any(p.can_end and p.allows_ripple_past(state, txn) for p in self.parts)

    def allows_commit_at(self, state: State, txn: "BaseTransaction") -> bool:
        return any(p.can_end and p.allows_commit_at(state, txn) for p in self.parts)
