"""Multiversion record storage (§6.1.3-6.1.4).

Every update creates a new record version tagged with the id of the state
the committing transaction created. Records live in a B-tree keyed by
``(key, state_id)``; the key-version mapping keeps, per key, a
topologically ordered (newest-first) skip list of state ids.

Reading key ``k`` from read state ``r`` walks ``k``'s version list
newest-first and returns the first version whose state passes the
Figure 7 ``descendant_check`` against ``r`` — which, because ids are
monotone along branches, is necessarily the branch's most recent version.

Record promotion (§6.3) rewrites versions whose states were garbage
collected to the id of the surviving descendant that took over their
identity, then discards all but the newest of the versions that collapsed
onto the same id.

**Visibility cache.** Repeated reads on a stable branch redo the same
walk, so the store keeps a per-key cache mapping ``(key,
read_state.path_mask)`` to the winning ``(state_id, value)``. An entry
remembers the id of the read state it was computed at (``cid``); it may
be reused from read state ``r`` when

* ``r.id == cid`` (the very same read point), or
* ``r.id > cid`` and the key's newest version id is ``<= cid`` — ids
  are branch-monotone, so every version the entry's walk examined is
  still the complete candidate set for the newer read point (the entry
  then adopts ``r.id`` as its new ``cid``).

Writes to the key are caught by the newest-version-id comparison (an
O(1) peek at the reversed skip list's head), and everything that
rewrites masks, version lists, or the promotion table — GC splice-out,
fork retirement, record promotion — moves the DAG's destructive
generation, which drops the whole cache. See docs/internals.md §10 for
why the two id conditions above are exactly sufficient.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.ids import StateId
from repro.core.state_dag import State, StateDAG
from repro.errors import GarbageCollectedError
from repro.obs import metrics as _met
from repro.obs.metrics import Counter, MetricsRegistry
from repro.storage.engine import RecordEngine, create_engine
from repro.storage.skiplist import SkipList

#: visibility-cache size cap; a full clear (counted as invalidations)
#: keeps the structure bounded on adversarial key/mask churn.
_VIS_CACHE_MAX = 1 << 16


class VersionedRecordStore:
    """Key-version mapping plus the backing record engine.

    ``engine`` is a :class:`~repro.storage.engine.RecordEngine` instance
    or registered engine name: ``"btree"`` (the TARDiS-BDB
    configuration, default) or ``"hash"`` (the TARDiS-MDB configuration,
    §6.6). ``backend`` is the older string-only spelling, kept as an
    alias.
    """

    # The record store has no lock of its own: every mutation runs under
    # the owning TardisStore's ``_lock``. The static lock-discipline
    # rule cannot see an external guard; the dynamic lockset checker
    # (``pytest -m lockset``) enforces it.
    _GUARDED_BY = {
        "_versions": "external:TardisStore._lock",
        "_vis_cache": "external:TardisStore._lock",
        "_vis_epoch": "external:TardisStore._lock",
        "_next_list": "external:TardisStore._lock",
    }

    def __init__(
        self,
        btree_degree: int = 16,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
        engine: Any = None,
        cache: bool = True,
    ) -> None:
        self._versions: Dict[Any, SkipList] = {}
        if engine is None:
            engine = backend if backend is not None else "btree"
        self._records: RecordEngine = create_engine(engine, degree=btree_degree)
        self._seed = seed
        self._next_list = 0
        #: per-key visibility cache (module docstring): ``(key, mask) ->
        #: [cid, hit]`` where ``hit`` is the ``(state_id, value)`` result
        #: (None for a cached "no visible version").
        self.cache_enabled = cache
        self._vis_cache: Dict[Tuple[Any, int], list] = {}
        #: destructive watermark the cache contents were built under.
        self._vis_epoch = -1
        self.vis_hits = 0
        self.vis_misses = 0
        self.vis_invalidations = 0
        #: hot metric handles, re-resolved when the default registry
        #: changes identity (benchmark harnesses swap it per run).
        self._hot_registry: Optional[MetricsRegistry] = None
        self._hot_vis_hit: Optional[Counter] = None
        self._hot_vis_miss: Optional[Counter] = None
        self._hot_vis_inval: Optional[Counter] = None

    def _hot_metrics(self, m: MetricsRegistry) -> None:
        self._hot_registry = m
        self._hot_vis_hit = m.counter("tardis_vis_cache_hit_total")
        self._hot_vis_miss = m.counter("tardis_vis_cache_miss_total")
        self._hot_vis_inval = m.counter("tardis_vis_cache_invalidations_total")

    def cache_info(self) -> Dict[str, Any]:
        """Visibility-cache introspection (tests, ``tardis top``)."""
        return {
            "enabled": self.cache_enabled,
            "size": len(self._vis_cache),
            "hits": self.vis_hits,
            "misses": self.vis_misses,
            "invalidations": self.vis_invalidations,
        }

    # -- introspection -----------------------------------------------------

    @property
    def records(self) -> RecordEngine:
        return self._records

    def num_records(self) -> int:
        return len(self._records)

    def num_keys(self) -> int:
        return len(self._versions)

    def num_versions(self, key: Any) -> int:
        slist = self._versions.get(key)
        return len(slist) if slist is not None else 0

    def keys(self) -> Iterator[Any]:
        return iter(self._versions)

    def versions_of(self, key: Any) -> List[StateId]:
        """State ids of ``key``'s versions, newest first."""
        slist = self._versions.get(key)
        return list(slist.keys()) if slist is not None else []

    # -- writes ------------------------------------------------------------

    def write(self, key: Any, state_id: StateId, value: Any) -> None:
        """Insert a new record version (never blocks, §6.1.4)."""
        slist = self._versions.get(key)
        if slist is None:
            slist = SkipList(
                reverse=True,
                seed=None if self._seed is None else self._seed + self._next_list,
            )
            self._next_list += 1
            self._versions[key] = slist
        slist.insert(state_id, None)
        self._records.insert((key, state_id), value)

    # -- reads ------------------------------------------------------------

    def read_visible(
        self,
        key: Any,
        read_state: State,
        dag: StateDAG,
        scanned: Optional[List[int]] = None,
        hits: Optional[List[int]] = None,
    ) -> Optional[Tuple[StateId, Any]]:
        """Most recent version of ``key`` visible from ``read_state``.

        Returns ``(version_state_id, value)`` or None when the key has no
        version on the selected branch. ``scanned`` (one-element list)
        counts versions examined, for the cost model; ``hits`` counts
        visibility-cache hits, which scan nothing.
        """
        slist = self._versions.get(key)
        if not self.cache_enabled:
            return self._walk_versions(key, slist, read_state, dag, scanned)
        cache = self._vis_cache
        epoch = dag.destructive_gen
        if epoch != self._vis_epoch or len(cache) > _VIS_CACHE_MAX:
            dropped = len(cache)
            if dropped:
                cache.clear()
                self.vis_invalidations += dropped
                m = _met.DEFAULT
                if m.enabled:
                    if self._hot_registry is not m:
                        self._hot_metrics(m)
                    self._hot_vis_inval.inc(dropped)
            self._vis_epoch = epoch
        ckey = (key, read_state.path_mask)
        entry = cache.get(ckey)
        if entry is not None:
            cid = entry[0]
            rid = read_state.id
            valid = rid == cid
            if not valid and rid > cid:
                # Branch-monotone ids: when nothing newer than the
                # entry's walk exists for this key, the cached winner is
                # still the first visible version from ``read_state``.
                newest = slist.first_key() if slist is not None else None
                if newest is None or newest <= cid:
                    entry[0] = rid
                    valid = True
            if valid:
                self.vis_hits += 1
                if hits is not None:
                    hits[0] += 1
                m = _met.DEFAULT
                if m.enabled:
                    if self._hot_registry is not m:
                        self._hot_metrics(m)
                    self._hot_vis_hit.inc()
                return entry[1]
        result = self._walk_versions(key, slist, read_state, dag, scanned)
        cache[ckey] = [read_state.id, result]
        self.vis_misses += 1
        m = _met.DEFAULT
        if m.enabled:
            if self._hot_registry is not m:
                self._hot_metrics(m)
            self._hot_vis_miss.inc()
        return result

    def _walk_versions(
        self,
        key: Any,
        slist: Optional[SkipList],
        read_state: State,
        dag: StateDAG,
        scanned: Optional[List[int]],
    ) -> Optional[Tuple[StateId, Any]]:
        """The uncached newest-first walk (module docstring)."""
        if slist is None:
            return None
        for state_id in slist.keys():
            if scanned is not None:
                scanned[0] += 1
            try:
                version_state = dag.resolve(state_id)
            except GarbageCollectedError:
                continue  # orphaned record awaiting pruning (§6.5)
            if dag.descendant_check(version_state, read_state):
                return state_id, self._records.get((key, state_id))
        return None

    def read_visible_many(
        self,
        keys: List[Any],
        read_state: State,
        dag: StateDAG,
        scanned: Optional[List[int]] = None,
        hits: Optional[List[int]] = None,
    ) -> List[Optional[Tuple[StateId, Any]]]:
        """Batched :meth:`read_visible`; results align with ``keys``.

        Flat storage walks the same lists either way — the batch entry
        point exists so callers can hand whole read sets down and let
        the sharded/process-level stores scatter them in parallel.
        """
        return [
            self.read_visible(key, read_state, dag, scanned, hits)
            for key in keys
        ]

    def read_candidates(
        self,
        key: Any,
        read_states: List[State],
        dag: StateDAG,
        scanned: Optional[List[int]] = None,
        hits: Optional[List[int]] = None,
    ) -> List[Tuple[StateId, Any]]:
        """Maximal visible versions of ``key`` across several branches.

        The merge-mode read: one first-visible version per read state,
        minus any candidate whose state is an ancestor of another
        candidate's state (that one is superseded on the merged view).
        """
        per_branch: Dict[StateId, Any] = {}
        for state in read_states:
            hit = self.read_visible(key, state, dag, scanned, hits)
            if hit is not None:
                per_branch.setdefault(hit[0], hit[1])
        if len(per_branch) <= 1:
            return list(per_branch.items())
        candidates = []
        ids = list(per_branch)
        # Resolve each candidate id exactly once: the promotion-chain
        # walk inside resolve() is not free, and the supersession loop
        # below otherwise redoes it O(n^2) times.
        resolved = {sid: dag.resolve(sid) for sid in ids}
        for sid in ids:
            x = resolved[sid]
            superseded = any(
                sid != other and dag.descendant_check(x, resolved[other])
                for other in ids
            )
            if not superseded:
                candidates.append((sid, per_branch[sid]))
        candidates.sort(reverse=True)
        return candidates

    # -- garbage collection (§6.3) -------------------------------------------

    def promote_and_prune(self, dag: StateDAG) -> Tuple[int, int]:
        """Rewrite versions of dead states; drop superseded duplicates.

        Returns ``(promoted, dropped)`` record counts.
        """
        promoted = 0
        dropped = 0
        for key, slist in self._versions.items():
            entries = list(slist.keys())  # newest first, pre-promotion order
            rebuilt: List[Tuple[StateId, StateId]] = []  # (live_id, original)
            seen: set = set()
            changed = False
            for state_id in entries:
                try:
                    live_id = dag.resolve(state_id).id
                except GarbageCollectedError:
                    # Orphaned record: its state is gone without a
                    # successor (crash leftovers, §6.5). Discard.
                    self._records.remove((key, state_id))
                    changed = True
                    dropped += 1
                    continue
                if live_id in seen:
                    # An earlier (newer) version already owns this
                    # identity; this one can never be read again.
                    self._records.remove((key, state_id))
                    changed = True
                    dropped += 1
                    continue
                seen.add(live_id)
                if live_id != state_id:
                    value = self._records.get((key, state_id))
                    self._records.remove((key, state_id))
                    self._records.insert((key, live_id), value)
                    promoted += 1
                    changed = True
                rebuilt.append((live_id, state_id))
            if changed:
                fresh = SkipList(
                    reverse=True,
                    seed=None if self._seed is None else self._seed + self._next_list,
                )
                self._next_list += 1
                for live_id, _original in rebuilt:
                    fresh.insert(live_id, None)
                self._versions[key] = fresh
        if promoted or dropped:
            # Version lists were rewritten under existing ids: cached
            # winners may now point at promoted/pruned records.
            dag.mark_destructive()
        return promoted, dropped

    def items_at(self, state: State, dag: StateDAG) -> Iterator[Tuple[Any, Any]]:
        """Snapshot of all keys as visible from ``state`` (for checkpoints)."""
        for key in list(self._versions):
            hit = self.read_visible(key, state, dag)
            if hit is not None:
                yield key, hit[1]
