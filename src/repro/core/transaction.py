"""Single-mode transactions (§5.1, §6.1).

In single mode the programmer reads from and writes to one branch and
programming proceeds exactly as against sequential storage: ``begin``
selects a read state satisfying the begin constraint, ``get``/``put``
operate against that snapshot plus the transaction's own writes, and
``commit`` ripples down the branch to the most recent state satisfying
the end constraint — forking the state instead of aborting when another
transaction got there first (branch-on-conflict).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.core.ids import StateId
from repro.core.state_dag import State, StateDAG
from repro.obs import tracing as _trc
from repro.errors import (
    KeyNotFound,
    ReadOnlyViolation,
    TransactionClosed,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.constraints import Constraint
    from repro.core.store import ClientSession, TardisStore


class _Tombstone:
    """Marker stored by ``delete``: the key has no value on this branch."""

    def __repr__(self) -> str:
        return "<tombstone>"

    def __reduce__(self) -> Tuple[Any, ...]:
        # Tombstones are compared by identity (``value is TOMBSTONE``),
        # so a pickle round trip — e.g. through a shard-worker pipe —
        # must yield the singleton, not a fresh instance.
        return (_load_tombstone, ())


TOMBSTONE = _Tombstone()


def _load_tombstone() -> "_Tombstone":
    return TOMBSTONE

ACTIVE = "active"
COMMITTED = "committed"
ABORTED = "aborted"

_RAISE = object()


class OpTrace:
    """Work counters for one transaction, consumed by the cost model.

    The discrete-event simulation charges time proportional to the real
    work the data structures performed: states visited by the begin BFS,
    versions scanned by reads, ripple steps and conflict checks at
    commit. Nothing here affects semantics.
    """

    __slots__ = (
        "begin_visits",
        "begin_cached",
        "versions_scanned",
        "vis_hits",
        "ripple_steps",
        "children_checked",
        "writes_applied",
        "created_fork",
        "merge_parents",
    )

    def __init__(self) -> None:
        self.begin_visits = 0
        #: the begin-state cache satisfied begin without the leaf BFS.
        self.begin_cached = False
        self.versions_scanned = 0
        #: reads answered by the visibility cache (scan nothing).
        self.vis_hits = 0
        self.ripple_steps = 0
        self.children_checked = 0
        self.writes_applied = 0
        self.created_fork = False
        self.merge_parents = 0


class BaseTransaction:
    """State and operations shared by single-mode and merge transactions."""

    def __init__(
        self,
        store: "TardisStore",
        session: "ClientSession",
        begin_constraint: "Constraint",
        read_only: bool = False,
    ) -> None:
        self._store = store
        self.session = session
        self.begin_constraint = begin_constraint
        self.read_only = read_only
        self.status = ACTIVE
        self.read_keys: Set[Any] = set()
        self.writes: Dict[Any, Any] = {}
        self.trace = OpTrace()
        #: id of the state this transaction committed, once committed.
        self.commit_id: Optional[StateId] = None

    @property
    def dag(self) -> StateDAG:
        return self._store.dag

    @property
    def write_keys(self) -> FrozenSet[Any]:
        return frozenset(self.writes)

    def _check_active(self) -> None:
        if self.status != ACTIVE:
            raise TransactionClosed("transaction is %s" % self.status)

    # -- writes ------------------------------------------------------------

    def put(self, key: Any, value: Any) -> None:
        """Buffer a write; it becomes a record version at commit."""
        self._check_active()
        if self.read_only:
            raise ReadOnlyViolation("read-only transaction cannot write %r" % (key,))
        self.writes[key] = value

    def delete(self, key: Any) -> None:
        """Delete ``key`` on this branch (a tombstone version)."""
        self.put(key, TOMBSTONE)

    # -- lifecycle -----------------------------------------------------------

    def abort(self) -> None:
        """Abandon the transaction; buffered writes are discarded."""
        self._check_active()
        self._store._finish(self, ABORTED)
        t = _trc.DEFAULT
        if t.enabled:
            t.event("txn.abort", reason="user", site=self._store.site)

    def commit(self, end_constraint: Optional["Constraint"] = None) -> StateId:
        raise NotImplementedError

    def __enter__(self) -> "BaseTransaction":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[Any],
    ) -> None:
        if self.status == ACTIVE:
            if exc_type is None:
                self.commit()
            else:
                self.abort()


class Transaction(BaseTransaction):
    """A single-mode transaction operating on one branch."""

    def __init__(
        self,
        store: "TardisStore",
        session: "ClientSession",
        read_state: State,
        begin_constraint: "Constraint",
        read_only: bool = False,
    ) -> None:
        super().__init__(store, session, begin_constraint, read_only)
        self.read_state = read_state

    def get(self, key: Any, default: Any = _RAISE) -> Any:
        """Read ``key`` from this branch (own writes first, then snapshot)."""
        self._check_active()
        self.read_keys.add(key)
        if key in self.writes:
            value = self.writes[key]
        else:
            value = self._store._read(key, self.read_state, self.trace)
        if value is TOMBSTONE or value is _NOT_FOUND:
            if default is _RAISE:
                raise KeyNotFound(key)
            return default
        return value

    def get_many(self, keys: Iterable[Any], default: Any = _RAISE) -> List[Any]:
        """Batched read: like ``[get(k) for k in keys]`` in one store call.

        Own buffered writes are consulted per key as in :meth:`get`; the
        remaining keys go to the storage layer as one batch, which the
        sharded stores scatter across their shards (and the process-level
        store across its workers, in parallel). Results align with
        ``keys``; ``default`` applies per missing key.
        """
        self._check_active()
        keys = list(keys)
        values: List[Any] = [_NOT_FOUND] * len(keys)
        missing: List[Tuple[int, Any]] = []
        for position, key in enumerate(keys):
            self.read_keys.add(key)
            if key in self.writes:
                values[position] = self.writes[key]
            else:
                missing.append((position, key))
        if missing:
            fetched = self._store._read_many(
                [key for _position, key in missing], self.read_state, self.trace
            )
            for (position, _key), value in zip(missing, fetched):
                values[position] = value
        for position, value in enumerate(values):
            if value is TOMBSTONE or value is _NOT_FOUND:
                if default is _RAISE:
                    raise KeyNotFound(keys[position])
                values[position] = default
        return values

    def commit(self, end_constraint: Optional["Constraint"] = None) -> StateId:
        """Commit at the most recent state satisfying the end constraint.

        Returns the id of the commit state (for a read-only transaction,
        the id of the read state: no new state is added to the DAG,
        §6.1.4). Raises :class:`~repro.errors.TransactionAborted` when no
        acceptable commit state exists.
        """
        self._check_active()
        return self._store._commit_single(self, end_constraint)

    def __repr__(self) -> str:
        return "<Transaction read_state=%r status=%s>" % (
            self.read_state.id,
            self.status,
        )


class _NotFoundType:
    def __repr__(self) -> str:  # pragma: no cover
        return "<not-found>"


_NOT_FOUND = _NotFoundType()
