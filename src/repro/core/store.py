"""The TARDiS store: one site's branching transactional key-value store.

Ties together the State DAG (consistency layer), the versioned record
store (storage layer), the garbage collector, and the write-ahead log
(§4, Figure 2). The replicator service lives in
:mod:`repro.replication` and drives ``apply_remote``.

Typical use::

    store = TardisStore("siteA")
    session = store.session("alice")

    with store.begin(session=session) as t:
        t.put("content", "for Banditoni")

    # ... after branches diverged:
    merge = store.begin_merge(session=session)
    for key in merge.find_conflict_writes():
        fork = merge.find_fork_points()[0]
        base = merge.get_for_id(key, fork, default=None)
        merge.put(key, resolve(base, merge.get_all(key)))
    merge.commit()
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.commit import LOCAL, MERGE, REMOTE, CommitPipeline
from repro.core.constraints import (
    AncestorConstraint,
    AnyConstraint,
    Constraint,
    SerializabilityConstraint,
    StateIdConstraint,
)
from repro.core.gc import GarbageCollector, GCStats
from repro.core.ids import ROOT_ID, StateId
from repro.core.merge import MergeTransaction, WriteSetIndex
from repro.core.state_dag import State, StateDAG
from repro.core.transaction import (
    ABORTED,
    ACTIVE,
    COMMITTED,
    BaseTransaction,
    OpTrace,
    Transaction,
    TOMBSTONE,
    _NOT_FOUND,
)
from repro.core.versions import VersionedRecordStore
from repro.obs import metrics as _met
from repro.obs.metrics import MetricsRegistry
from repro.obs import tracing as _trc
from repro.obs.tracing import Tracer
from repro.errors import (
    BeginError,
    CrossShardAbort,
    GarbageCollectedError,
    TardisError,
    TransactionAborted,
)
from repro.storage.engine import create_record_store, is_record_store
from repro.storage.wal import WriteAheadLog


class ClientSession:
    """Per-client context: the anchor for Parent/Ancestor constraints.

    Tracks the state at which the client last committed; ``Ancestor``
    reads any descendant of it (read-my-writes), ``Parent`` reads exactly
    it (§5.1, Table 1).
    """

    _GUARDED_BY = {"_active_txns": "external:TardisStore._lock"}

    def __init__(self, store: "TardisStore", name: str) -> None:
        self._store = store
        self.name = name
        self.last_commit_id: StateId = store.dag.root.id
        #: begin-state memoization: constraint -> last chosen read state
        #: (revalidated structurally on every hit; docs/internals.md §10).
        self._begin_cache: Dict[Constraint, State] = {}
        #: transactions begun against this session and still ACTIVE;
        #: ``close_session`` aborts them so a disconnected client cannot
        #: leave read states pinned forever.
        self._active_txns: Set[BaseTransaction] = set()

    def last_commit_state(self) -> State:
        return self._store.dag.resolve(self.last_commit_id)

    def place_ceiling(self) -> None:
        """Promise never to read above the last committed state (§6.3)."""
        self._store.gc.place_ceiling(self.name, self.last_commit_id)

    def __repr__(self) -> str:
        return "<ClientSession %s @ %r>" % (self.name, self.last_commit_id)


class StoreMetrics:
    """Lifetime counters for one store."""

    __slots__ = (
        "commits",
        "read_only_commits",
        "aborts",
        "forks",
        "merges",
        "remote_applied",
        "begin_cache_hits",
        "begin_cache_misses",
    )

    def __init__(self) -> None:
        self.commits = 0
        self.read_only_commits = 0
        self.aborts = 0
        self.forks = 0
        self.merges = 0
        self.remote_applied = 0
        self.begin_cache_hits = 0
        self.begin_cache_misses = 0


class _ConstraintProbe:
    """Minimal transaction-shaped object for evaluating begin constraints
    before the transaction exists."""

    __slots__ = ("session", "dag", "read_keys", "write_keys")

    def __init__(self, session: ClientSession, dag: StateDAG) -> None:
        self.session = session
        self.dag = dag
        self.read_keys: frozenset = frozenset()
        self.write_keys: frozenset = frozenset()


class TardisStore:
    """One site of the TARDiS transactional key-value store."""

    _GUARDED_BY = {
        "_sessions": "self._lock",
        "_session_counter": "self._lock",
    }

    def __init__(
        self,
        site: str,
        default_begin: Optional[Constraint] = None,
        default_end: Optional[Constraint] = None,
        wal_path: Optional[str] = None,
        wal_sync: bool = True,
        log_values: bool = True,
        btree_degree: int = 16,
        seed: Optional[int] = 0,
        backend: Optional[str] = None,
        engine: Any = None,
        group_commit: int = 0,
        read_cache: bool = True,
        shards: Optional[int] = None,
        shard_workers: Optional[int] = None,
        shard_of: Any = None,
    ) -> None:
        self.site = site
        #: paper defaults: Ancestor begin, Serializability end (§5.1).
        self.default_begin = default_begin or AncestorConstraint()
        self.default_end = default_end or SerializabilityConstraint()
        self.dag = StateDAG(site)
        #: generation-stamped read-path caching (docs/internals.md §10):
        #: begin-state memoization, per-key visibility cache, and the
        #: merge write-set index all key off ``dag.generation`` /
        #: ``dag.destructive_gen``. ``read_cache=False`` runs every read
        #: path cold (the A/B arm of bench_readpath).
        self.read_cache = read_cache
        #: the storage layer: flat by default; an ``engine`` naming a
        #: registered record store (``"sharded"``, ``"proc-sharded"``)
        #: or an explicit ``shards``/``shard_workers`` count swaps in
        #: the shard plane behind the same interface.
        spec = engine if engine is not None else backend
        if is_record_store(spec) or shards is not None or shard_workers:
            if is_record_store(spec):
                store_name, inner = spec, None
            else:
                store_name = "proc-sharded" if shard_workers else "sharded"
                inner = spec
            self.versions = create_record_store(
                store_name,
                engine=inner,
                btree_degree=btree_degree,
                seed=seed,
                cache=read_cache,
                shards=shards,
                shard_workers=shard_workers,
                shard_of=shard_of,
            )
        else:
            self.versions = VersionedRecordStore(
                btree_degree=btree_degree,
                seed=seed,
                backend=backend,
                engine=engine,
                cache=read_cache,
            )
        #: workers the storage layer failed to stop cleanly (set by
        #: ``close``; always 0 for in-process storage).
        self.leaked_workers: int = 0
        bind_dag = getattr(self.versions, "bind_dag", None)
        if bind_dag is not None:
            bind_dag(self.dag)
        self.metrics = StoreMetrics()
        self._lock = threading.RLock()
        self._sessions: Dict[str, ClientSession] = {}
        self._session_counter = 0
        self.wal: Optional[WriteAheadLog] = (
            WriteAheadLog(wal_path, sync=wal_sync) if wal_path else None
        )
        #: incremental conflict-detection summaries (docs/internals.md
        #: §10); None when the read-path caches are disabled.
        self._write_index: Optional[WriteSetIndex] = (
            WriteSetIndex(self.dag) if read_cache else None
        )
        #: the single commit code path: DAG install, version insert,
        #: WAL append (with optional group-commit batching), metrics.
        self.pipeline = CommitPipeline(
            self.dag,
            self.versions,
            wal=self.wal,
            log_values=log_values,
            group_commit=group_commit,
            write_index=self._write_index,
        )
        self.gc = GarbageCollector(self)
        #: listeners notified of each local commit (the replicator hooks in).
        self._commit_listeners: List = []
        #: per-store tracer; None falls back to the module default, so a
        #: cluster can give each site its own ring buffer while
        #: single-store code keeps using ``obs.tracing.DEFAULT``.
        self.tracer: Optional[Tracer] = None
        #: per-transaction metric handles, re-resolved when the default
        #: registry changes identity (benchmark harnesses swap it per
        #: run) — the per-call name lookup is measurable at txn rates.
        self._hot_registry: Optional[MetricsRegistry] = None

    def _hot_metrics(self, m: MetricsRegistry) -> None:
        """Resolve the hot-path metric handles against registry ``m``."""
        self._hot_registry = m
        self._hot_begin = m.counter("tardis_txn_begin_total")
        self._hot_begin_visits = m.histogram("tardis_begin_visits")
        self._hot_commit_readonly = m.counter("tardis_txn_commit_readonly_total")
        self._hot_abort = m.counter("tardis_txn_abort_total")
        self._hot_ripple = m.histogram("tardis_commit_ripple_steps")
        self._hot_fork = m.counter("tardis_branch_fork_total")
        self._hot_begin_cache_hit = m.counter("tardis_begin_cache_hit_total")
        self._hot_begin_cache_miss = m.counter("tardis_begin_cache_miss_total")

    def set_tracer(self, tracer: Optional[Tracer]) -> None:
        """Give this store (and its commit pipeline) a dedicated tracer."""
        self.tracer = tracer
        self.pipeline.tracer = tracer

    def _tracer(self) -> Tracer:
        return self.tracer if self.tracer is not None else _trc.DEFAULT

    # -- sessions -----------------------------------------------------------

    def session(self, name: Optional[str] = None) -> ClientSession:
        # The whole lookup-or-create runs under the store lock:
        # auto-naming increments a shared counter, and two threads
        # racing on the same explicit name must get one session object.
        with self._lock:
            if name is None:
                self._session_counter += 1
                name = "client-%d" % self._session_counter
            existing = self._sessions.get(name)
            if existing is not None:
                return existing
            sess = ClientSession(self, name)
            self._sessions[name] = sess
            return sess

    def sessions(self) -> List[ClientSession]:
        return list(self._sessions.values())

    def close_session(self, name: str) -> bool:
        """Forget a client session and any ceiling it placed.

        An inactive session's old ceiling would otherwise pin the entire
        DAG above it forever (ceilings are intersected across clients,
        §6.3).

        Idempotent: closing an unknown or already-closed session is a
        no-op, so the network server's disconnect cleanup can race a
        polite client-side close without crashing. Any transaction still
        ACTIVE on the session is aborted first (releasing its read-state
        pins), and the session's begin-state cache is dropped with it.
        Returns True when a live session was actually closed.
        """
        with self._lock:
            sess = self._sessions.pop(name, None)
            if sess is not None:
                for txn in list(sess._active_txns):
                    if txn.status == ACTIVE:
                        self._finish(txn, ABORTED)
                sess._active_txns.clear()
                sess._begin_cache.clear()
        self.gc.clear_ceiling(name)
        return sess is not None

    # -- transaction lifecycle -------------------------------------------------

    def begin(
        self,
        begin_constraint: Optional[Constraint] = None,
        session: Optional[ClientSession] = None,
        read_only: bool = False,
    ) -> Transaction:
        """Start a single-mode transaction (§6.1.1).

        Selects the most recent unmarked state satisfying the begin
        constraint by BFS from the leaves up; raises
        :class:`~repro.errors.BeginError` when no state qualifies.
        """
        constraint = begin_constraint or self.default_begin
        if not constraint.can_begin:
            raise BeginError("%s cannot be used as a begin constraint" % constraint.name)
        session = session or self.session()
        with self._lock:
            probe = _ConstraintProbe(session, self.dag)
            predicate = lambda s: constraint.satisfied_as_read_state(s, probe)
            state = None
            begin_cached = False
            if self.read_cache:
                cached = session._begin_cache.get(constraint)
                if cached is not None and self.dag.revalidate_read_state(
                    cached, predicate
                ):
                    state = cached
                    begin_cached = True
                    self.metrics.begin_cache_hits += 1
            visits = [0]
            if state is None:
                state = self.dag.find_read_state(predicate, count_visits=visits)
                if state is None:
                    raise BeginError(
                        "no state satisfies begin constraint %s" % constraint.name
                    )
                if self.read_cache:
                    self.metrics.begin_cache_misses += 1
                    cache = session._begin_cache
                    if len(cache) >= 8 and constraint not in cache:
                        cache.clear()  # bound per-session memory
                    cache[constraint] = state
            txn = Transaction(self, session, state, constraint, read_only=read_only)
            txn.trace.begin_visits = visits[0]
            txn.trace.begin_cached = begin_cached
            state.pins += 1
            session._active_txns.add(txn)
        m = _met.DEFAULT
        if m.enabled:
            if self._hot_registry is not m:
                self._hot_metrics(m)
            self._hot_begin.inc()
            self._hot_begin_visits.record(visits[0])
            if self.read_cache:
                if begin_cached:
                    self._hot_begin_cache_hit.inc()
                else:
                    self._hot_begin_cache_miss.inc()
        return txn

    def begin_merge(
        self,
        begin_constraint: Optional[Constraint] = None,
        session: Optional[ClientSession] = None,
        states: Optional[Iterable[StateId]] = None,
    ) -> MergeTransaction:
        """Start a merge transaction over several branches (§6.2).

        By default the read states are all current (unmarked) leaves that
        satisfy the begin constraint — the set of branch heads to be
        reconciled. Pass ``states`` to merge an explicit set instead.
        """
        constraint = begin_constraint or AnyConstraint()
        if not constraint.can_begin:
            raise BeginError("%s cannot be used as a begin constraint" % constraint.name)
        session = session or self.session()
        with self._lock:
            if states is not None:
                read_states = [self.dag.resolve(sid) for sid in states]
            else:
                probe = _ConstraintProbe(session, self.dag)
                read_states = [
                    leaf
                    for leaf in self.dag.leaves()
                    if not leaf.marked and constraint.satisfied_as_read_state(leaf, probe)
                ]
            if not read_states:
                raise BeginError(
                    "no branches satisfy merge begin constraint %s" % constraint.name
                )
            txn = MergeTransaction(self, session, read_states, constraint)
            for state in read_states:
                state.pins += 1
            session._active_txns.add(txn)
        return txn

    def _finish(self, txn: BaseTransaction, status: str) -> None:
        # Reentrant from the commit paths (lock already held); user-level
        # abort() and close_session() enter here cold, so take the lock:
        # the pin decrements and the session's active-set discard must
        # not race a concurrent begin/commit on another connection.
        with self._lock:
            txn.status = status
            txn.session._active_txns.discard(txn)
            for state in _read_states_of(txn):
                if state.pins > 0:
                    state.pins -= 1
        if status == ABORTED:
            m = _met.DEFAULT
            if m.enabled:
                if self._hot_registry is not m:
                    self._hot_metrics(m)
                self._hot_abort.inc()

    # -- reads (called by transactions) ------------------------------------------

    def _read(self, key: Any, state: State, trace: OpTrace) -> Any:
        scanned = [0]
        hits = [0]
        hit = self.versions.read_visible(key, state, self.dag, scanned, hits)
        trace.versions_scanned += scanned[0]
        trace.vis_hits += hits[0]
        if hit is None:
            return _NOT_FOUND
        return hit[1]

    def _read_many(self, keys: List[Any], state: State, trace: OpTrace) -> List[Any]:
        """Batched ``_read``: one storage call for a whole key batch.

        Against the process-level sharded store the batch scatters
        across workers and their version walks run in parallel; flat
        and in-process-sharded storage just loop.
        """
        scanned = [0]
        hits = [0]
        results = self.versions.read_visible_many(
            keys, state, self.dag, scanned, hits
        )
        trace.versions_scanned += scanned[0]
        trace.vis_hits += hits[0]
        return [_NOT_FOUND if hit is None else hit[1] for hit in results]

    def _read_at(self, key: Any, state: State, trace: OpTrace) -> Optional[Tuple[StateId, Any]]:
        scanned = [0]
        hits = [0]
        hit = self.versions.read_visible(key, state, self.dag, scanned, hits)
        trace.versions_scanned += scanned[0]
        trace.vis_hits += hits[0]
        return hit

    def _read_candidates(
        self, key: Any, states: List[State], trace: OpTrace
    ) -> List[Tuple[State, StateId, Any]]:
        scanned = [0]
        hits = [0]
        candidates = self.versions.read_candidates(
            key, states, self.dag, scanned, hits
        )
        trace.versions_scanned += scanned[0]
        trace.vis_hits += hits[0]
        return candidates

    def _conflict_writes(self, states: List[State]) -> List[Any]:
        forks = self.dag.fork_points_of(states)
        if not forks:
            return []
        fork = forks[0]
        index = self._write_index
        if index is not None:
            before_hits, before_misses = index.hits, index.misses
            branch_writes = [set(index.writes_since(head, fork)) for head in states]
            m = _met.DEFAULT
            if m.enabled:
                m.inc("tardis_writeset_index_hit_total", index.hits - before_hits)
                m.inc(
                    "tardis_writeset_index_miss_total", index.misses - before_misses
                )
        else:
            branch_writes = []
            for head in states:
                written: set = set()
                for state in self.dag.states_between(head, fork):
                    written |= state.write_keys
                branch_writes.append(written)
        conflicting: set = set()
        for i, left in enumerate(branch_writes):
            for right in branch_writes[i + 1 :]:
                conflicting |= left & right
        return sorted(conflicting, key=repr)

    # -- commit (§6.1.2) -----------------------------------------------------------

    def _commit_single(self, txn: Transaction, end_constraint: Optional[Constraint]) -> StateId:
        constraint = end_constraint or self.default_end
        with self._lock:
            if not txn.writes:
                # Read-only transactions never conflict and are not added
                # to the DAG (§6.1.4); anchor the session at the read
                # state for monotonic reads.
                self.metrics.read_only_commits += 1
                txn.commit_id = txn.read_state.id
                txn.session.last_commit_id = txn.read_state.id
                self._finish(txn, COMMITTED)
                m = _met.DEFAULT
                if m.enabled:
                    if self._hot_registry is not m:
                        self._hot_metrics(m)
                    self._hot_commit_readonly.inc()
                return txn.commit_id
            if not constraint.can_end:
                self._finish(txn, ABORTED)
                self.metrics.aborts += 1
                raise TransactionAborted(
                    "%s cannot be used as an end constraint" % constraint.name
                )
            # Ripple down from the read state (Figure 6).
            current = txn.read_state
            while True:
                follow = None
                for child in current.children:
                    txn.trace.children_checked += 1
                    if constraint.allows_ripple_past(child, txn):
                        follow = child
                        break
                if follow is None:
                    break
                current = follow
                txn.trace.ripple_steps += 1
            if not constraint.allows_commit_at(current, txn):
                self._finish(txn, ABORTED)
                self.metrics.aborts += 1
                t = self._tracer()
                if t.enabled:
                    t.event("txn.abort", reason="end-constraint", site=self.site)
                raise TransactionAborted(
                    "no commit state satisfies end constraint %s" % constraint.name
                )
            created_fork = bool(current.children)
            try:
                state = self.pipeline.commit(
                    [current],
                    txn.writes,
                    read_keys=frozenset(txn.read_keys),
                    origin=LOCAL,
                    trace=txn.trace,
                )
            except CrossShardAbort:
                # Shard prepare failed (dead/unresponsive worker); the
                # DAG is untouched, so this is a clean typed abort.
                self._finish(txn, ABORTED)
                self.metrics.aborts += 1
                t = self._tracer()
                if t.enabled:
                    t.event("txn.abort", reason="shard-unavailable", site=self.site)
                raise
            txn.trace.created_fork = created_fork
            # Captured inside the lock: last_ctx is per-pipeline mutable
            # state and the next commit overwrites it.
            ctx = self.pipeline.last_ctx
            self.metrics.commits += 1
            if created_fork:
                self.metrics.forks += 1
            txn.commit_id = state.id
            txn.session.last_commit_id = state.id
            self._finish(txn, COMMITTED)
            m = _met.DEFAULT
            if m.enabled:
                if self._hot_registry is not m:
                    self._hot_metrics(m)
                self._hot_ripple.record(txn.trace.ripple_steps)
                if created_fork:
                    self._hot_fork.inc()
            t = self._tracer()
            if t.enabled:
                # Events carry state *ids as strings* (== trace ids), so
                # the ring buffer holds only atomic values and stays
                # invisible to the cyclic GC — resident StateId tuples
                # were the dominant tracing cost. With a ctx the string
                # is already computed (ctx.trace IS repr(state.id));
                # branched rather than building a **stamp dict because
                # this fires once per traced commit.
                if ctx is not None:
                    t.event(
                        "txn.commit",
                        state=ctx.trace,
                        writes=len(txn.writes),
                        ripple=txn.trace.ripple_steps,
                        fork=created_fork,
                        site=self.site,
                        trace=ctx.trace,
                        parent=ctx.parent,
                    )
                else:
                    t.event(
                        "txn.commit",
                        state=repr(state.id),
                        writes=len(txn.writes),
                        ripple=txn.trace.ripple_steps,
                        fork=created_fork,
                        site=self.site,
                    )
                if created_fork:
                    # fork already names its DAG parent; only the trace
                    # id is stamped on top.
                    if ctx is not None:
                        t.event(
                            "branch.fork",
                            state=ctx.trace,
                            parent=repr(current.id),
                            site=self.site,
                            trace=ctx.trace,
                        )
                    else:
                        t.event(
                            "branch.fork",
                            state=repr(state.id),
                            parent=repr(current.id),
                            site=self.site,
                        )
        self._notify_commit(state, txn.writes, ctx)
        return state.id

    def _commit_merge(self, txn: MergeTransaction, end_constraint: Optional[Constraint]) -> StateId:
        constraint = end_constraint or self.default_end
        with self._lock:
            if constraint.can_end:
                for parent in txn.read_states:
                    if not constraint.allows_commit_at(parent, txn):
                        self._finish(txn, ABORTED)
                        self.metrics.aborts += 1
                        t = self._tracer()
                        if t.enabled:
                            t.event(
                                "txn.abort", reason="merge-end-constraint", site=self.site
                            )
                        raise TransactionAborted(
                            "merge parent %r fails end constraint %s"
                            % (parent.id, constraint.name)
                        )
            try:
                state = self.pipeline.commit(
                    txn.read_states,
                    txn.writes,
                    read_keys=frozenset(txn.read_keys),
                    origin=MERGE,
                    trace=txn.trace,
                )
            except CrossShardAbort:
                self._finish(txn, ABORTED)
                self.metrics.aborts += 1
                t = self._tracer()
                if t.enabled:
                    t.event("txn.abort", reason="shard-unavailable", site=self.site)
                raise
            ctx = self.pipeline.last_ctx
            self.metrics.commits += 1
            self.metrics.merges += 1
            txn.commit_id = state.id
            txn.session.last_commit_id = state.id
            self._finish(txn, COMMITTED)
            t = self._tracer()
            if t.enabled:
                t.event(
                    "branch.merge",
                    state=ctx.trace if ctx is not None else repr(state.id),
                    parents=tuple(repr(p.id) for p in txn.read_states),
                    writes=len(txn.writes),
                    site=self.site,
                    **(
                        {"trace": ctx.trace, "parent": ctx.parent}
                        if ctx is not None
                        else {}
                    )
                )
        self._notify_commit(state, txn.writes, ctx)
        return state.id

    # -- replication hooks (§6.4) -----------------------------------------------

    def add_commit_listener(self, listener: Callable[..., None]) -> None:
        """``listener(state, writes, ctx)`` is called after each local commit.

        ``ctx`` is the commit's :class:`~repro.obs.context.TraceContext`
        (None unless a tracer is installed via :meth:`set_tracer`).
        """
        self._commit_listeners.append(listener)

    def _notify_commit(
        self, state: State, writes: Dict[Any, Any], ctx: Optional[Any] = None
    ) -> None:
        for listener in self._commit_listeners:
            listener(state, writes, ctx)

    def apply_remote(
        self,
        state_id: StateId,
        parent_ids: Tuple[StateId, ...],
        writes: Dict[Any, Any],
        read_keys: Iterable[Any] = (),
        write_keys: Optional[Iterable[Any]] = None,
        ctx: Optional[Any] = None,
    ) -> Optional[StateId]:
        """Apply a replicated transaction at its designated state (§6.4).

        The StateID constraint of the paper: the transaction is appended
        exactly under the states named by ``parent_ids`` (a constant-time
        presence check replaces dependency tracking). Raises
        :class:`~repro.errors.GarbageCollectedError` / ``KeyError`` when a
        parent is missing, in which case the replicator caches the
        transaction for later. Returns None when the state was already
        present (duplicate gossip delivery).
        """
        with self._lock:
            if state_id in self.dag:
                return None
            parents = []
            for pid in parent_ids:
                if pid not in self.dag:
                    if pid == ROOT_ID:
                        # Every site shares the original empty state; if
                        # local GC flushed it, the current root subsumes
                        # its identity.
                        parents.append(self.dag.root)
                        continue
                    raise KeyError(pid)
                parents.append(self.dag.resolve(pid))
            if not parents:
                # The state was the sender's root (its own ancestors were
                # compressed away): graft it at the local root.
                parents.append(self.dag.root)
            if any(p.id >= state_id for p in parents):
                # Grafting under a promoted parent would break the
                # id-monotonicity invariant that visibility checks rely
                # on; the paper aborts transactions that need states an
                # erroneous ceiling collected (§6.4).
                raise GarbageCollectedError(state_id)
            state = self.pipeline.commit(
                parents,
                writes,
                read_keys=frozenset(read_keys),
                write_keys=write_keys,
                state_id=state_id,
                origin=REMOTE,
                ctx=ctx,
            )
            self.metrics.remote_applied += 1
        return state.id

    # -- convenience autocommit helpers ----------------------------------------

    def put(self, key: Any, value: Any, session: Optional[ClientSession] = None) -> StateId:
        """Single-write autocommit transaction."""
        txn = self.begin(session=session)
        txn.put(key, value)
        return txn.commit()

    def get(self, key: Any, default: Any = None, session: Optional[ClientSession] = None) -> Any:
        """Single-read autocommit transaction."""
        txn = self.begin(session=session, read_only=True)
        try:
            value = txn.get(key, default=default)
        finally:
            if txn.status == ACTIVE:
                txn.commit()
        return value

    # -- maintenance --------------------------------------------------------------

    def cache_stats(self) -> Dict[str, Any]:
        """Read-path cache effectiveness (docs/internals.md §10)."""
        stats = {
            "enabled": self.read_cache,
            "generation": self.dag.generation,
            "destructive_gen": self.dag.destructive_gen,
            "begin_hits": self.metrics.begin_cache_hits,
            "begin_misses": self.metrics.begin_cache_misses,
        }
        stats.update(
            ("vis_%s" % k, v) for k, v in self.versions.cache_info().items()
        )
        index = self._write_index
        if index is not None:
            stats["writeset_hits"] = index.hits
            stats["writeset_misses"] = index.misses
            stats["writeset_entries"] = len(index)
        return stats

    def shard_health(self, ping: bool = True) -> Optional[Dict[str, Any]]:
        """Per-shard access totals and worker health; None for flat stores.

        One locked call the live obs sampler polls. In-process sharded
        stores report shard count + access balance; the proc-sharded
        plane adds per-worker liveness, queue depth, and a timed ping
        round trip (see ``ProcShardedRecordStore.worker_health``) plus
        the running ``leaked_workers`` count — dead workers surface here
        live, not only in the shutdown report.
        """
        with self._lock:
            accesses = getattr(self.versions, "accesses", None)
            if accesses is None:
                return None
            health: Dict[str, Any] = {
                "n_shards": self.versions.n_shards,
                "accesses": list(accesses),
            }
            worker_health = getattr(self.versions, "worker_health", None)
            if worker_health is not None:
                workers: List[Dict[str, Any]] = worker_health(ping=ping)
                health["n_workers"] = self.versions.n_workers
                health["workers"] = workers
                health["workers_alive"] = sum(1 for w in workers if w["alive"])
                health["workers_dead"] = [
                    w["worker"] for w in workers if not w["alive"]
                ]
                health["leaked_workers"] = self.leaked_workers
            return health

    def collect_garbage(self, flush_promotions: bool = False) -> GCStats:
        """Run one full garbage-collection cycle (§6.3)."""
        return self.gc.collect(flush_promotions=flush_promotions)

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
        # Process-level shard planes own worker processes; stop them and
        # record how many failed to exit cleanly (the leak gate).
        close_storage = getattr(self.versions, "close", None)
        if close_storage is not None:
            leaked = close_storage()
            if leaked:
                self.leaked_workers = int(leaked)

    def __repr__(self) -> str:
        return "<TardisStore site=%s states=%d records=%d>" % (
            self.site,
            len(self.dag),
            self.versions.num_records(),
        )


def _read_states_of(txn: BaseTransaction) -> List[State]:
    if isinstance(txn, MergeTransaction):
        return txn.read_states
    return [txn.read_state]


# Re-exported for convenience so applications can do
# ``from repro.core.store import TardisStore, TOMBSTONE``.
__all__ = [
    "TardisStore",
    "ClientSession",
    "StoreMetrics",
    "TOMBSTONE",
    "StateIdConstraint",
    "TardisError",
]
