"""Merge transactions (§5.1, §6.2).

A merge transaction selects *multiple* read states — one per branch being
reconciled — and commits a single merged state whose parents are all of
them. The application is exposed to the conflicting writes that forked
the datastore and reconciles them atomically, with three helpers:

* ``find_fork_points()`` — where the branches diverged;
* ``find_conflict_writes()`` — which keys hold conflicting values;
* ``get_for_id(key, state_id)`` — the value of a key at any state
  (typically the fork point, to compute three-way merges).

Plain ``get`` works for keys that are single-valued across the merged
branches and raises :class:`~repro.errors.MultipleValuesError` when a key
is genuinely conflicted, steering the application to the explicit API.
"""

from __future__ import annotations

from typing import Any, List, Optional, TYPE_CHECKING

from repro.core.ids import StateId
from repro.core.state_dag import State
from repro.core.transaction import BaseTransaction, TOMBSTONE, _RAISE
from repro.errors import KeyNotFound, MultipleValuesError
from repro.obs import metrics as _met

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.constraints import Constraint
    from repro.core.store import ClientSession, TardisStore


class MergeTransaction(BaseTransaction):
    """A transaction reading from several branches and writing one."""

    def __init__(
        self,
        store: "TardisStore",
        session: "ClientSession",
        read_states: List[State],
        begin_constraint: "Constraint",
    ):
        super().__init__(store, session, begin_constraint)
        if not read_states:
            raise ValueError("merge transaction needs at least one read state")
        self.read_states = list(read_states)
        self.trace.merge_parents = len(read_states)

    @property
    def parents(self) -> List[StateId]:
        """Ids of the branches being merged (the paper's ``t.parents``)."""
        return [s.id for s in self.read_states]

    # -- reads -------------------------------------------------------------

    def get(self, key: Any, default: Any = _RAISE) -> Any:
        """Read ``key`` from the merged view.

        Returns the single visible value when the branches agree (or only
        one wrote the key); raises ``MultipleValuesError`` when the key
        has conflicting maximal versions.
        """
        self._check_active()
        self.read_keys.add(key)
        if key in self.writes:
            value = self.writes[key]
        else:
            candidates = self._store._read_candidates(
                key, self.read_states, self.trace
            )
            if len(candidates) > 1:
                raise MultipleValuesError(key, candidates)
            if not candidates:
                value = TOMBSTONE
            else:
                value = candidates[0][1]
        if value is TOMBSTONE:
            if default is _RAISE:
                raise KeyNotFound(key)
            return default
        return value

    def get_all(self, key: Any) -> List[Any]:
        """All maximal visible values for ``key``, newest id first."""
        self._check_active()
        self.read_keys.add(key)
        candidates = self._store._read_candidates(key, self.read_states, self.trace)
        return [value for _sid, value in candidates if value is not TOMBSTONE]

    def get_for_id(self, key: Any, state_id: StateId, default: Any = _RAISE) -> Any:
        """The value of ``key`` as visible at ``state_id`` (Table 2).

        Typically used with a fork point id to obtain the base value of a
        three-way merge.
        """
        self._check_active()
        self.read_keys.add(key)
        state = self.dag.resolve(state_id)
        hit = self._store._read_at(key, state, self.trace)
        if hit is None or hit[1] is TOMBSTONE:
            if default is _RAISE:
                raise KeyNotFound(key)
            return default
        return hit[1]

    # -- branch structure ----------------------------------------------------

    def find_fork_points(self, state_ids: Optional[List[StateId]] = None) -> List[StateId]:
        """Fork points of the given states (default: this merge's parents).

        Nearest fork first; the paper's examples use ``.first`` — index 0
        here.
        """
        self._check_active()
        if state_ids is None:
            states = self.read_states
        else:
            states = [self.dag.resolve(sid) for sid in state_ids]
        return [s.id for s in self.dag.fork_points_of(states)]

    def find_conflict_writes(self, state_ids: Optional[List[StateId]] = None) -> List[Any]:
        """Keys with conflicting values across the selected branches.

        A key conflicts when it was written on at least two distinct
        branches since their (nearest) fork point (Table 2, §6.2).
        """
        self._check_active()
        if state_ids is None:
            states = self.read_states
        else:
            states = [self.dag.resolve(sid) for sid in state_ids]
        conflicts = self._store._conflict_writes(states)
        m = _met.DEFAULT
        if m.enabled:
            m.observe("tardis_merge_conflict_keys", len(conflicts))
        return conflicts

    # -- commit ---------------------------------------------------------------

    def commit(self, end_constraint: Optional["Constraint"] = None) -> StateId:
        """Atomically commit the merged state as a child of all parents."""
        self._check_active()
        return self._store._commit_merge(self, end_constraint)

    def __repr__(self) -> str:
        return "<MergeTransaction parents=%r status=%s>" % (
            self.parents,
            self.status,
        )
