"""Merge transactions (§5.1, §6.2).

A merge transaction selects *multiple* read states — one per branch being
reconciled — and commits a single merged state whose parents are all of
them. The application is exposed to the conflicting writes that forked
the datastore and reconciles them atomically, with three helpers:

* ``find_fork_points()`` — where the branches diverged;
* ``find_conflict_writes()`` — which keys hold conflicting values;
* ``get_for_id(key, state_id)`` — the value of a key at any state
  (typically the fork point, to compute three-way merges).

Plain ``get`` works for keys that are single-valued across the merged
branches and raises :class:`~repro.errors.MultipleValuesError` when a key
is genuinely conflicted, steering the application to the explicit API.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Optional, TYPE_CHECKING

from repro.core.ids import StateId
from repro.core.state_dag import State
from repro.core.transaction import BaseTransaction, TOMBSTONE, _RAISE
from repro.errors import KeyNotFound, MultipleValuesError
from repro.obs import metrics as _met

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.constraints import Constraint
    from repro.core.state_dag import StateDAG
    from repro.core.store import ClientSession, TardisStore

#: write-set index size cap; a full clear keeps memory bounded when
#: many (state, fork) pairs are queried between GC cycles.
_INDEX_MAX = 1 << 16


class WriteSetIndex:
    """Cumulative write-key summaries for conflict detection (§6.2).

    ``writes_since(head, fork)`` is the union of ``write_keys`` over
    ``states_between(head, fork)`` — what ``find_conflict_writes``
    intersects across branches. The index memoizes the summary per
    ``(state, fork)`` pair with the recurrence

        W(s, f) = s.write_keys ∪ ⋃ { W(p, f) : p ∈ s.parents,
                                      p ≠ f, f ⊆ p }

    so repeated conflict queries against the same fork (long-lived
    branches probed every maintenance tick, merge retries, explicit
    ``find_conflict_writes`` calls) cost one dict lookup per head
    instead of re-walking the branch. ``on_commit`` extends a parent's
    summaries to the new state at commit time, keeping the steady-state
    query O(1) per head. The whole memo is dropped when the DAG's
    destructive generation moves — splice-out merges write keys into
    surviving states and fork retirement rewrites the masks the
    recurrence's descendant checks rely on.
    """

    __slots__ = ("_dag", "_memo", "_forks_of", "_epoch", "hits", "misses")

    def __init__(self, dag: "StateDAG") -> None:
        self._dag = dag
        #: (state_id, fork_id) -> frozenset of write keys since the fork.
        self._memo: dict = {}
        #: state_id -> set of fork ids memoized for it (for on_commit).
        self._forks_of: dict = {}
        self._epoch = dag.destructive_gen
        self.hits = 0
        self.misses = 0

    def _check_epoch(self) -> None:
        if self._epoch != self._dag.destructive_gen or len(self._memo) > _INDEX_MAX:
            self._memo.clear()
            self._forks_of.clear()
            self._epoch = self._dag.destructive_gen

    def __len__(self) -> int:
        return len(self._memo)

    def on_commit(self, state: State) -> None:
        """Extend the parent's summaries to a freshly committed state.

        Only the cheap single-parent top-up is done eagerly (the common
        sequential-branch shape); merge states fall back to the lazy
        recurrence on first query.
        """
        if len(state.parents) != 1:
            return
        self._check_epoch()
        parent = state.parents[0]
        forks = self._forks_of.get(parent.id)
        if not forks:
            return
        memo = self._memo
        write_keys = state.write_keys
        mine = self._forks_of.setdefault(state.id, set())
        for fork_id in forks:
            memo[(state.id, fork_id)] = memo[(parent.id, fork_id)] | write_keys
            mine.add(fork_id)

    def writes_since(self, head: State, fork: State) -> FrozenSet[Any]:
        """Union of write keys over ``states_between(head, fork)``."""
        self._check_epoch()
        dag = self._dag
        if not dag.descendant_check(fork, head):
            return frozenset()
        memo = self._memo
        fork_id = fork.id
        key = (head.id, fork_id)
        cached = memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        forks_of = self._forks_of
        descendant_check = dag.descendant_check
        # Iterative post-order accumulation (a long un-collected branch
        # would overflow the recursion limit).
        stack = [head]
        while stack:
            state = stack[-1]
            if (state.id, fork_id) in memo:
                stack.pop()
                continue
            pending = False
            for parent in state.parents:
                if parent.id == fork_id or not descendant_check(fork, parent):
                    continue
                if (parent.id, fork_id) not in memo:
                    stack.append(parent)
                    pending = True
            if pending:
                continue
            acc = set(state.write_keys)
            for parent in state.parents:
                if parent.id == fork_id or not descendant_check(fork, parent):
                    continue
                acc |= memo[(parent.id, fork_id)]
            memo[(state.id, fork_id)] = frozenset(acc)
            forks_of.setdefault(state.id, set()).add(fork_id)
            stack.pop()
        return memo[key]


class MergeTransaction(BaseTransaction):
    """A transaction reading from several branches and writing one."""

    def __init__(
        self,
        store: "TardisStore",
        session: "ClientSession",
        read_states: List[State],
        begin_constraint: "Constraint",
    ) -> None:
        super().__init__(store, session, begin_constraint)
        if not read_states:
            raise ValueError("merge transaction needs at least one read state")
        self.read_states = list(read_states)
        self.trace.merge_parents = len(read_states)

    @property
    def parents(self) -> List[StateId]:
        """Ids of the branches being merged (the paper's ``t.parents``)."""
        return [s.id for s in self.read_states]

    # -- reads -------------------------------------------------------------

    def get(self, key: Any, default: Any = _RAISE) -> Any:
        """Read ``key`` from the merged view.

        Returns the single visible value when the branches agree (or only
        one wrote the key); raises ``MultipleValuesError`` when the key
        has conflicting maximal versions.
        """
        self._check_active()
        self.read_keys.add(key)
        if key in self.writes:
            value = self.writes[key]
        else:
            candidates = self._store._read_candidates(
                key, self.read_states, self.trace
            )
            if len(candidates) > 1:
                raise MultipleValuesError(key, candidates)
            if not candidates:
                value = TOMBSTONE
            else:
                value = candidates[0][1]
        if value is TOMBSTONE:
            if default is _RAISE:
                raise KeyNotFound(key)
            return default
        return value

    def get_all(self, key: Any) -> List[Any]:
        """All maximal visible values for ``key``, newest id first."""
        self._check_active()
        self.read_keys.add(key)
        candidates = self._store._read_candidates(key, self.read_states, self.trace)
        return [value for _sid, value in candidates if value is not TOMBSTONE]

    def get_for_id(self, key: Any, state_id: StateId, default: Any = _RAISE) -> Any:
        """The value of ``key`` as visible at ``state_id`` (Table 2).

        Typically used with a fork point id to obtain the base value of a
        three-way merge.
        """
        self._check_active()
        self.read_keys.add(key)
        state = self.dag.resolve(state_id)
        hit = self._store._read_at(key, state, self.trace)
        if hit is None or hit[1] is TOMBSTONE:
            if default is _RAISE:
                raise KeyNotFound(key)
            return default
        return hit[1]

    # -- branch structure ----------------------------------------------------

    def find_fork_points(self, state_ids: Optional[List[StateId]] = None) -> List[StateId]:
        """Fork points of the given states (default: this merge's parents).

        Nearest fork first; the paper's examples use ``.first`` — index 0
        here.
        """
        self._check_active()
        if state_ids is None:
            states = self.read_states
        else:
            states = [self.dag.resolve(sid) for sid in state_ids]
        return [s.id for s in self.dag.fork_points_of(states)]

    def find_conflict_writes(self, state_ids: Optional[List[StateId]] = None) -> List[Any]:
        """Keys with conflicting values across the selected branches.

        A key conflicts when it was written on at least two distinct
        branches since their (nearest) fork point (Table 2, §6.2).
        """
        self._check_active()
        if state_ids is None:
            states = self.read_states
        else:
            states = [self.dag.resolve(sid) for sid in state_ids]
        conflicts = self._store._conflict_writes(states)
        m = _met.DEFAULT
        if m.enabled:
            m.observe("tardis_merge_conflict_keys", len(conflicts))
        return conflicts

    # -- commit ---------------------------------------------------------------

    def commit(self, end_constraint: Optional["Constraint"] = None) -> StateId:
        """Atomically commit the merged state as a child of all parents."""
        self._check_active()
        return self._store._commit_merge(self, end_constraint)

    def __repr__(self) -> str:
        return "<MergeTransaction parents=%r status=%s>" % (
            self.parents,
            self.status,
        )
