"""Figure 11: impact of constraint choice on throughput.

Write-heavy workload at the elbow load, five begin/end constraint
combinations (§7.1.4):

* Anc-Ser   — Ancestor begin, Serializability end (branching default);
* Parent-Ser — Parent begin (Git-style private branch);
* Anc-SI    — Ancestor begin, Snapshot Isolation end (branching);
* Anc-SI-NB / Anc-Ser-NB — the non-branching variants.

Paper findings: Ancestor outperforms Parent by ~21% (Parent's read-state
selection searches the full DAG and its extra branches make fork-path
checks and GC more expensive); branching Ser and SI are within ~5% of
each other; the non-branching variants perform poorly — each operation
is cheap but transactions see repeated aborts.
"""

import pytest

from repro.core.constraints import (
    AncestorConstraint,
    NoBranchingConstraint,
    ParentConstraint,
    SerializabilityConstraint,
    SnapshotIsolationConstraint,
)
from repro.sim.adapters import TardisAdapter
from repro.workload import WRITE_HEAVY, YCSBWorkload, run_simulation

from common import ELBOW_CLIENTS, N_KEYS, Report, config, run_once

CONFIGS = [
    ("Anc-Ser", lambda: TardisAdapter(
        begin_constraint=AncestorConstraint(),
        end_constraint=SerializabilityConstraint())),
    ("Parent-Ser", lambda: TardisAdapter(
        begin_constraint=ParentConstraint(),
        end_constraint=SerializabilityConstraint())),
    ("Anc-SI", lambda: TardisAdapter(
        begin_constraint=AncestorConstraint(),
        end_constraint=SnapshotIsolationConstraint())),
    ("Anc-SI-NB", lambda: TardisAdapter(
        begin_constraint=AncestorConstraint(),
        end_constraint=SnapshotIsolationConstraint() & NoBranchingConstraint())),
    ("Anc-Ser-NB", lambda: TardisAdapter(
        begin_constraint=AncestorConstraint(),
        end_constraint=SerializabilityConstraint() & NoBranchingConstraint())),
]


def _measure():
    results = {}
    for name, factory in CONFIGS:
        results[name] = run_simulation(
            factory(),
            YCSBWorkload(mix=WRITE_HEAVY, n_keys=N_KEYS),
            config(n_clients=ELBOW_CLIENTS),
        )
    return results


@pytest.mark.benchmark(group="fig11")
def test_fig11_constraint_choice(benchmark):
    results = run_once(benchmark, _measure)
    report = Report("fig11", "Figure 11: constraint choice (write-heavy, %d clients)" % ELBOW_CLIENTS)
    rows = [
        [
            name,
            "%8.0f" % r.throughput_tps,
            "%6.3f" % r.mean_latency_ms,
            "%6d" % r.aborts,
            "%5d" % r.adapter_stats.get("forks", 0),
        ]
        for name, r in ((n, results[n]) for n, _f in CONFIGS)
    ]
    report.table(
        ["constraints", "tput(txn/s)", "lat(ms)", "aborts", "forks"],
        rows,
        widths=[14, 14, 10, 9, 8],
    )
    report.line()
    report.line(
        "Anc-Ser / Parent-Ser = %.2f (paper: 1.21)    Anc-Ser / Anc-SI = %.2f (paper: within 5%%)"
        % (
            results["Anc-Ser"].throughput_tps / results["Parent-Ser"].throughput_tps,
            results["Anc-Ser"].throughput_tps / results["Anc-SI"].throughput_tps,
        )
    )
    report.config["n_clients"] = ELBOW_CLIENTS
    report.config["mix"] = "write-heavy"
    for name, _f in CONFIGS:
        report.result(name, results[name])
    report.metric(
        "ancestor_over_parent",
        results["Anc-Ser"].throughput_tps / results["Parent-Ser"].throughput_tps,
    )
    report.finish()

    # Ancestor beats Parent.
    assert results["Anc-Ser"].throughput_tps > results["Parent-Ser"].throughput_tps
    # Branching Ser and SI close to each other.
    ser, si = results["Anc-Ser"].throughput_tps, results["Anc-SI"].throughput_tps
    assert abs(ser - si) / ser < 0.25
    # Non-branching variants perform worse and abort.
    for nb in ("Anc-SI-NB", "Anc-Ser-NB"):
        assert results[nb].throughput_tps < min(ser, si)
        assert results[nb].aborts > 0
