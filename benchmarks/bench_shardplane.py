"""bench_shardplane: shard-plane throughput vs worker count.

Measures real wall-clock read/write throughput of the partitioned
storage layer on the Figure 9(a) mix (Read-Heavy, uniform keys): the
in-process :class:`ShardedRecordStore` versus the process-parallel
``proc-sharded`` plane at 1/2/4/8 workers, all behind the same
``TardisStore`` transaction API.

The workload is built to exercise the part of the read path the worker
processes actually parallelize: every key carries ``--history`` stacked
versions, read-only transactions pin an *old* read state
(``StateIdConstraint``), so each read is a version walk that skips the
whole newer history, and the six reads of a read-only transaction go
through ``Transaction.get_many`` — one scatter/gather batch across the
shard workers instead of six sequential round trips. Read caches are
disabled on both arms so every read pays its walk.

Results go to ``BENCH_shardplane.json``: per-arm read/write key
throughput plus ``speedup_vs_inproc`` ratios. ``cpu_count`` and
``cpu_affinity`` are recorded alongside because the ratios only show
parallel speedup when the container actually has cores to run the
workers on; on a single-core host the proc plane pays its IPC overhead
with nothing to overlap against.

Usage::

    python benchmarks/bench_shardplane.py             # full sweep
    python benchmarks/bench_shardplane.py --smoke     # CI-sized
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
SRC_DIR = os.path.join(REPO_ROOT, "src")
for _path in (BENCH_DIR, SRC_DIR):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from common import write_bench_json  # noqa: E402
from repro.core.constraints import StateIdConstraint  # noqa: E402
from repro.core.store import TardisStore  # noqa: E402
from repro.workload.mixes import READ_HEAVY, YCSBWorkload  # noqa: E402

N_SHARDS = 8
WORKER_SWEEP = [1, 2, 4, 8]


def _build_store(arm: str, workers: int) -> TardisStore:
    if arm == "inproc":
        return TardisStore(
            "bench", engine="sharded", shards=N_SHARDS, read_cache=False
        )
    return TardisStore(
        "bench",
        engine="proc-sharded",
        shards=N_SHARDS,
        shard_workers=workers,
        read_cache=False,
    )


def _preload_and_stack(store: TardisStore, n_keys: int, history: int):
    """Load the key space and pile ``history`` versions on every key.

    Returns the state id of the *preload* commit: a read pinned there
    must walk past the whole stacked history for every key it touches.
    """
    keys = ["key%06d" % i for i in range(n_keys)]
    txn = store.begin(session=store.session("loader"))
    for key in keys:
        txn.put(key, 0)
    old_id = txn.commit()
    for round_no in range(1, history + 1):
        txn = store.begin(session=store.session("loader"))
        for key in keys:
            txn.put(key, round_no)
        txn.commit()
    return old_id


def _run_arm(arm: str, workers: int, args) -> dict:
    store = _build_store(arm, workers)
    label = arm if arm == "inproc" else "proc-%dw" % workers
    try:
        old_id = _preload_and_stack(store, args.keys, args.history)
        workload = YCSBWorkload(
            mix=READ_HEAVY, n_keys=args.keys, pattern="uniform"
        )
        rng = random.Random(args.seed)
        session = store.session("bench-client")
        specs = [workload.next_txn(rng) for _ in range(args.txns)]

        reads = writes = commits = 0
        wall_start = time.perf_counter()
        for spec in specs:
            if spec.read_only:
                # Deep-walk reads: pin the pre-history state and batch
                # the whole read set into one scatter/gather.
                txn = store.begin(
                    begin_constraint=StateIdConstraint([old_id]),
                    session=session,
                    read_only=True,
                )
                keys = [op[1] for op in spec.ops]
                txn.get_many(keys, default=None)
                txn.commit()
                reads += len(keys)
            else:
                txn = store.begin(session=session)
                read_keys = [op[1] for op in spec.ops if op[0] == "r"]
                if read_keys:
                    txn.get_many(read_keys, default=None)
                for op in spec.ops:
                    if op[0] == "w":
                        txn.put(op[1], op[2])
                        writes += 1
                txn.commit()
                reads += len(read_keys)
            commits += 1
        wall_s = time.perf_counter() - wall_start
    finally:
        store.close()
    result = {
        "arm": label,
        "workers": workers if arm != "inproc" else 0,
        "wall_s": wall_s,
        "txns": commits,
        "txn_per_s": commits / wall_s if wall_s else 0.0,
        "read_keys_per_s": reads / wall_s if wall_s else 0.0,
        "write_keys_per_s": writes / wall_s if wall_s else 0.0,
        "reads": reads,
        "writes": writes,
        "leaked_workers": store.leaked_workers,
    }
    print(
        "bench_shardplane: %-8s %6.2fs wall, %7.0f reads/s, %6.0f writes/s"
        % (label, wall_s, result["read_keys_per_s"], result["write_keys_per_s"])
    )
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keys", type=int, default=512)
    parser.add_argument(
        "--history", type=int, default=40,
        help="stacked versions per key (walk depth for pinned reads)",
    )
    parser.add_argument("--txns", type=int, default=400, help="txns per arm")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI-sized run; also gates on commits>0 and zero worker leaks",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.txns = min(args.txns, 60)
        args.history = min(args.history, 10)
        args.keys = min(args.keys, 128)

    try:
        affinity = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        affinity = os.cpu_count() or 1

    arms = [_run_arm("inproc", 0, args)]
    arms += [_run_arm("proc", n, args) for n in WORKER_SWEEP]

    base = arms[0]["read_keys_per_s"] or 1.0
    speedups = {
        arm["arm"]: arm["read_keys_per_s"] / base for arm in arms[1:]
    }
    metrics = {
        "arms": arms,
        "speedup_vs_inproc": speedups,
        "speedup_4_workers": speedups.get("proc-4w", 0.0),
        "cpu_count": os.cpu_count(),
        "cpu_affinity": affinity,
    }
    config = {
        "mix": "fig9a-read-heavy",
        "n_shards": N_SHARDS,
        "worker_sweep": WORKER_SWEEP,
        "keys": args.keys,
        "history": args.history,
        "txns_per_arm": args.txns,
        "seed": args.seed,
        "smoke": args.smoke,
    }
    path = write_bench_json("shardplane", metrics, config)
    print(
        "bench_shardplane: 4-worker speedup vs in-process = %.2fx "
        "(on %d usable core(s))"
        % (metrics["speedup_4_workers"], affinity)
    )
    print("bench_shardplane: wrote %s" % path)

    if args.smoke:
        problems = []
        if any(arm["txns"] <= 0 for arm in arms):
            problems.append("an arm committed no transactions")
        if any(arm["leaked_workers"] for arm in arms):
            problems.append("leaked shard workers")
        if problems:
            print("bench_shardplane SMOKE FAILED: " + "; ".join(problems))
            return 1
        print("bench_shardplane smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
