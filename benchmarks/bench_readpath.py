"""Read-path caching microbenchmark: generation-stamped caches vs cold.

The read path dominates TARDiS's paper workloads (Fig 9a is 90% reads),
and on a branched store every cold read pays a begin BFS over the leaf
set plus a newest-first version walk that scans *other* branches'
versions before finding its own. The generation-stamped caches
(docs/internals.md §10) collapse both to O(1) revalidations while the
DAG generation stands still.

This benchmark builds a store with ``N_BRANCHES`` live branches, each
having committed ``WRITES_PER_BRANCH`` rounds over a shared key set —
the divergence pattern that makes cold visibility walks expensive —
then times a read-only session pinned to one branch repeatedly
beginning and reading every key. Two arms, identical structure:

* **cached** — the default store (``read_cache=True``);
* **cold** — ``read_cache=False``: every begin re-runs the BFS, every
  read re-walks the version list, every conflict query re-walks
  ``states_between``.

Both arms must return bit-identical values (asserted), so the headline
``speedup_stable`` (cold time / cached time, floor ≥3×) is a pure
caching win, not a behaviour change. A second scenario keeps writing
in the background so every generation bump invalidates: the cached arm
must stay within noise of the cold one (``invalidated_ratio``), which
bounds the revalidation overhead. Results land in
``BENCH_readpath.json``; CI asserts the floor.
"""

import time

from repro import TardisStore

from common import Report

N_BRANCHES = 12
WRITES_PER_BRANCH = 10
KEYS = ["key%d" % i for i in range(8)]
ROUNDS = 300
#: acceptance floor: cached stable-branch reads must beat cold ones by
#: this factor (ISSUE 4 acceptance criterion, asserted in CI).
MIN_SPEEDUP_STABLE = 3.0


def build_store(read_cache: bool) -> TardisStore:
    """A store with ``N_BRANCHES`` divergent branches over shared keys."""
    store = TardisStore("bench", read_cache=read_cache)
    sessions = [store.session("s%d" % i) for i in range(N_BRANCHES)]
    with store.begin(session=sessions[0]) as t:
        t.put("base", 0)
        for key in KEYS:
            t.put(key, ("init", key))
    # Open one conflicting transaction per session before committing any:
    # every read state is the same leaf, every commit after the first
    # read-write conflicts on ``base`` and forks its own branch.
    txns = [store.begin(session=s) for s in sessions]
    for i, txn in enumerate(txns):
        txn.put("base", txn.get("base") + i + 1)
    for txn in txns:
        txn.commit()
    # Deepen every branch over the shared keys so the newest-first
    # version walk on any one branch scans the others' versions first.
    for round_no in range(WRITES_PER_BRANCH):
        for i, sess in enumerate(sessions):
            txn = store.begin(session=sess)
            for key in KEYS:
                txn.put(key, (i, round_no, key))
            txn.commit()
    return store


def _read_loop(store: TardisStore, rounds: int):
    """Time ``rounds`` of (begin, read every key, abort) on branch 0."""
    sess = store.session("s0")
    values = []
    start = time.perf_counter()
    for _ in range(rounds):
        txn = store.begin(session=sess)
        for key in KEYS:
            values.append(txn.get(key))
        txn.abort()
    elapsed = time.perf_counter() - start
    return elapsed, values


def _read_write_loop(store: TardisStore, rounds: int):
    """Reads with an interleaved writer: every round moves the generation."""
    reader = store.session("s0")
    writer = store.session("s1")
    values = []
    start = time.perf_counter()
    for round_no in range(rounds):
        txn = store.begin(session=writer)
        txn.put(KEYS[round_no % len(KEYS)], ("w", round_no))
        txn.commit()
        txn = store.begin(session=reader)
        for key in KEYS:
            values.append(txn.get(key))
        txn.abort()
    elapsed = time.perf_counter() - start
    return elapsed, values


def run_bench() -> dict:
    report = Report(
        "readpath",
        "Read-path caching: generation-stamped caches vs cold walks",
        config={
            "n_branches": N_BRANCHES,
            "writes_per_branch": WRITES_PER_BRANCH,
            "n_keys": len(KEYS),
            "rounds": ROUNDS,
        },
    )
    reads = ROUNDS * len(KEYS)

    # -- stable branch: the cache's home turf ------------------------------
    cached_s = cold_s = float("inf")
    for _ in range(3):  # interleaved min-of-3: least noise-contaminated
        cached = build_store(read_cache=True)
        cold = build_store(read_cache=False)
        t_cached, v_cached = _read_loop(cached, ROUNDS)
        t_cold, v_cold = _read_loop(cold, ROUNDS)
        assert v_cached == v_cold, "cached arm diverged from cold arm"
        cached_s, cold_s = min(cached_s, t_cached), min(cold_s, t_cold)
    stats = cached.cache_stats()
    speedup = cold_s / cached_s if cached_s else float("inf")
    report.metric("cached_us_per_read", 1e6 * cached_s / reads)
    report.metric("cold_us_per_read", 1e6 * cold_s / reads)
    report.metric("speedup_stable", speedup)
    report.metric("begin_cache_hits", stats["begin_hits"])
    report.metric("vis_cache_hits", stats["vis_hits"])

    # -- churning branch: bounds the revalidation overhead -----------------
    cached_c = cold_c = float("inf")
    for _ in range(3):
        cached = build_store(read_cache=True)
        cold = build_store(read_cache=False)
        t_cached, v_cached = _read_write_loop(cached, ROUNDS // 3)
        t_cold, v_cold = _read_write_loop(cold, ROUNDS // 3)
        assert v_cached == v_cold, "cached arm diverged from cold arm"
        cached_c, cold_c = min(cached_c, t_cached), min(cold_c, t_cold)
    churn_ratio = cold_c / cached_c if cached_c else float("inf")
    report.metric("churn_speedup", churn_ratio)

    report.table(
        ["scenario", "cold us/read", "cached us/read", "speedup"],
        [
            [
                "stable branch",
                "%.2f" % (1e6 * cold_s / reads),
                "%.2f" % (1e6 * cached_s / reads),
                "%.1fx" % speedup,
            ],
            [
                "interleaved writer",
                "%.2f" % (1e6 * cold_c * 3 / reads),
                "%.2f" % (1e6 * cached_c * 3 / reads),
                "%.2fx" % churn_ratio,
            ],
        ],
        widths=[20, 14, 16, 10],
    )
    report.finish()
    return report.metrics


def test_readpath_cache_speedup():
    """Pytest wrapper: the ISSUE 4 acceptance floor on the stable branch."""
    metrics = run_bench()
    assert metrics["speedup_stable"] >= MIN_SPEEDUP_STABLE, metrics
    # Caching must never *lose* under churn (revalidation is O(1)).
    assert metrics["churn_speedup"] >= 0.8, metrics


if __name__ == "__main__":
    run_bench()
