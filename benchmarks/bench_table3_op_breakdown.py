"""Table 3: per-operation latency breakdown (×10⁻² ms).

Mean simulated cost of begin / get / put / commit for committed
transactions (waits included, retries excluded — the paper's
accounting), for TARDiS (branch-on-conflict), BDB, and OCC under
RH-uniform, WH-uniform, and WH-Zipfian.

Paper shapes: all systems' puts ≈ 1×10⁻² ms uncontended; BDB's gets and
puts inflate ~2x under write-heavy contention and ~10x under Zipfian
(lock waits); TARDiS's reads grow only modestly despite the branching
(fork-path checks stay cheap); OCC's commit carries the validation.
"""

import pytest

from repro.workload import READ_HEAVY, WRITE_HEAVY, YCSBWorkload, run_simulation

from common import N_KEYS, Report, SYSTEMS, config, run_once

WORKLOADS = [
    ("RH-Uniform", READ_HEAVY, "uniform"),
    ("WH-Uniform", WRITE_HEAVY, "uniform"),
    ("WH-Zipfian", WRITE_HEAVY, "zipfian"),
]


def _measure():
    rows = []
    results = {}
    for wl_name, mix, pattern in WORKLOADS:
        for sys_name, factory in SYSTEMS:
            r = run_simulation(
                factory(),
                YCSBWorkload(mix=mix, n_keys=N_KEYS, pattern=pattern),
                config(),
            )
            b = r.op_breakdown_ms
            results[(wl_name, sys_name)] = b
            rows.append(
                [
                    wl_name,
                    sys_name,
                    "%5.2f" % (b["begin"] * 100),
                    "%5.2f" % (b["get"] * 100),
                    "%5.2f" % (b["put"] * 100),
                    "%5.2f" % (b["commit"] * 100),
                ]
            )
    return rows, results


@pytest.mark.benchmark(group="table3")
def test_table3_op_breakdown(benchmark):
    rows, results = run_once(benchmark, _measure)
    report = Report(
        "table3", "Table 3: per-operation latency breakdown (x 10^-2 ms)"
    )
    report.table(
        ["Workload", "System", "Begin", "Get", "Put", "Commit"],
        rows,
        widths=[13, 9, 8, 8, 8, 8],
    )
    report.line()
    bdb_get_rh = results[("RH-Uniform", "BDB")]["get"]
    bdb_get_zipf = results[("WH-Zipfian", "BDB")]["get"]
    tardis_get_rh = results[("RH-Uniform", "TARDiS")]["get"]
    tardis_get_zipf = results[("WH-Zipfian", "TARDiS")]["get"]
    report.line(
        "BDB get inflation RH->WH-zipf: %.1fx (paper: ~10-20x, lock waits)"
        % (bdb_get_zipf / bdb_get_rh)
    )
    report.line(
        "TARDiS get inflation RH->WH-zipf: %.1fx (paper: mild, fork paths)"
        % (tardis_get_zipf / tardis_get_rh)
    )
    for key, breakdown in results.items():
        report.metric("%s_%s_op_ms" % key, dict(breakdown))
    report.metric("bdb_get_inflation", bdb_get_zipf / bdb_get_rh)
    report.metric("tardis_get_inflation", tardis_get_zipf / tardis_get_rh)
    report.finish()
    # Shape assertions.
    assert bdb_get_zipf / bdb_get_rh > 2.5  # BDB reads wait behind hot locks
    assert tardis_get_zipf / tardis_get_rh < bdb_get_zipf / bdb_get_rh
    # Uncontended puts are ~0.01 ms for TARDiS and BDB alike.
    assert 0.005 < results[("RH-Uniform", "TARDiS")]["put"] < 0.02
    assert 0.005 < results[("RH-Uniform", "BDB")]["put"] < 0.02
    # OCC pays at commit (validation), not during execution.
    occ = results[("WH-Uniform", "OCC")]
    assert occ["commit"] > occ["get"]
