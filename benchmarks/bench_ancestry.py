"""Ancestry-encoding microbenchmark: frozenset vs bitmask subset test.

The whole premise of fork paths (§6.1.3, Figure 7) is that the per-read
ancestry check is cheap. This benchmark measures exactly that check at
fork-path sizes 1, 8, and 64 in both representations:

* **set** — the original ``ForkPath.issubset`` (a per-probe
  ``frozenset`` ``<=`` comparison, with its hashing and allocation);
* **bitmask** — the interned-ancestry encoding the DAG now uses
  (``x_mask & y_mask == x_mask`` on plain ints).

Each size times the same mixed pool of (subset, non-subset) pairs so
branch prediction cannot trivialize either arm. The headline metric is
``speedup_<size>`` (set time / bitmask time); the acceptance floor is
3× at size 64, asserted by the pytest wrapper and the CI smoke step.
Results land in ``BENCH_ancestry.json``.
"""

import random
import time

from repro.core.ancestry import AncestryIndex
from repro.core.fork_path import ForkPath, ForkPoint
from repro.core.ids import StateId

from common import Report

PATH_SIZES = [1, 8, 64]
N_PAIRS = 200
ROUNDS = 200
#: acceptance floor: bitmask must beat frozenset by this factor at the
#: largest path size (ISSUE 2 acceptance criterion).
MIN_SPEEDUP_AT_64 = 3.0


def _make_pairs(size: int, rng: random.Random):
    """Build (x, y) fork-path pairs, roughly half true subsets.

    Points are drawn from a universe twice the path size, so non-subset
    pairs still overlap heavily — the realistic (and for the set arm,
    expensive) case of close siblings sharing most of their history.
    """
    index = AncestryIndex()
    universe = [
        ForkPoint(StateId(i + 1, "A"), b) for i in range(size * 2) for b in (0, 1)
    ]
    pairs = []
    for i in range(N_PAIRS):
        y_points = rng.sample(universe, min(size, len(universe)))
        if i % 2 == 0 and size > 1:
            x_points = rng.sample(y_points, max(1, size // 2))  # subset
        else:
            x_points = rng.sample(universe, min(size, len(universe)))
        x_set, y_set = ForkPath(x_points), ForkPath(y_points)
        x_mask, y_mask = index.mask_of(x_points), index.mask_of(y_points)
        pairs.append((x_set, y_set, x_mask, y_mask))
    return pairs


def _time_set(pairs) -> float:
    start = time.perf_counter()
    acc = 0
    for _ in range(ROUNDS):
        for x_set, y_set, _xm, _ym in pairs:
            if x_set.issubset(y_set):
                acc += 1
    elapsed = time.perf_counter() - start
    assert acc >= 0
    return elapsed


def _time_mask(pairs) -> float:
    start = time.perf_counter()
    acc = 0
    for _ in range(ROUNDS):
        for _xs, _ys, x_mask, y_mask in pairs:
            if x_mask & y_mask == x_mask:
                acc += 1
    elapsed = time.perf_counter() - start
    assert acc >= 0
    return elapsed


def run_bench() -> dict:
    rng = random.Random(42)
    report = Report(
        "ancestry",
        "Ancestry encoding: frozenset vs bitmask descendant_check",
        config={
            "path_sizes": PATH_SIZES,
            "n_pairs": N_PAIRS,
            "rounds": ROUNDS,
        },
    )
    checks = N_PAIRS * ROUNDS
    rows = []
    for size in PATH_SIZES:
        pairs = _make_pairs(size, rng)
        # Interleave arms and keep minima: least noise-contaminated.
        set_s = min(_time_set(pairs) for _ in range(3))
        mask_s = min(_time_mask(pairs) for _ in range(3))
        # Sanity: both representations agree on every pair.
        for x_set, y_set, x_mask, y_mask in pairs:
            assert x_set.issubset(y_set) == (x_mask & y_mask == x_mask)
        speedup = set_s / mask_s if mask_s else float("inf")
        report.metric("set_us_%d" % size, 1e6 * set_s / checks)
        report.metric("mask_us_%d" % size, 1e6 * mask_s / checks)
        report.metric("speedup_%d" % size, speedup)
        rows.append(
            [
                size,
                "%.4f" % (1e6 * set_s / checks),
                "%.4f" % (1e6 * mask_s / checks),
                "%.1fx" % speedup,
            ]
        )
    report.table(["size", "set us/check", "mask us/check", "speedup"], rows)
    report.finish()
    return report.metrics


def test_bitmask_speedup():
    """Pytest wrapper: the ISSUE 2 acceptance floor at path size 64."""
    metrics = run_bench()
    assert metrics["speedup_64"] >= MIN_SPEEDUP_AT_64, metrics


if __name__ == "__main__":
    run_bench()
