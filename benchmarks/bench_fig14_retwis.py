"""Figure 14(c) and the Retwis columns of 14(d): Retwis on three systems.

Three workloads (§7.2.2): read-only (100% timeline reads), read-heavy
(85% reads / 5% follows / 10% posts), post-heavy (65/5/30). Posting
pushes the post id onto every follower's timeline, so popular users make
posts contend with timeline reads.

Paper findings: branching does not help the read-only workload but
substantially softens the contention blow in the other two —
readOwnTimeline throughput collapses under OCC (posts abort it) and BDB
(writers block readers), while TARDiS branches and merges
asynchronously, keeping goodput near 0.96 where BDB and OCC waste much
of their time.
"""

import pytest

from repro.apps.retwis import (
    POST_HEAVY,
    READ_HEAVY,
    READ_ONLY,
    RetwisWorkload,
    retwis_merge_resolver,
)
from repro.sim.adapters import OCCAdapter, TardisAdapter, TwoPLAdapter
from repro.workload import run_simulation

from common import Report, config, run_once

MIXES = [READ_ONLY, READ_HEAVY, POST_HEAVY]

SYSTEMS = [
    ("TARDiS", lambda: TardisAdapter(branching=True, merge_resolver=retwis_merge_resolver)),
    ("BDB", TwoPLAdapter),
    ("OCC", OCCAdapter),
]


def _measure():
    results = {}
    for mix in MIXES:
        for name, factory in SYSTEMS:
            results[(mix, name)] = run_simulation(
                factory(),
                RetwisWorkload(mix=mix, n_users=100, follows_per_user=10),
                config(n_clients=16, maintenance_interval_ms=5),
            )
    return results


@pytest.mark.benchmark(group="fig14")
def test_fig14c_retwis_throughput(benchmark):
    results = run_once(benchmark, _measure)
    report = Report("fig14c", "Figure 14(c): Retwis throughput (txn/s)")
    rows = []
    for mix in MIXES:
        row = [mix]
        for name, _f in SYSTEMS:
            row.append("%8.0f" % results[(mix, name)].throughput_tps)
        rows.append(row)
    report.table(["workload", "TARDiS", "BDB", "OCC"], rows, widths=[13, 11, 11, 11])
    report.line()
    ph = {name: results[(POST_HEAVY, name)].throughput_tps for name, _f in SYSTEMS}
    report.line(
        "post-heavy: TARDiS/BDB = %.2fx  TARDiS/OCC = %.2fx (paper: ~3x over both)"
        % (ph["TARDiS"] / ph["BDB"], ph["TARDiS"] / ph["OCC"])
    )

    report.line()
    report.line("Figure 14(d), Retwis columns: useful work fraction")
    goodput_rows = []
    for mix in (READ_HEAVY, POST_HEAVY):
        row = ["Retwis-" + ("RH" if mix == READ_HEAVY else "PH")]
        for name, _f in SYSTEMS:
            row.append("%.2f" % results[(mix, name)].goodput)
        goodput_rows.append(row)
    report.table(["workload", "TARDiS", "BDB", "OCC"], goodput_rows, widths=[13, 11, 11, 11])
    for mix in MIXES:
        for name, _f in SYSTEMS:
            r = results[(mix, name)]
            report.metric(
                "%s_%s" % (mix, name),
                {"throughput_tps": r.throughput_tps, "goodput": r.goodput},
            )
    report.result("post_heavy_tardis", results[(POST_HEAVY, "TARDiS")])
    report.finish()

    # Read-only: branching does not help (within noise of BDB).
    ro = {name: results[(READ_ONLY, name)].throughput_tps for name, _f in SYSTEMS}
    assert ro["TARDiS"] < 1.2 * ro["BDB"]
    # Contended mixes: TARDiS on top.
    for mix in (READ_HEAVY, POST_HEAVY):
        by = {name: results[(mix, name)].throughput_tps for name, _f in SYSTEMS}
        assert by["TARDiS"] > by["BDB"], mix
        assert by["TARDiS"] > by["OCC"], mix
    # Goodput: TARDiS maintains a much higher fraction of useful work.
    for mix in (READ_HEAVY, POST_HEAVY):
        g = {name: results[(mix, name)].goodput for name, _f in SYSTEMS}
        assert g["TARDiS"] > 0.85
        assert g["TARDiS"] > g["BDB"]
        assert g["TARDiS"] > g["OCC"]
