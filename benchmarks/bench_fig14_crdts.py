"""Figure 14(a,b) and the counter column of 14(d): CRDTs two ways.

(a) Lines of code per CRDT type, TARDiS vs the classic sequential-store
    implementation (paper: TARDiS cuts LoC roughly in half).
(b) Throughput of a 90%-read / 10%-write stream over shared CRDT
    objects (paper: four to eight times faster on TARDiS — single-field
    operations, no serialization, batched merges).
(d) Fraction of useful work for the counter (paper: 0.96 on TARDiS,
    roughly half wasted on the sequential store).
"""

import inspect

import pytest

from repro.crdt import (
    SeqLWWRegister,
    SeqMVRegister,
    SeqOpCounter,
    SeqORSet,
    SeqPNCounter,
    TardisCounter,
    TardisLWWRegister,
    TardisMVRegister,
    TardisORSet,
)
from repro.crdt.vector_clock import VectorClock
from repro.crdt.workloads import CRDT_KINDS, CrdtWorkload
from repro.sim.adapters import TardisAdapter, TwoPLAdapter
from repro.workload import run_simulation

from common import Report, config, run_once

PAIRS = {
    "Op-C": (TardisCounter, SeqOpCounter),
    "PN-C": (TardisCounter, SeqPNCounter),
    "LWW": (TardisLWWRegister, SeqLWWRegister),
    "MV": (TardisMVRegister, SeqMVRegister),
    "Set": (TardisORSet, SeqORSet),
}


def loc_of(*objects) -> int:
    """Non-blank, non-comment source lines (docstrings excluded)."""
    total = 0
    for obj in objects:
        in_doc = False
        for line in inspect.getsource(obj).splitlines():
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith('"""') or stripped.startswith("'''"):
                if not (in_doc or stripped.endswith(('"""', "'''")) and len(stripped) > 3):
                    in_doc = True
                elif in_doc:
                    in_doc = False
                if stripped.count('"""') == 2 or stripped.count("'''") == 2:
                    in_doc = False
                continue
            if in_doc:
                continue
            total += 1
    return total


def _loc_table():
    rows = {}
    for kind, (tardis_cls, seq_cls) in PAIRS.items():
        seq_extra = (VectorClock,) if kind == "MV" else ()
        rows[kind] = (loc_of(tardis_cls), loc_of(seq_cls, *seq_extra))
    return rows


REMOTE_RATIO = 0.15


def _throughput_table():
    rows = {}
    for kind in CRDT_KINDS:
        t = run_simulation(
            TardisAdapter(branching=True),
            CrdtWorkload(kind, "tardis"),
            config(n_clients=16, maintenance_interval_ms=2),
        )
        s = run_simulation(
            TwoPLAdapter(),
            CrdtWorkload(kind, "seq", remote_ratio=REMOTE_RATIO),
            config(n_clients=16),
        )
        rows[kind] = (t, s)
    return rows


def _seq_local(result) -> float:
    """Local-operation throughput: remote-merge applications are
    replication overhead, not application operations."""
    return result.throughput_tps * (1 - REMOTE_RATIO)


@pytest.mark.benchmark(group="fig14")
def test_fig14a_crdt_lines_of_code(benchmark):
    rows = run_once(benchmark, _loc_table)
    report = Report("fig14a", "Figure 14(a): CRDT implementation size (LoC)")
    table = [
        [kind, "%4d" % t, "%4d" % s, "%.2f" % (s / t)]
        for kind, (t, s) in rows.items()
    ]
    report.table(["type", "TARDiS", "Sequential", "ratio"], table, widths=[8, 9, 12, 8])
    report.line()
    mean_ratio = sum(s / t for t, s in rows.values()) / len(rows)
    total_ratio = sum(s for _t, s in rows.values()) / sum(t for t, _s in rows.values())
    report.line(
        "LoC ratio sequential/TARDiS: mean %.2f, total %.2f (paper: ~2x;"
        % (mean_ratio, total_ratio)
    )
    report.line("the savings concentrate where causality must be tracked"
                " explicitly: counters and the MV register)")
    for kind, (t, s) in rows.items():
        report.metric("loc_%s" % kind, {"tardis": t, "sequential": s})
    report.metric("loc_ratio_mean", mean_ratio)
    report.metric("loc_ratio_total", total_ratio)
    report.finish()
    # The TARDiS implementations are substantially smaller in aggregate;
    # the biggest wins are the types that otherwise need vectors.
    assert mean_ratio > 1.3
    assert total_ratio > 1.2
    for kind in ("Op-C", "PN-C", "MV"):
        t, s = rows[kind]
        assert s > t, kind


@pytest.mark.benchmark(group="fig14")
def test_fig14b_crdt_throughput(benchmark):
    rows = run_once(benchmark, _throughput_table)
    report = Report(
        "fig14b", "Figure 14(b): CRDT throughput, 90/10 read/write (txn/s)"
    )
    table = []
    for kind, (t, s) in rows.items():
        table.append(
            [
                kind,
                "%8.0f" % t.throughput_tps,
                "%8.0f" % _seq_local(s),
                "%.2fx" % (t.throughput_tps / _seq_local(s)),
                "%.2f / %.2f" % (t.goodput, s.goodput),
            ]
        )
    report.table(
        ["type", "TARDiS", "Sequential", "speedup", "goodput T/S"],
        table,
        widths=[8, 11, 12, 10, 14],
    )
    report.line()
    report.line("(sequential column = local ops/s: each remote operation")
    report.line(" costs it a full-state merge; TARDiS batches merges)")
    for kind, (t, s) in rows.items():
        report.metric(
            "tput_%s" % kind,
            {
                "tardis_tps": t.throughput_tps,
                "sequential_local_tps": _seq_local(s),
                "speedup": t.throughput_tps / _seq_local(s),
            },
        )
    report.finish()
    for kind, (t, s) in rows.items():
        assert t.throughput_tps > 2.0 * _seq_local(s), kind
    # Counters see the largest gains (vector ops vs plain integer).
    counter_speedup = rows["PN-C"][0].throughput_tps / _seq_local(rows["PN-C"][1])
    assert counter_speedup > 3.5


@pytest.mark.benchmark(group="fig14")
def test_fig14d_counter_goodput(benchmark):
    rows = run_once(
        benchmark,
        lambda: {
            "tardis": run_simulation(
                TardisAdapter(branching=True),
                CrdtWorkload("PN-C", "tardis"),
                config(n_clients=16, maintenance_interval_ms=2),
            ),
            "seq": run_simulation(
                TwoPLAdapter(),
                CrdtWorkload("PN-C", "seq", remote_ratio=REMOTE_RATIO),
                config(n_clients=16),
            ),
        },
    )
    report = Report("fig14d_counter", "Figure 14(d), counter column: useful work")
    report.table(
        ["system", "goodput"],
        [
            ["TARDiS", "%.2f" % rows["tardis"].goodput],
            ["Sequential", "%.2f" % rows["seq"].goodput],
        ],
        widths=[12, 10],
    )
    report.line()
    report.line("(paper: TARDiS 0.96; BDB/OCC waste almost half the time)")
    report.result("tardis", rows["tardis"])
    report.result("seq", rows["seq"])
    report.finish()
    assert rows["tardis"].goodput > 0.9
    assert rows["seq"].goodput < rows["tardis"].goodput
