"""bench_net: real wall-clock throughput/latency against a live server.

Every other benchmark in this directory reports *simulated* tps from the
discrete-event cost model. This one measures reality: it starts (or
connects to) a ``tardis serve`` process, fans out ``--clients``
OS processes each holding one TCP connection/session, and drives a
read/write/merge mix through the wire protocol, timing every operation
end-to-end (client-side, including framing and the network round trip).

Results go to ``BENCH_net.json`` (same schema as the simulated
figures, so the two are directly comparable side by side) with:

* ``throughput_tps`` — committed client operations per wall-clock second,
* ``p50/p95/p99_latency_ms`` — client-observed per-op latency,
* ``commits/aborts/merges/errors`` — outcome counters,
* ``leaked_sessions`` — sessions still open at the server after every
  client disconnected (must be 0; the CI smoke job asserts it),
* the server's own ``TARDIS_SERVE_REPORT`` when this script spawned it.

Usage::

    python benchmarks/bench_net.py            # 32 clients, full run
    python benchmarks/bench_net.py --smoke    # CI: 32 clients, short
    python benchmarks/bench_net.py --smoke --shard-workers 2   # shard plane
    python benchmarks/bench_net.py --connect 127.0.0.1:7145

``--smoke`` exits nonzero unless commits > 0, leaked_sessions == 0 and
(when the spawned server ran shard workers) leaked_workers == 0.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import random
import signal
import subprocess
import sys
import tempfile
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
SRC_DIR = os.path.join(REPO_ROOT, "src")
for _path in (BENCH_DIR, SRC_DIR):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from common import write_bench_json  # noqa: E402
from repro.client import TardisClient  # noqa: E402
from repro.errors import NetworkError, TardisError, TransactionAborted  # noqa: E402


def _worker(
    worker_id: int,
    host: str,
    port: int,
    ops: int,
    n_keys: int,
    read_fraction: float,
    merge_every: int,
    seed: int,
    queue,
) -> None:
    """One client process: a read/write/merge loop with per-op timing."""
    rng = random.Random(seed * 1000003 + worker_id)
    out = {
        "worker": worker_id,
        "ok": False,
        "commits": 0,
        "aborts": 0,
        "merges": 0,
        "errors": 0,
        "latencies_ms": [],
    }
    try:
        client = TardisClient(host=host, port=port, session="bench-%d" % worker_id)
    except (OSError, TardisError) as exc:
        out["error"] = repr(exc)
        queue.put(out)
        return
    keys = ["key-%03d" % i for i in range(n_keys)]
    latencies = out["latencies_ms"]
    for i in range(ops):
        key = keys[rng.randrange(n_keys)]
        start = time.perf_counter()
        try:
            if merge_every and i and i % merge_every == 0:
                merge = client.merge()
                for conflict in merge.conflicts:
                    numeric = [
                        v for v in conflict["values"] if isinstance(v, (int, float))
                    ]
                    merge.put(conflict["key"], max(numeric) if numeric else None)
                merge.commit()
                out["merges"] += 1
                out["commits"] += 1
            elif rng.random() < read_fraction:
                client.get(key)
                out["commits"] += 1
            else:
                txn = client.begin()
                value = txn.get(key, default=0)
                txn.put(key, (value if isinstance(value, int) else 0) + 1)
                txn.commit()
                out["commits"] += 1
        except TransactionAborted:
            out["aborts"] += 1
        except (NetworkError, TardisError):
            out["errors"] += 1
        latencies.append((time.perf_counter() - start) * 1000.0)
    try:
        client.close()
    except (OSError, TardisError):
        pass
    out["ok"] = True
    queue.put(out)


def _spawn_server(args) -> tuple:
    """Start ``tardis serve`` as a subprocess; returns (proc, port)."""
    port_file = os.path.join(
        tempfile.mkdtemp(prefix="tardis-bench-net-"), "port.txt"
    )
    env = os.environ.copy()
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.tools.cli",
            "serve",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            "--port-file",
            port_file,
            "--max-connections",
            str(args.clients + 8),
            "--request-timeout",
            str(args.request_timeout),
            "--drain-timeout",
            "5.0",
        ]
        + (["--shards", str(args.shards)] if args.shards else [])
        + (
            ["--shard-workers", str(args.shard_workers)]
            if args.shard_workers
            else []
        ),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.time() + 20.0
    while time.time() < deadline:
        if proc.poll() is not None:
            output = proc.stdout.read() if proc.stdout else ""
            raise RuntimeError("tardis serve died during startup:\n" + output)
        if os.path.exists(port_file):
            with open(port_file) as handle:
                text = handle.read().strip()
            if text:
                return proc, int(text)
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("tardis serve did not report a port within 20s")


def _stop_server(proc) -> dict:
    """SIGINT the server, wait, and parse its TARDIS_SERVE_REPORT line."""
    proc.send_signal(signal.SIGINT)
    try:
        output, _ = proc.communicate(timeout=30.0)
    except subprocess.TimeoutExpired:
        proc.kill()
        output, _ = proc.communicate()
    report = {}
    for line in (output or "").splitlines():
        if line.startswith("TARDIS_SERVE_REPORT "):
            report = json.loads(line[len("TARDIS_SERVE_REPORT ") :])
    report["exit_code"] = proc.returncode
    return report


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def run_bench(args) -> int:
    server_proc = None
    if args.connect:
        host, _, port_text = args.connect.partition(":")
        host, port = host or "127.0.0.1", int(port_text)
    else:
        server_proc, port = _spawn_server(args)
        host = "127.0.0.1"
    print(
        "bench_net: %d client processes x %d ops against %s:%d"
        % (args.clients, args.ops, host, port)
    )

    exit_code = 0
    control = TardisClient(host=host, port=port, session="bench-control")
    try:
        # Preload the key space so readers never miss.
        for i in range(args.keys):
            control.put("key-%03d" % i, 0)

        ctx = multiprocessing.get_context()
        queue = ctx.Queue()
        workers = [
            ctx.Process(
                target=_worker,
                args=(
                    worker_id,
                    host,
                    port,
                    args.ops,
                    args.keys,
                    args.read_fraction,
                    args.merge_every,
                    args.seed,
                    queue,
                ),
            )
            for worker_id in range(args.clients)
        ]
        wall_start = time.perf_counter()
        for proc in workers:
            proc.start()
        results = [queue.get(timeout=120.0) for _ in workers]
        wall_s = time.perf_counter() - wall_start
        for proc in workers:
            proc.join(timeout=10.0)

        # Let the server finish tearing down the worker connections,
        # then count sessions: only the control session may remain.
        open_sessions = None
        deadline = time.time() + 5.0
        while time.time() < deadline:
            open_sessions = control.stats()["open_sessions"]
            if open_sessions <= 1:
                break
            time.sleep(0.05)
        leaked_sessions = max(0, (open_sessions or 1) - 1)
        stats = control.stats()
    finally:
        control.close()

    commits = sum(r["commits"] for r in results)
    aborts = sum(r["aborts"] for r in results)
    merges = sum(r["merges"] for r in results)
    errors = sum(r["errors"] for r in results)
    connect_failures = sum(1 for r in results if not r["ok"])
    latencies = sorted(
        value for r in results for value in r["latencies_ms"]
    )
    total_ops = len(latencies)

    server_report = {}
    leaked_workers = 0
    if server_proc is not None:
        server_report = _stop_server(server_proc)
        # The authoritative leak count: what the server saw after its
        # own graceful drain (the control session closed above).
        leaked_sessions = len(server_report.get("leaked_sessions", []))
        leaked_workers = int(server_report.get("leaked_workers", 0) or 0)

    metrics = {
        "throughput_tps": total_ops / wall_s if wall_s else 0.0,
        "wall_s": wall_s,
        "p50_latency_ms": _percentile(latencies, 0.50),
        "p95_latency_ms": _percentile(latencies, 0.95),
        "p99_latency_ms": _percentile(latencies, 0.99),
        "mean_latency_ms": (sum(latencies) / total_ops) if total_ops else 0.0,
        "commits": commits,
        "aborts": aborts,
        "merges": merges,
        "errors": errors,
        "connect_failures": connect_failures,
        "leaked_sessions": leaked_sessions,
        "leaked_workers": leaked_workers,
        "open_sessions_after_run": open_sessions,
        "server_requests_total": stats["requests_total"],
        "server_store_states": stats["store"]["states"],
        "server_report": server_report,
    }
    config = {
        "clients": args.clients,
        "ops_per_client": args.ops,
        "keys": args.keys,
        "read_fraction": args.read_fraction,
        "merge_every": args.merge_every,
        "seed": args.seed,
        "smoke": args.smoke,
        "spawned_server": server_proc is not None,
        "shards": args.shards,
        "shard_workers": args.shard_workers,
    }
    path = write_bench_json("net", metrics, config)
    print(
        "bench_net: %.0f ops/s wall, p50=%.2fms p99=%.2fms, "
        "%d commits / %d aborts / %d merges / %d errors, leaked_sessions=%d"
        % (
            metrics["throughput_tps"],
            metrics["p50_latency_ms"],
            metrics["p99_latency_ms"],
            commits,
            aborts,
            merges,
            errors,
            leaked_sessions,
        )
    )
    print("bench_net: wrote %s" % path)

    if args.smoke:
        problems = []
        if commits <= 0:
            problems.append("no committed transactions")
        if leaked_sessions != 0:
            problems.append("%d leaked sessions" % leaked_sessions)
        if leaked_workers != 0:
            problems.append("%d leaked shard workers" % leaked_workers)
        if connect_failures:
            problems.append("%d clients failed to connect" % connect_failures)
        if server_proc is not None and server_report.get("exit_code") != 0:
            problems.append(
                "server exited %r" % (server_report.get("exit_code"),)
            )
        if problems:
            print("bench_net SMOKE FAILED: " + "; ".join(problems))
            exit_code = 1
        else:
            print("bench_net smoke ok")
    return exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=32, help="client processes")
    parser.add_argument("--ops", type=int, default=300, help="ops per client")
    parser.add_argument("--keys", type=int, default=64)
    parser.add_argument("--read-fraction", type=float, default=0.7)
    parser.add_argument(
        "--merge-every", type=int, default=25,
        help="every Nth op per client is a merge (0 disables)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--request-timeout", type=float, default=10.0)
    parser.add_argument(
        "--shards", type=int, default=None,
        help="spawn the server with --shards N (sharded record store)",
    )
    parser.add_argument(
        "--shard-workers", type=int, default=None,
        help="spawn the server with --shard-workers N (proc-sharded store)",
    )
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="benchmark an already-running server instead of spawning one",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="short CI run; exit nonzero unless commits>0 and 0 leaked sessions",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.ops = min(args.ops, 30)
    return run_bench(args)


if __name__ == "__main__":
    sys.exit(main())
