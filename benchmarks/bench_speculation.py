"""Extension benchmark: speculation on branches (§9 future work).

Sweeps the conflict rate of the confirmed global order and measures how
often speculation stands versus how much work is replayed. The win:
every client is answered immediately (zero confirmation-latency stalls);
the cost: re-executed transactions, proportional to the conflict rate.
"""

import random

import pytest

from repro.speculation import SpeculativeExecutor
from repro.speculation.executor import RemoteTxn

from common import Report, run_once

N_ROUNDS = 300


def run_at_conflict_rate(rate: float, seed: int = 7):
    rng = random.Random(seed)
    ex = SpeculativeExecutor()
    total = 0
    for i in range(N_ROUNDS):
        key = "k%d" % rng.randrange(8)

        def program(txn, key=key):
            txn.put(key, txn.get(key, default=0) + 1)

        ex.submit(program)
        total += 1
        if rng.random() < rate:
            ex.deliver_confirmed([RemoteTxn(writes={key: rng.randrange(1000)})])
        else:
            ex.deliver_confirmed([RemoteTxn(writes={"remote%d" % i: i})])
        if i % 50 == 49:
            ex.collect_abandoned()
    return {
        "total": total,
        "misspeculations": ex.misspeculations,
        "reexecutions": ex.reexecutions,
        "states": len(ex.store.dag),
    }


@pytest.mark.benchmark(group="speculation")
def test_speculation_conflict_sweep(benchmark):
    rates = [0.0, 0.05, 0.15, 0.30]
    results = run_once(
        benchmark, lambda: {r: run_at_conflict_rate(r) for r in rates}
    )
    report = Report(
        "speculation", "Extension (§9): speculation cost vs conflict rate"
    )
    rows = []
    for rate in rates:
        r = results[rate]
        rows.append(
            [
                "%.0f%%" % (rate * 100),
                "%d" % r["total"],
                "%d" % r["misspeculations"],
                "%.1f%%" % (100 * r["reexecutions"] / r["total"]),
                "%d" % r["states"],
            ]
        )
    report.table(
        ["conflict rate", "txns", "misspeculations", "replayed", "live states"],
        rows,
        widths=[15, 8, 17, 11, 13],
    )
    report.line()
    report.line("every transaction was answered speculatively without waiting")
    report.line("for the confirmed order; replay overhead tracks the conflict")
    report.line("rate, and abandoned branches are garbage collected.")
    for rate in rates:
        report.metric("conflict_%.0fpct" % (rate * 100), dict(results[rate]))
    report.finish()

    assert results[0.0]["misspeculations"] == 0
    assert results[0.0]["reexecutions"] == 0
    # Replay overhead grows with the conflict rate.
    re_rates = [results[r]["reexecutions"] for r in rates]
    assert re_rates == sorted(re_rates)
    # Branch GC keeps the DAG bounded despite constant speculation.
    assert all(results[r]["states"] < 200 for r in rates)
