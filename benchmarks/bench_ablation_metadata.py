"""Ablations: conflict-tracking metadata (§3) and merge scaling (§6.2).

1. The paper claims summarizing branches by *fork points* keeps metadata
   small because "conflicts are a small percentage of the total number
   of operations" — unlike causal-consistency systems that track
   per-operation dependencies. Measured here: mean/max fork-path length
   versus history length versus what explicit dependency tracking would
   store (one entry per predecessor state).
2. Merge cost as a function of the number of divergent branches — the
   price of the K-Branching knob's upper end.
"""

import random

import pytest

from repro import TardisStore
from repro.errors import TransactionAborted

from common import Report, run_once


def run_contended(n_rounds=100, n_sessions=6, n_keys=20, merge_every=20, seed=1):
    """Rounds of concurrent read-modify-writes with periodic merge+GC.

    Each round opens one transaction per session from the same frontier
    (guaranteeing conflicts on hot keys) and commits them all; every
    ``merge_every`` rounds the branches are merged, sessions re-anchor,
    and garbage collection runs — the paper's steady-state deployment.
    """
    rng = random.Random(seed)
    store = TardisStore("A")
    store.path_samples = []  # (mean, max) sampled right before each GC
    sessions = [store.session("s%d" % i) for i in range(n_sessions)]
    commits = 0
    for round_index in range(n_rounds):
        txns = [store.begin(session=s) for s in sessions]
        for txn in txns:
            key = "k%d" % rng.randrange(n_keys)
            txn.put(key, txn.get(key, default=0) + 1)
        for txn in txns:
            try:
                txn.commit()
                commits += 1
            except TransactionAborted:
                pass
        if round_index % merge_every == merge_every - 1:
            if len(store.dag.leaves()) > 1:
                merge = store.begin_merge(session=sessions[0])
                for key in merge.find_conflict_writes():
                    values = merge.get_all(key)
                    if values:
                        merge.put(key, max(values))
                merge.commit()
                commits += 1
                merged = store.dag.resolve(merge.commit_id)
                for session in sessions:
                    anchor = store.dag.resolve(session.last_commit_id)
                    if store.dag.descendant_check(anchor, merged):
                        session.last_commit_id = merge.commit_id
            lengths = [len(s.fork_path) for s in store.dag.states()]
            store.path_samples.append(
                (sum(lengths) / len(lengths), max(lengths))
            )
            for session in sessions:
                session.place_ceiling()
            store.collect_garbage()
    return store


@pytest.mark.benchmark(group="ablation-metadata")
def test_ablation_forkpath_metadata(benchmark):
    store = run_once(benchmark, run_contended)
    paths = [len(s.fork_path) for s in store.dag.states()]
    n_states = len(store.dag)
    commits = store.metrics.commits - store.metrics.merges
    forks = store.metrics.forks
    mean_path = sum(paths) / len(paths)
    max_path = max(paths)
    peak_mean = max(m for m, _x in store.path_samples)
    peak_max = max(x for _m, x in store.path_samples)
    # Explicit dependency tracking stores one entry per causal
    # predecessor: on average half the history per state.
    dependency_entries = commits / 2

    report = Report(
        "ablation_metadata",
        "Ablation: conflict tracking vs dependency tracking metadata (§3)",
    )
    report.table(
        ["metric", "value"],
        [
            ["committed txns", "%d" % commits],
            ["forks (conflicts)", "%d  (%.1f%% of commits)" % (forks, 100 * forks / commits)],
            ["live states (final)", "%d" % n_states],
            ["fork-path mean/max (steady state)", "%.2f / %d entries" % (peak_mean, peak_max)],
            ["fork-path mean/max (after GC)", "%.2f / %d entries" % (mean_path, max_path)],
            ["causal-dependency equivalent", "~%.0f entries/state" % dependency_entries],
        ],
        widths=[36, 36],
    )
    report.line()
    report.line("fork paths track only live conflicts (%.1f entries at steady"
                % peak_mean)
    report.line("state, scrubbed to %.1f after compression) while dependency"
                % mean_path)
    report.line("tracking would grow with history (~%.0f entries/state):"
                % dependency_entries)
    report.line("the metadata reduction conflict tracking buys (§3, §6.1.3).")
    report.metric("commits", commits)
    report.metric("forks", forks)
    report.metric("fork_path_mean_steady", peak_mean)
    report.metric("fork_path_max_steady", peak_max)
    report.metric("fork_path_mean_after_gc", mean_path)
    report.metric("dependency_entries_equivalent", dependency_entries)
    report.finish()

    assert peak_mean < 20
    assert peak_max < commits / 4
    assert dependency_entries > 10 * peak_mean


@pytest.mark.benchmark(group="ablation-merge")
def test_ablation_merge_scaling(benchmark):
    def _measure():
        import time

        results = []
        for branches in (2, 4, 8, 16):
            store = TardisStore("A")
            store.put("seed", 0)
            sessions = [store.session("s%d" % i) for i in range(branches)]
            txns = [store.begin(session=s) for s in sessions]
            for i, txn in enumerate(txns):
                txn.put("hot", txn.get("hot", default=0) + 1)
                txn.put("own%d" % i, i)
            for txn in txns:
                txn.commit()
            assert len(store.dag.leaves()) == branches
            start = time.perf_counter()
            merge = store.begin_merge(session=sessions[0])
            conflicts = merge.find_conflict_writes()
            forks = merge.find_fork_points()
            base = merge.get_for_id("hot", forks[0], default=0) if forks else 0
            merge.put("hot", base + sum(v - base for v in merge.get_all("hot")))
            merge.commit()
            elapsed_ms = (time.perf_counter() - start) * 1000
            results.append((branches, len(conflicts), elapsed_ms))
            # Correctness: all increments survive the n-way merge.
            assert store.get("hot") == branches
        return results

    results = run_once(benchmark, _measure)
    report = Report("ablation_merge", "Ablation: merge cost vs branch count")
    report.table(
        ["branches", "conflicting keys", "merge wall time (ms)"],
        [[str(b), str(c), "%.3f" % ms] for b, c, ms in results],
        widths=[10, 18, 22],
    )
    report.line()
    report.line("merging more branches costs more — the complexity K-Branching")
    report.line("lets applications bound (§5.1).")
    for b, c, ms in results:
        report.metric(
            "branches_%d" % b, {"conflict_keys": c, "merge_wall_ms": ms}
        )
    report.finish()
    assert all(c >= 1 for _b, c, _ms in results)
