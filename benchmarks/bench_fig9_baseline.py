"""Figure 9: baseline TARDiS vs BDB vs OCC (no local branching).

Transactions use the Ancestor begin constraint and the union of
Serializability and NoBranching as end constraint — the configuration
that mimics sequential storage locally and causal consistency globally
(§7.1.2). The paper's finding: TARDiS tracks full history yet performs
within ~10% of BDB on both read-heavy and write-heavy workloads, while
OCC lags on both (read-only validation on the read-heavy side, the long
validation phase on the write-heavy side).
"""

import pytest

from repro.workload import READ_HEAVY, WRITE_HEAVY, YCSBWorkload, sweep_clients

from common import (
    CLIENT_SWEEP,
    N_KEYS,
    Report,
    SYSTEMS_NO_BRANCHING,
    config,
    fmt_tps,
    run_once,
    sweep_metrics,
)


def _sweep(mix):
    results = {}
    for name, factory in SYSTEMS_NO_BRANCHING:
        results[name] = sweep_clients(
            factory,
            lambda: YCSBWorkload(mix=mix, n_keys=N_KEYS, pattern="uniform"),
            CLIENT_SWEEP,
            config(),
        )
    return results


def _report(panel, mix, results):
    report = Report(
        "fig9%s_%s" % (panel, mix),
        "Figure 9(%s): throughput/latency, %s uniform, no local branching"
        % (panel, mix),
    )
    report.line("(throughput in simulated txn/s; latency in simulated ms)")
    header = ["clients"] + [
        "%s tput | lat" % name for name, _f in SYSTEMS_NO_BRANCHING
    ]
    rows = []
    for i, n in enumerate(CLIENT_SWEEP):
        row = [str(n)]
        for name, _f in SYSTEMS_NO_BRANCHING:
            r = results[name][i]
            row.append("%s | %6.3f" % (fmt_tps(r.throughput_tps), r.mean_latency_ms))
        rows.append(row)
    report.table(header, rows, widths=[9] + [26] * len(SYSTEMS_NO_BRANCHING))

    peak = {
        name: max(r.throughput_tps for r in results[name])
        for name, _f in SYSTEMS_NO_BRANCHING
    }
    report.line()
    report.line("peak throughput: " + "  ".join("%s=%.0f" % kv for kv in peak.items()))
    report.line(
        "TARDiS/BDB = %.2f (paper: ~0.9, within 10%%)   OCC/BDB = %.2f (paper: behind both)"
        % (peak["TARDiS"] / peak["BDB"], peak["OCC"] / peak["BDB"])
    )
    report.config["mix"] = mix
    sweep_metrics(report, SYSTEMS_NO_BRANCHING, results, CLIENT_SWEEP)
    report.finish()
    return peak


@pytest.mark.benchmark(group="fig9")
def test_fig9a_read_heavy(benchmark):
    results = run_once(benchmark, lambda: _sweep(READ_HEAVY))
    peak = _report("a", READ_HEAVY, results)
    # Shape assertions from the paper.
    assert 0.75 <= peak["TARDiS"] / peak["BDB"] <= 1.25
    assert peak["OCC"] < peak["BDB"]
    assert peak["OCC"] < peak["TARDiS"]


@pytest.mark.benchmark(group="fig9")
def test_fig9b_write_heavy(benchmark):
    results = run_once(benchmark, lambda: _sweep(WRITE_HEAVY))
    peak = _report("b", WRITE_HEAVY, results)
    assert 0.75 <= peak["TARDiS"] / peak["BDB"] <= 1.3
    assert peak["OCC"] < peak["BDB"]
