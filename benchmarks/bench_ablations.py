"""Ablations for DESIGN.md's called-out design choices.

1. Fork-path subset checking (§6.1.3) versus the traditional
   graph-walk ancestor check it replaces — real wall-clock time of the
   two visibility tests on an identical branched DAG. This quantifies
   the claim that summarizing branches by fork points beats dependency
   tracking.
2. K-Branching (§5.1): sweeping k trades the performance of
   branch-on-conflict against the number of branches a merge must
   reconcile.
"""

import random

import pytest

from repro.core.constraints import (
    AncestorConstraint,
    KBranchingConstraint,
    SerializabilityConstraint,
)
from repro.core.state_dag import StateDAG
from repro.sim.adapters import TardisAdapter
from repro.workload import WRITE_HEAVY, YCSBWorkload, run_simulation

from common import N_KEYS, Report, config


def build_branched_dag(n_states=2000, fork_prob=0.08, seed=7):
    rng = random.Random(seed)
    dag = StateDAG("bench")
    states = [dag.root]
    tip = dag.root
    for _ in range(n_states):
        parent = rng.choice(states[-40:]) if rng.random() < fork_prob else tip
        tip = dag.create_state([parent])
        states.append(tip)
    return dag, states


@pytest.fixture(scope="module")
def branched_dag():
    return build_branched_dag()


@pytest.mark.benchmark(group="ablation-forkpath")
def test_ablation_forkpath_subset_check(benchmark, branched_dag):
    dag, states = branched_dag
    rng = random.Random(3)
    pairs = [(rng.choice(states), rng.choice(states)) for _ in range(300)]

    def run():
        return sum(dag.descendant_check(x, y) for x, y in pairs)

    result = benchmark(run)
    assert result >= 0


@pytest.mark.benchmark(group="ablation-forkpath")
def test_ablation_graph_walk_check(benchmark, branched_dag):
    dag, states = branched_dag
    rng = random.Random(3)
    pairs = [(rng.choice(states), rng.choice(states)) for _ in range(300)]

    def run():
        return sum(dag.ancestor_walk_check(x, y) for x, y in pairs)

    result = benchmark(run)
    assert result >= 0


def test_forkpath_agrees_with_walk(branched_dag):
    dag, states = branched_dag
    rng = random.Random(5)
    for _ in range(300):
        x, y = rng.choice(states), rng.choice(states)
        assert dag.descendant_check(x, y) == dag.ancestor_walk_check(x, y)


def _direct_ops(store, n=2000):
    session = store.session("w")
    for i in range(n):
        txn = store.begin(session=session)
        txn.get("k%d" % (i % 50), default=None)
        txn.put("k%d" % (i % 50), i)
        txn.commit()
    return store.metrics.commits


@pytest.mark.benchmark(group="ablation-backend")
def test_backend_btree(benchmark):
    """TARDiS-BDB configuration: records in the B-tree (§6.6)."""
    from repro import TardisStore

    result = benchmark(lambda: _direct_ops(TardisStore("A", backend="btree")))
    assert result == 2000


@pytest.mark.benchmark(group="ablation-backend")
def test_backend_hash(benchmark):
    """TARDiS-MDB configuration: records in the hash store (§6.6);
    the paper reports it ~10% faster than the B-tree build."""
    from repro import TardisStore

    result = benchmark(lambda: _direct_ops(TardisStore("A", backend="hash")))
    assert result == 2000


@pytest.mark.benchmark(group="ablation-kbranching")
def test_ablation_kbranching_sweep(benchmark):
    def _measure():
        results = {}
        for k in (2, 3, 5, 9):
            adapter = TardisAdapter(
                begin_constraint=AncestorConstraint(),
                end_constraint=SerializabilityConstraint() & KBranchingConstraint(k),
            )
            results[k] = run_simulation(
                adapter,
                YCSBWorkload(mix=WRITE_HEAVY, n_keys=N_KEYS, read_modify_write=True),
                config(n_clients=16),
            )
        return results

    results = benchmark.pedantic(_measure, rounds=1, iterations=1)
    report = Report("ablation_kbranching", "Ablation: K-Branching degree vs throughput")
    rows = [
        [
            "k=%d" % k,
            "%8.0f" % r.throughput_tps,
            "%6d" % r.aborts,
            "%5d" % r.adapter_stats.get("forks", 0),
        ]
        for k, r in results.items()
    ]
    report.table(["k", "tput(txn/s)", "aborts", "forks"], rows, widths=[8, 13, 9, 8])
    report.line()
    report.line("k=2 is NoBranching (abort on conflict); larger k buys throughput")
    report.line("at the cost of more concurrent branches to merge.")
    for k, r in results.items():
        report.metric(
            "k%d" % k,
            {
                "throughput_tps": r.throughput_tps,
                "aborts": r.aborts,
                "forks": r.adapter_stats.get("forks", 0),
            },
        )
    report.finish()
    # More allowed branching -> fewer aborts and at least as much tput.
    assert results[9].aborts < results[2].aborts
    assert results[9].throughput_tps > results[2].throughput_tps
