"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` module regenerates one table or figure of the
paper's evaluation (§7): it runs the experiment inside the
pytest-benchmark harness, prints the same rows/series the paper
reports, and writes them to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can cite them.

Throughput numbers are *simulated* transactions per second (see
DESIGN.md §1): absolute values are not comparable to the paper's
testbed, but who-wins/by-what-factor/where-crossovers-fall are.
"""

from __future__ import annotations

import os
from typing import Callable, List

from repro.sim.adapters import OCCAdapter, TardisAdapter, TwoPLAdapter
from repro.workload import RunConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: standard simulation scale for the microbenchmarks.
CORES = 8
DURATION_MS = 200.0
WARMUP_MS = 30.0
MAINTENANCE_MS = 5.0
N_KEYS = 400
CLIENT_SWEEP = [2, 4, 8, 16, 32]
ELBOW_CLIENTS = 16


def config(n_clients: int = ELBOW_CLIENTS, **overrides) -> RunConfig:
    base = dict(
        n_clients=n_clients,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
        cores=CORES,
        seed=0,
        maintenance_interval_ms=MAINTENANCE_MS,
    )
    base.update(overrides)
    return RunConfig(**base)


def make_tardis(branching: bool = True, **kw) -> TardisAdapter:
    return TardisAdapter(branching=branching, **kw)


def make_bdb(**kw) -> TwoPLAdapter:
    return TwoPLAdapter(**kw)


def make_occ(**kw) -> OCCAdapter:
    return OCCAdapter(**kw)


SYSTEMS: List = [
    ("TARDiS", lambda: make_tardis(branching=True)),
    ("BDB", make_bdb),
    ("OCC", make_occ),
]

SYSTEMS_NO_BRANCHING: List = [
    ("TARDiS", lambda: make_tardis(branching=False)),
    ("BDB", make_bdb),
    ("OCC", make_occ),
]


class Report:
    """Collects printable lines and persists them under results/."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.lines: List[str] = ["", "=" * 72, title, "=" * 72]

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, header: List[str], rows: List[List], widths=None) -> None:
        widths = widths or [max(12, len(h) + 2) for h in header]
        fmt = "".join("%%-%ds" % w for w in widths)
        self.line(fmt % tuple(header))
        self.line("-" * sum(widths))
        for row in rows:
            self.line(fmt % tuple(row))

    def finish(self) -> str:
        text = "\n".join(self.lines) + "\n"
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, self.name + ".txt"), "w") as handle:
            handle.write(text)
        print(text)
        return text


def run_once(benchmark: Callable, experiment: Callable):
    """Run ``experiment`` once under pytest-benchmark's timer."""
    return benchmark.pedantic(experiment, rounds=1, iterations=1)


def fmt_tps(value: float) -> str:
    return "%8.0f" % value


def ratio(a: float, b: float) -> str:
    if b <= 0:
        return "inf"
    return "%.2fx" % (a / b)
