"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*.py`` module regenerates one table or figure of the
paper's evaluation (§7): it runs the experiment inside the
pytest-benchmark harness, prints the same rows/series the paper
reports, and writes them to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can cite them.

Throughput numbers are *simulated* transactions per second (see
DESIGN.md §1): absolute values are not comparable to the paper's
testbed, but who-wins/by-what-factor/where-crossovers-fall are.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Any, Callable, Dict, List, Optional

from repro.sim.adapters import OCCAdapter, TardisAdapter, TwoPLAdapter
from repro.workload import RunConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.abspath(os.path.dirname(__file__)))

#: schema version of the BENCH_*.json documents.
BENCH_SCHEMA_VERSION = 1

#: standard simulation scale for the microbenchmarks.
CORES = 8
DURATION_MS = 200.0
WARMUP_MS = 30.0
MAINTENANCE_MS = 5.0
N_KEYS = 400
CLIENT_SWEEP = [2, 4, 8, 16, 32]
ELBOW_CLIENTS = 16


def config(n_clients: int = ELBOW_CLIENTS, **overrides) -> RunConfig:
    base = dict(
        n_clients=n_clients,
        duration_ms=DURATION_MS,
        warmup_ms=WARMUP_MS,
        cores=CORES,
        seed=0,
        maintenance_interval_ms=MAINTENANCE_MS,
    )
    base.update(overrides)
    return RunConfig(**base)


def make_tardis(branching: bool = True, **kw) -> TardisAdapter:
    return TardisAdapter(branching=branching, **kw)


def make_bdb(**kw) -> TwoPLAdapter:
    return TwoPLAdapter(**kw)


def make_occ(**kw) -> OCCAdapter:
    return OCCAdapter(**kw)


SYSTEMS: List = [
    ("TARDiS", lambda: make_tardis(branching=True)),
    ("BDB", make_bdb),
    ("OCC", make_occ),
]

SYSTEMS_NO_BRANCHING: List = [
    ("TARDiS", lambda: make_tardis(branching=False)),
    ("BDB", make_bdb),
    ("OCC", make_occ),
]


def git_rev() -> str:
    """The current commit hash, or "unknown" outside a git checkout."""
    try:
        return (
            subprocess.check_output(
                ["git", "rev-parse", "HEAD"],
                cwd=REPO_ROOT,
                stderr=subprocess.DEVNULL,
            )
            .decode()
            .strip()
        )
    except Exception:
        return "unknown"


def write_bench_json(
    name: str,
    metrics: Dict[str, Any],
    config: Optional[Dict[str, Any]] = None,
) -> str:
    """Write ``BENCH_<name>.json`` at the repo root (machine-readable twin
    of the ``results/<name>.txt`` report). Returns the path written.

    Schema: ``{"schema_version", "name", "config", "metrics",
    "timestamp", "git_rev"}`` — ``metrics`` is a flat or
    one-level-nested dict of numbers (throughput, latency quantiles,
    per-op costs, abort/merge/GC counters).
    """
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": name,
        "config": config or {},
        "metrics": metrics,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git_rev": git_rev(),
    }
    path = os.path.join(REPO_ROOT, "BENCH_%s.json" % name)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str, sort_keys=True)
        handle.write("\n")
    return path


def result_metrics(result) -> Dict[str, Any]:
    """Flatten one :class:`RunResult` into the BENCH metrics schema."""
    out = {
        "throughput_tps": result.throughput_tps,
        "p50_latency_ms": result.p50_latency_ms,
        "p99_latency_ms": result.p99_latency_ms,
        "mean_latency_ms": result.mean_latency_ms,
        "commits": result.commits,
        "aborts": result.aborts,
        "goodput": result.goodput,
        "op_breakdown_ms": dict(result.op_breakdown_ms),
    }
    # Fold in the per-run observability counters (forks, merges, GC...):
    # histograms reduce to their summary values; windowed series keep
    # their full (t, value) sample lists under a "series" sub-dict.
    for name, data in sorted(result.obs_metrics.items()):
        if data.get("type") == "counter":
            out[name] = data["value"]
        elif data.get("type") == "gauge":
            out[name] = data["value"]
        elif data.get("type") == "series":
            out.setdefault("series", {})[name] = data["samples"]
    if result.adapter_stats:
        out["adapter_stats"] = dict(result.adapter_stats)
    return out


def sweep_metrics(report: "Report", systems: List, results, clients: List[int]) -> None:
    """Fold a client-sweep result dict into a report's BENCH metrics."""
    report.metric("clients", list(clients))
    for name, _factory in systems:
        series = results[name]
        report.metric("%s_tps_by_clients" % name, [r.throughput_tps for r in series])
        report.metric("%s_peak_tps" % name, max(r.throughput_tps for r in series))
        report.result("%s_at_%d_clients" % (name, clients[-1]), series[-1])


class Report:
    """Collects printable lines and persists them under results/.

    ``metric()`` / ``result()`` additionally collect machine-readable
    numbers; ``finish()`` writes them as ``BENCH_<name>.json`` alongside
    the human-readable text (skipped when nothing was collected, or when
    ``TARDIS_BENCH_JSON=0``).
    """

    def __init__(self, name: str, title: str, config: Optional[Dict[str, Any]] = None):
        self.name = name
        self.lines: List[str] = ["", "=" * 72, title, "=" * 72]
        self.metrics: Dict[str, Any] = {}
        self.config: Dict[str, Any] = dict(config or {})

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, header: List[str], rows: List[List], widths=None) -> None:
        widths = widths or [max(12, len(h) + 2) for h in header]
        fmt = "".join("%%-%ds" % w for w in widths)
        self.line(fmt % tuple(header))
        self.line("-" * sum(widths))
        for row in rows:
            self.line(fmt % tuple(row))

    def metric(self, key: str, value: Any) -> None:
        """Record one machine-readable metric for the BENCH json."""
        self.metrics[key] = value

    def result(self, label: str, run_result) -> None:
        """Record a full :class:`RunResult` under ``label``."""
        self.metrics[label] = result_metrics(run_result)

    def finish(self) -> str:
        text = "\n".join(self.lines) + "\n"
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(os.path.join(RESULTS_DIR, self.name + ".txt"), "w") as handle:
            handle.write(text)
        if self.metrics and os.environ.get("TARDIS_BENCH_JSON", "1") != "0":
            write_bench_json(self.name, self.metrics, self.config)
        print(text)
        return text


def run_once(benchmark: Callable, experiment: Callable):
    """Run ``experiment`` once under pytest-benchmark's timer."""
    return benchmark.pedantic(experiment, rounds=1, iterations=1)


def fmt_tps(value: float) -> str:
    return "%8.0f" % value


def ratio(a: float, b: float) -> str:
    if b <= 0:
        return "inf"
    return "%.2fx" % (a / b)


def run_smoke(duration_ms: float = 60.0, n_clients: int = 8) -> str:
    """One tiny TARDiS run; writes and returns ``BENCH_smoke.json``.

    Used by CI to assert that a machine-readable benchmark document is
    produced and parses; also a quick end-to-end check of the metrics
    pipeline (throughput, p50/p99, per-op breakdown, branch/GC counters).
    """
    from repro.workload import YCSBWorkload, run_simulation
    from repro.workload.mixes import MIXED

    cfg = config(
        n_clients=n_clients,
        duration_ms=duration_ms,
        warmup_ms=duration_ms * 0.1,
        series_interval_ms=5.0,
    )
    result = run_simulation(
        make_tardis(branching=True),
        YCSBWorkload(mix=MIXED, n_keys=N_KEYS, pattern="uniform"),
        cfg,
    )
    metrics = result_metrics(result)
    return write_bench_json(
        "smoke",
        metrics,
        config={
            "n_clients": cfg.n_clients,
            "duration_ms": cfg.duration_ms,
            "cores": cfg.cores,
            "seed": cfg.seed,
            "mix": "mixed",
        },
    )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        path = run_smoke()
        print("wrote %s" % path)
    else:
        print("usage: python benchmarks/common.py --smoke")
        sys.exit(2)
