"""Figure 13: impact of garbage collection.

One TARDiS site under a write-heavy load, with clients placing ceilings
and with DAG compression + record promotion either running (TAR-GC) or
disabled (TAR-NoGC). The no-GC run models the paper's observation that
accumulated states/records put the runtime under memory pressure (in
their Java prototype, old/new-generation GC pauses) and throughput
collapses over time; with compression, throughput stays flat and the
state/record counts stay bounded.
"""

import pytest

from repro.sim.adapters import TardisAdapter
from repro.workload import WRITE_HEAVY, YCSBWorkload, run_simulation

from common import N_KEYS, Report, config, run_once

DURATION = 1000.0
SAMPLE_MS = 100.0


def _run(gc_enabled: bool):
    adapter = TardisAdapter(
        branching=True,
        gc_enabled=gc_enabled,
        # Memory pressure: service times inflate as live state grows
        # (the paper's Java GC stalls). Applies to both runs; the GC run
        # simply never accumulates enough state to feel it.
        pressure_per_item=6e-6,
        pressure_threshold=20_000,
    )
    result = run_simulation(
        adapter,
        YCSBWorkload(mix=WRITE_HEAVY, n_keys=N_KEYS),
        config(
            n_clients=16,
            duration_ms=DURATION,
            warmup_ms=50.0,
            maintenance_interval_ms=10.0,
            sample_interval_ms=SAMPLE_MS,
        ),
    )
    return adapter, result


def _series(result):
    """Per-interval throughput plus state/record counts."""
    rows = []
    prev_commits = 0
    prev_t = 0.0
    for sample in result.samples:
        dt = (sample["t_ms"] - prev_t) / 1000.0
        tput = (sample["commits"] - prev_commits) / dt if dt > 0 else 0.0
        rows.append((sample["t_ms"], tput, sample["states"], sample["records"]))
        prev_commits = sample["commits"]
        prev_t = sample["t_ms"]
    return rows


@pytest.mark.benchmark(group="fig13")
def test_fig13_gc_impact(benchmark):
    (gc_adapter, gc_result), (nogc_adapter, nogc_result) = run_once(
        benchmark, lambda: (_run(True), _run(False))
    )
    report = Report("fig13", "Figure 13: impact of garbage collection over time")
    report.line("(a) throughput over time; (b) live states / records")
    header = ["t(ms)", "GC tput", "GC states", "GC recs", "NoGC tput", "NoGC states", "NoGC recs"]
    gc_rows = _series(gc_result)
    nogc_rows = _series(nogc_result)
    rows = [
        [
            "%5.0f" % g[0],
            "%8.0f" % g[1],
            "%7d" % g[2],
            "%8d" % g[3],
            "%8.0f" % n[1],
            "%9d" % n[2],
            "%8d" % n[3],
        ]
        for g, n in zip(gc_rows, nogc_rows)
    ]
    report.table(header, rows, widths=[8, 10, 10, 10, 11, 12, 10])
    first_nogc = nogc_rows[1][1]
    last_nogc = nogc_rows[-1][1]
    last_gc = gc_rows[-1][1]
    first_gc = gc_rows[1][1]
    report.line()
    report.line(
        "NoGC throughput decay: %.0f -> %.0f (%.0f%%)   GC: %.0f -> %.0f (flat)"
        % (first_nogc, last_nogc, 100 * (1 - last_nogc / first_nogc), first_gc, last_gc)
    )
    report.line(
        "final states: GC=%d NoGC=%d (%.1f%% fewer)   final records: GC=%d NoGC=%d"
        % (
            gc_rows[-1][2],
            nogc_rows[-1][2],
            100 * (1 - gc_rows[-1][2] / max(nogc_rows[-1][2], 1)),
            gc_rows[-1][3],
            nogc_rows[-1][3],
        )
    )
    report.result("gc", gc_result)
    report.result("nogc", nogc_result)
    report.metric("gc_tput_first", first_gc)
    report.metric("gc_tput_last", last_gc)
    report.metric("nogc_tput_first", first_nogc)
    report.metric("nogc_tput_last", last_nogc)
    report.metric("gc_final_states", gc_rows[-1][2])
    report.metric("nogc_final_states", nogc_rows[-1][2])
    report.finish()

    # GC keeps throughput flat; no-GC collapses over the run.
    assert last_gc > 0.7 * first_gc
    assert last_nogc < 0.7 * first_nogc
    assert last_gc > 1.5 * last_nogc
    # DAG compression removes the overwhelming majority of states.
    assert gc_rows[-1][2] < 0.05 * nogc_rows[-1][2]
    assert gc_rows[-1][3] < 0.25 * nogc_rows[-1][3]
