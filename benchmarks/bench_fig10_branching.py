"""Figure 10: the benefit of branching as a function of workload.

All TARDiS transactions run with branch-on-conflict enabled (Ancestor
begin, Serializability end; conflicts fork instead of aborting), with
periodic merging. Paper findings reproduced here:

(a) read-heavy uniform — low contention: branching does not help;
    TARDiS slightly below BDB.
(b) write-heavy uniform — higher contention: BDB drops (lock waits),
    TARDiS's lock-free writes close and reverse the gap with load.
(c) write-heavy Zipfian (p=0.99) — hot keys: BDB collapses (its gets
    and puts wait behind hot exclusive locks), TARDiS is only mildly
    affected; OCC is bottlenecked by validation and aborts.
(d) uniform blind writes — conflicts are rare and locks short-lived:
    branching does not help and TARDiS pays for tracking history.
"""

import pytest

from repro.workload import READ_HEAVY, WRITE_HEAVY, YCSBWorkload, sweep_clients
from repro.workload.mixes import BLIND_WRITE

from common import (
    CLIENT_SWEEP,
    N_KEYS,
    Report,
    SYSTEMS,
    config,
    fmt_tps,
    run_once,
    sweep_metrics,
)


def _sweep(mix, pattern, clients=CLIENT_SWEEP):
    results = {}
    for name, factory in SYSTEMS:
        results[name] = sweep_clients(
            factory,
            lambda: YCSBWorkload(mix=mix, n_keys=N_KEYS, pattern=pattern),
            clients,
            config(),
        )
    return results, clients


def _report(panel, label, results, clients):
    report = Report("fig10%s" % panel, "Figure 10(%s): %s (branch-on-conflict)" % (panel, label))
    header = ["clients"] + ["%s tput | lat" % name for name, _f in SYSTEMS]
    rows = []
    for i, n in enumerate(clients):
        row = [str(n)]
        for name, _f in SYSTEMS:
            r = results[name][i]
            row.append("%s | %6.3f" % (fmt_tps(r.throughput_tps), r.mean_latency_ms))
        rows.append(row)
    report.table(header, rows, widths=[9] + [26] * len(SYSTEMS))
    at_load = {name: results[name][-1].throughput_tps for name, _f in SYSTEMS}
    peak = {name: max(r.throughput_tps for r in results[name]) for name, _f in SYSTEMS}
    report.line()
    report.line(
        "at %d clients: TARDiS/BDB = %.2fx   TARDiS/OCC = %.2fx"
        % (
            clients[-1],
            at_load["TARDiS"] / max(at_load["BDB"], 1),
            at_load["TARDiS"] / max(at_load["OCC"], 1),
        )
    )
    report.config["label"] = label
    sweep_metrics(report, SYSTEMS, results, clients)
    report.finish()
    return peak, at_load


@pytest.mark.benchmark(group="fig10")
def test_fig10a_read_heavy_uniform(benchmark):
    results, clients = run_once(benchmark, lambda: _sweep(READ_HEAVY, "uniform"))
    peak, _ = _report("a", "read-heavy uniform", results, clients)
    # Low contention: branching does not help (TARDiS <= BDB).
    assert peak["TARDiS"] <= 1.05 * peak["BDB"]


@pytest.mark.benchmark(group="fig10")
def test_fig10b_write_heavy_uniform(benchmark):
    # The branching benefit appears under load: sweep further out.
    results, clients = run_once(
        benchmark, lambda: _sweep(WRITE_HEAVY, "uniform", CLIENT_SWEEP + [64, 96])
    )
    peak, at_load = _report("b", "write-heavy uniform", results, clients)
    # Contention: the gap closes with load; BDB's goodput decays.
    gap_low = results["TARDiS"][1].throughput_tps / results["BDB"][1].throughput_tps
    gap_high = at_load["TARDiS"] / at_load["BDB"]
    assert gap_high > gap_low  # branching gains as contention grows
    assert at_load["OCC"] < at_load["TARDiS"]


@pytest.mark.benchmark(group="fig10")
def test_fig10c_write_heavy_zipfian(benchmark):
    results, clients = run_once(benchmark, lambda: _sweep(WRITE_HEAVY, "zipfian"))
    _, at_load = _report("c", "write-heavy Zipfian p=0.99", results, clients)
    # The paper's headline: TARDiS outperforms BDB by up to 8x.
    assert at_load["TARDiS"] > 3 * at_load["BDB"]
    # OCC limited to a fraction of TARDiS by validation (paper: ~1/5).
    assert at_load["OCC"] < 0.5 * at_load["TARDiS"]


@pytest.mark.benchmark(group="fig10")
def test_fig10d_blind_writes(benchmark):
    results, clients = run_once(benchmark, lambda: _sweep(BLIND_WRITE, "uniform"))
    peak, _ = _report("d", "uniform blind writes", results, clients)
    # Branching does not help: TARDiS below BDB, still above OCC.
    assert peak["TARDiS"] < peak["BDB"]
    assert peak["TARDiS"] > peak["OCC"]
