"""Figure 12: TARDiS scalability across geo-replicated sites.

One to three sites (modeled after the paper's us-central / europe-west /
asia-east zones) run the same closed-loop workload with asynchronous
multi-master replication. Because replicated transactions are applied
under their StateID constraint, they never contend with local
transactions, and aggregate throughput scales near-linearly with the
number of sites (§7.1.6); local latency is unchanged.
"""

import pytest

from repro.replication.cluster import run_replicated_workload
from repro.workload import READ_HEAVY, WRITE_HEAVY, YCSBWorkload

from common import N_KEYS, Report, config, run_once

SITES = [1, 2, 3]


def _measure():
    results = {}
    for mix in (READ_HEAVY, WRITE_HEAVY):
        results[mix] = [
            run_replicated_workload(
                n,
                lambda: YCSBWorkload(mix=mix, n_keys=N_KEYS),
                config(
                    n_clients=8,
                    cores=4,
                    maintenance_interval_ms=10,
                    series_interval_ms=5,
                ),
            )
            for n in SITES
        ]
    return results


@pytest.mark.benchmark(group="fig12")
def test_fig12_replication_scalability(benchmark):
    results = run_once(benchmark, _measure)
    report = Report("fig12", "Figure 12: TARDiS scalability (aggregate txn/s by #sites)")
    rows = []
    for n_idx, n in enumerate(SITES):
        rh = results[READ_HEAVY][n_idx]
        wh = results[WRITE_HEAVY][n_idx]
        rows.append(
            [
                str(n),
                "%8.0f" % rh.aggregate_tps,
                "%8.0f" % wh.aggregate_tps,
                "%6.3f" % rh.per_site[0].mean_latency_ms,
                "%6.3f" % wh.per_site[0].mean_latency_ms,
            ]
        )
    report.table(
        ["sites", "RH aggregate", "WH aggregate", "RH lat(ms)", "WH lat(ms)"],
        rows,
        widths=[8, 15, 15, 12, 12],
    )
    rh1 = results[READ_HEAVY][0].aggregate_tps
    rh3 = results[READ_HEAVY][2].aggregate_tps
    wh1 = results[WRITE_HEAVY][0].aggregate_tps
    wh3 = results[WRITE_HEAVY][2].aggregate_tps
    report.line()
    report.line(
        "scaling 1->3 sites: RH %.2fx  WH %.2fx (paper: linear; remote"
        % (rh3 / rh1, wh3 / wh1)
    )
    report.line("applies never contend with local transactions)")
    report.config["sites"] = SITES
    for mix in (READ_HEAVY, WRITE_HEAVY):
        report.metric(
            "%s_aggregate_tps_by_sites" % mix,
            [r.aggregate_tps for r in results[mix]],
        )
        report.metric(
            "%s_messages_by_sites" % mix, [r.messages for r in results[mix]]
        )
    # Replication counters from the 3-site write-heavy run.
    obs = results[WRITE_HEAVY][-1].obs_metrics
    for name, data in sorted(obs.items()):
        if data.get("type") == "counter" and name.startswith(
            ("tardis_repl", "tardis_net")
        ):
            report.metric(name, data["value"])
    # Divergence time-series from the same run (branch count per site,
    # replication lag per peer pair) — how divergence evolved over the run.
    series = {
        name: data["samples"]
        for name, data in sorted(obs.items())
        if data.get("type") == "series"
    }
    report.metric("series", series)
    report.metric("rh_scaling_1_to_3", rh3 / rh1)
    report.metric("wh_scaling_1_to_3", wh3 / wh1)
    report.finish()

    # The windowed series actually sampled the divergence the run created.
    assert any(
        name.startswith("tardis_branch_count@") and samples
        for name, samples in series.items()
    )
    assert series.get("tardis_repl_lag@total")

    # Near-linear aggregate scaling.
    assert rh3 > 2.2 * rh1
    assert wh3 > 2.2 * wh1
    # Latency roughly unchanged by adding sites (async replication).
    lat1 = results[READ_HEAVY][0].per_site[0].mean_latency_ms
    lat3 = results[READ_HEAVY][2].per_site[0].mean_latency_ms
    assert lat3 < 2 * lat1
