"""Observability overhead A/B: instrumented vs flag-check-only runs.

Two arms of the identical simulation (same seed, same workload, same
duration): arm A runs with ``collect_metrics=False`` so every
instrumentation site reduces to one ``registry.enabled`` attribute
check; arm B runs with the full per-run registry recording counters and
histograms. Because metric recording charges no *simulated* cost, the
two arms must produce bit-identical simulated results — that is the
correctness assertion. The interesting number is the wall-clock delta,
which is the real price of the subsystem; the design target is <5%.

Wall-clock ratios on a shared CI box are noisy, so the hard assertion
is deliberately loose (no false failures); the measured ratio is what
gets reported and persisted in ``BENCH_obs_overhead.json``.
"""

import time

import pytest

from repro.sim.adapters import TardisAdapter
from repro.workload import WRITE_HEAVY, YCSBWorkload, run_simulation

from common import N_KEYS, Report, config, run_once

ROUNDS = 5


def _run(collect_metrics: bool):
    cfg = config(n_clients=16, duration_ms=150.0)
    cfg.collect_metrics = collect_metrics
    start = time.perf_counter()
    result = run_simulation(
        TardisAdapter(branching=True),
        YCSBWorkload(mix=WRITE_HEAVY, n_keys=N_KEYS),
        cfg,
    )
    wall_s = time.perf_counter() - start
    return result, wall_s


def _measure():
    """Interleave the arms (A, B, A, B, ...) and keep per-arm minima:
    the minimum wall time is the least noise-contaminated sample."""
    walls = {False: [], True: []}
    results = {}
    for _ in range(ROUNDS):
        for collect in (False, True):
            result, wall_s = _run(collect)
            results[collect] = result
            walls[collect].append(wall_s)
    return results, {k: min(v) for k, v in walls.items()}


@pytest.mark.benchmark(group="obs-overhead")
def test_obs_overhead(benchmark):
    results, walls = run_once(benchmark, _measure)
    off, on = results[False], results[True]
    overhead = walls[True] / walls[False] - 1.0

    report = Report("obs_overhead", "Observability overhead: metrics on vs off")
    report.table(
        ["arm", "sim tput(txn/s)", "sim p99(ms)", "wall(s)"],
        [
            ["metrics off", "%8.0f" % off.throughput_tps,
             "%6.3f" % off.p99_latency_ms, "%.3f" % walls[False]],
            ["metrics on", "%8.0f" % on.throughput_tps,
             "%6.3f" % on.p99_latency_ms, "%.3f" % walls[True]],
        ],
        widths=[14, 17, 13, 10],
    )
    report.line()
    report.line(
        "wall-clock overhead: %+.1f%% (design target <5%%; simulated"
        % (100 * overhead)
    )
    report.line("results are identical by construction — recording is free")
    report.line("in simulated time, so only the host pays)")
    report.metric("wall_overhead_pct", 100 * overhead)
    report.metric("wall_s_off", walls[False])
    report.metric("wall_s_on", walls[True])
    report.metric("sim_tput_off", off.throughput_tps)
    report.metric("sim_tput_on", on.throughput_tps)
    report.metric("metrics_recorded", len(on.obs_metrics))
    report.finish()

    # Correctness: metric recording must not perturb the simulation.
    assert on.throughput_tps == off.throughput_tps
    assert on.commits == off.commits
    assert on.p99_latency_ms == off.p99_latency_ms
    # The enabled arm actually recorded something.
    assert on.obs_metrics["tardis_txn_commit_total"]["value"] > 0
    assert off.obs_metrics == {}
    # Loose wall-clock bound: catches pathological regressions (e.g. a
    # per-sample list sneaking back in) without CI-noise flakiness.
    assert overhead < 0.5
