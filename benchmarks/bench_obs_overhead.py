"""Observability overhead A/B: fully instrumented vs flag-check-only runs.

Two arms of the identical simulation (same seed, same workload, same
duration): arm A runs with everything off — ``collect_metrics=False``,
no tracer, no divergence monitor — so every instrumentation site
reduces to one ``enabled`` attribute check; arm B runs the *full*
observability stack: per-run metrics registry, an enabled trace-event
ring buffer (with trace-context generation on every commit), and the
windowed divergence series sampled every 5 simulated ms. Because none
of that charges *simulated* cost, the two arms must produce
bit-identical simulated results — that is the correctness assertion.
The interesting number is the wall-clock delta, which is the real price
of the subsystem; the design target (and the CI gate) is <10%.

Wall-clock ratios on a shared CI box are noisy, and the noise is
one-sided: thermal throttling, frequency scaling, and neighbour
preemption only ever make a run *slower*, in windows that persist for
many seconds. The estimator is therefore timeit-style **interleaved
min-of-N**: the two arms alternate for ``ROUNDS`` rounds — so both
sample the same thermal history — and each arm is summarized by its
*minimum* wall time, which approximates the uninterfered run. Runs are
kept short (60 simulated ms ≈ under a second of wall time) because the
slow windows last several seconds: a short run has a real chance of
landing entirely inside a clean window, where a multi-second run
almost never does, and the overhead *ratio* is duration-independent. (Paired
per-round ratios and block designs were tried first; with minute-long
correlated slow windows they read anywhere from +0.5% to +22% for
identical code, while interleaved minima reproduce within ~2 points.)
``gc.collect()`` runs before every timed region so a run is never
charged for collecting the previous arm's garbage. The in-test hard
assertion is deliberately loose (no false failures); the min-ratio
estimate is persisted in ``BENCH_obs_overhead.json`` and CI enforces
the 10% gate on it.
"""

import gc
import json
import os
import time

import pytest

from repro.client.client import TardisClient
from repro.obs import tracing as _trc
from repro.server.server import start_in_thread
from repro.sim.adapters import TardisAdapter
from repro.workload import WRITE_HEAVY, YCSBWorkload, run_simulation

from common import N_KEYS, REPO_ROOT, Report, config, run_once, write_bench_json

ROUNDS = 14

#: rounds / ops-per-round for the live-sampler arm (real sockets are
#: slower per op than the simulator, so fewer, larger rounds).
LIVE_ROUNDS = 10
LIVE_OPS = 150


def _run(instrumented: bool):
    cfg = config(n_clients=16, duration_ms=60.0)
    cfg.collect_metrics = instrumented
    cfg.series_interval_ms = 5.0 if instrumented else None
    adapter = TardisAdapter(branching=True)
    workload = YCSBWorkload(mix=WRITE_HEAVY, n_keys=N_KEYS)
    tracer = None
    if instrumented:
        tracer = _trc.Tracer(capacity=4096, enabled=True)
        adapter.store.set_tracer(tracer)
    gc.collect()  # don't charge this run for the previous run's garbage
    start = time.perf_counter()
    result = run_simulation(adapter, workload, cfg)
    wall_s = time.perf_counter() - start
    return result, wall_s, tracer


def _measure():
    """Interleaved min-of-N (see module docstring): alternate the arms
    for ROUNDS rounds, summarize each by its minimum wall time."""
    walls = {False: [], True: []}
    results = {}
    tracers = {}
    _run(False)  # warm-up: imports, code objects, allocator pools
    for _ in range(ROUNDS):
        for instrumented in (False, True):
            result, wall_s, tracer = _run(instrumented)
            results[instrumented] = result
            tracers[instrumented] = tracer
            walls[instrumented].append(wall_s)
    minima = {arm: min(times) for arm, times in walls.items()}
    overhead = minima[True] / minima[False] - 1.0
    return results, minima, tracers, overhead


@pytest.mark.benchmark(group="obs-overhead")
def test_obs_overhead(benchmark):
    results, walls, tracers, overhead = run_once(benchmark, _measure)
    off, on = results[False], results[True]
    tracer = tracers[True]

    report = Report(
        "obs_overhead", "Observability overhead: tracing+monitoring on vs off"
    )
    report.table(
        ["arm", "sim tput(txn/s)", "sim p99(ms)", "wall(s)"],
        [
            ["all off", "%8.0f" % off.throughput_tps,
             "%6.3f" % off.p99_latency_ms, "%.3f" % walls[False]],
            ["full obs", "%8.0f" % on.throughput_tps,
             "%6.3f" % on.p99_latency_ms, "%.3f" % walls[True]],
        ],
        widths=[14, 17, 13, 10],
    )
    report.line()
    report.line(
        "wall-clock overhead: %+.1f%% — interleaved min-of-%d per arm"
        % (100 * overhead, ROUNDS)
    )
    report.line("(CI gate <10%; simulated results are identical by")
    report.line("construction — recording is free in simulated time, so")
    report.line("only the host pays)")
    report.metric("wall_overhead_pct", 100 * overhead)
    report.metric("wall_s_off", walls[False])
    report.metric("wall_s_on", walls[True])
    report.metric("sim_tput_off", off.throughput_tps)
    report.metric("sim_tput_on", on.throughput_tps)
    report.metric("metrics_recorded", len(on.obs_metrics))
    report.metric("trace_events", len(tracer))
    report.metric("trace_dropped", tracer.dropped)
    report.finish()

    # Correctness: the full stack must not perturb the simulation.
    assert on.throughput_tps == off.throughput_tps
    assert on.commits == off.commits
    assert on.p99_latency_ms == off.p99_latency_ms
    # The enabled arm actually recorded all three layers.
    assert on.obs_metrics["tardis_txn_commit_total"]["value"] > 0
    assert len(tracer) > 0
    assert any(
        data.get("type") == "series" and data["samples"]
        for data in on.obs_metrics.values()
    )
    assert off.obs_metrics == {}
    # Loose wall-clock bound: catches pathological regressions (e.g. a
    # per-sample list sneaking back in) without CI-noise flakiness; the
    # strict 10% gate runs on BENCH_obs_overhead.json in CI.
    assert overhead < 0.5


# ---------------------------------------------------------------------------
# Live-sampler arm: the network server with the wall-clock ObsSampler
# (docs/internals.md §14) on vs off, same interleaved min-of-N estimator.
# The sampler shares the store executor with request handlers, so its
# whole cost shows up as request latency — exactly what this measures.


def _drive(client: TardisClient, ops: int) -> float:
    gc.collect()
    start = time.perf_counter()
    for i in range(ops):
        key = "k%d" % (i % 32)
        if i % 3 == 2:
            client.get(key)
        else:
            client.put(key, i)
    return time.perf_counter() - start


def _measure_live():
    cold = start_in_thread(site="bench-cold")
    hot = start_in_thread(site="bench-hot", obs_sample_interval=0.05)
    try:
        clients = {
            False: TardisClient(port=cold.port),
            True: TardisClient(port=hot.port),
        }
        walls = {False: [], True: []}
        _drive(clients[False], LIVE_OPS)  # warm-up both paths
        _drive(clients[True], LIVE_OPS)
        for _ in range(LIVE_ROUNDS):
            for live in (False, True):
                walls[live].append(_drive(clients[live], LIVE_OPS))
        for client in clients.values():
            client.close()
    finally:
        report_cold = cold.stop()
        report_hot = hot.stop()
    minima = {arm: min(times) for arm, times in walls.items()}
    overhead = minima[True] / minima[False] - 1.0
    return minima, overhead, report_cold, report_hot


@pytest.mark.benchmark(group="obs-overhead")
def test_obs_live_sampler_overhead(benchmark):
    minima, overhead, report_cold, report_hot = run_once(benchmark, _measure_live)

    report = Report(
        "obs_overhead_live",
        "Live ops plane overhead: wall-clock sampler on vs off (network server)",
    )
    report.table(
        ["arm", "wall(s)/round", "server commits"],
        [
            ["sampler off", "%.3f" % minima[False], str(report_cold["commits"])],
            ["sampler on", "%.3f" % minima[True], str(report_hot["commits"])],
        ],
        widths=[14, 16, 16],
    )
    report.line()
    report.line(
        "live sampler wall overhead: %+.1f%% — interleaved min-of-%d, %d ops/round"
        % (100 * overhead, LIVE_ROUNDS, LIVE_OPS)
    )
    report.line("(CI gate <10% on live_wall_overhead_pct in BENCH_obs_overhead.json)")
    report.finish()

    # The gate artifact is BENCH_obs_overhead.json: merge the live-arm
    # numbers into it rather than clobbering the A/B arm's metrics
    # (Report.finish overwrites whole files; this test may run alone).
    bench_path = os.path.join(REPO_ROOT, "BENCH_obs_overhead.json")
    merged = {}
    if os.path.exists(bench_path):
        with open(bench_path) as handle:
            merged = json.load(handle).get("metrics", {})
    merged["live_wall_overhead_pct"] = 100 * overhead
    merged["live_wall_s_off"] = minima[False]
    merged["live_wall_s_on"] = minima[True]
    merged["live_sampler_samples"] = report_hot["obs_samples"]
    if os.environ.get("TARDIS_BENCH_JSON", "1") != "0":
        write_bench_json("obs_overhead", merged)

    # The sampler actually ran, and both servers drained clean.
    assert report_hot["obs_samples"] > 0
    assert report_cold["obs_samples"] == 0
    assert report_cold["leaked_sessions"] == []
    assert report_hot["leaked_sessions"] == []
    # Loose in-test bound (CI enforces the strict 10% on the artifact).
    assert overhead < 0.5
