#!/usr/bin/env python
"""Speculation on branches — the paper's §9 future work, prototyped.

A site answers clients immediately by executing their transactions on a
speculative branch, instead of stalling a wide-area round-trip for the
global commit order. When the confirmed order arrives: usually the
speculation stands (branch promoted); occasionally a conflicting remote
transaction forces a replay — which branches make cheap, since nothing
was ever locked or overwritten.

Run:  python examples/speculation_demo.py
"""

from repro.speculation import SpeculativeExecutor
from repro.speculation.executor import RemoteTxn


def transfer(frm, to, amount):
    def program(txn):
        src = txn.get(frm, default=100)
        dst = txn.get(to, default=100)
        txn.put(frm, src - amount)
        txn.put(to, dst + amount)
        return (src - amount, dst + amount)

    return program


def main() -> None:
    ex = SpeculativeExecutor()

    print("client submits a transfer; answered immediately, speculatively:")
    spec = ex.submit(transfer("alice", "bruno", 30))
    print("  result:", spec.result, "| status:", spec.status)
    print("  speculative view: alice=%s" % ex.read_speculative("alice"))
    print("  confirmed view:   alice=%s (order not arrived yet)"
          % ex.read_confirmed("alice"))

    print("\n...the confirmed global order arrives, no conflicts:")
    ex.deliver_confirmed([RemoteTxn(writes={"unrelated": 1})])
    print("  status:", spec.status, "| executions:", spec.executions)
    print("  confirmed view: alice=%s bruno=%s"
          % (ex.read_confirmed("alice"), ex.read_confirmed("bruno")))

    print("\nanother transfer; this time a conflicting remote write is ordered first:")
    spec2 = ex.submit(transfer("alice", "bruno", 10))
    print("  speculative answer:", spec2.result)
    ex.deliver_confirmed([RemoteTxn(writes={"alice": 1000})])
    print("  misspeculation -> replayed on the confirmed prefix")
    print("  status:", spec2.status, "| executions:", spec2.executions)
    print("  final answer:", spec2.result)
    print("  confirmed view: alice=%s bruno=%s"
          % (ex.read_confirmed("alice"), ex.read_confirmed("bruno")))

    removed = ex.collect_abandoned()
    print("\nabandoned speculative branches garbage collected: %d states" % removed)
    print("stats: confirmed=%d misspeculations=%d re-executions=%d"
          % (ex.confirmed_count, ex.misspeculations, ex.reexecutions))


if __name__ == "__main__":
    main()
