#!/usr/bin/env python
"""Quickstart: branch-on-conflict and application-driven merge.

Walks through TARDiS's core abstraction in five minutes:

1. ordinary transactions on sequential-looking storage;
2. two conflicting transactions forking the store into branches;
3. inter-branch isolation (each session keeps its own linear view);
4. a merge transaction reconciling the branches three-way from the
   fork point;
5. garbage collection compressing the history away.

Run:  python examples/quickstart.py
"""

from repro import TardisStore
from repro.errors import MultipleValuesError


def main() -> None:
    store = TardisStore("demo")
    alice = store.session("alice")
    bruno = store.session("bruno")

    # -- 1. plain transactions --------------------------------------------
    with store.begin(session=alice) as txn:
        txn.put("balance", 100)
        txn.put("owner", "alice & bruno")
    print("initial balance:", store.get("balance", session=alice))

    # -- 2. conflicting transactions fork the store -------------------------
    # Both read balance=100 from the same snapshot, then both write it:
    # a sequential store would block or abort one of them; TARDiS forks.
    t_alice = store.begin(session=alice)
    t_bruno = store.begin(session=bruno)
    t_alice.put("balance", t_alice.get("balance") - 30)   # alice spends 30
    t_bruno.put("balance", t_bruno.get("balance") - 45)   # bruno spends 45
    t_alice.commit()
    t_bruno.commit()
    print("\nafter concurrent spends: %d branches, %d fork point(s)"
          % (len(store.dag.leaves()), store.dag.num_forks()))

    # -- 3. inter-branch isolation ------------------------------------------
    # Each session still sees a sequential store: its own branch.
    with store.begin(session=alice) as txn:
        print("alice's branch sees balance =", txn.get("balance"))
    with store.begin(session=bruno) as txn:
        print("bruno's branch sees balance =", txn.get("balance"))

    # -- 4. merging, when and how the application wants ---------------------
    merge = store.begin_merge(session=alice)
    print("\nmerging branches", merge.parents)
    print("conflicting keys:", merge.find_conflict_writes())
    try:
        merge.get("balance")
    except MultipleValuesError as exc:
        print("plain get refuses the ambiguity:", exc)

    fork_point = merge.find_fork_points()[0]
    base = merge.get_for_id("balance", fork_point)
    branch_values = merge.get_all("balance")
    # Three-way merge: apply both spends to the fork-point balance.
    merged = base + sum(v - base for v in branch_values)
    merge.put("balance", merged)
    merge.commit()
    print("fork-point balance %d, branch values %s -> merged %d"
          % (base, branch_values, merged))

    with store.begin(session=alice) as txn:
        print("converged balance:", txn.get("balance"))

    # -- 5. garbage collection -----------------------------------------------
    before = len(store.dag)
    alice.place_ceiling()
    bruno.place_ceiling()
    stats = store.collect_garbage()
    print("\nGC: %d states -> %d (removed %d, pruned %d records)"
          % (before, stats.live_states, stats.states_removed,
             stats.records_dropped))
    with store.begin(session=alice) as txn:
        print("balance still readable after GC:", txn.get("balance"))


if __name__ == "__main__":
    main()
