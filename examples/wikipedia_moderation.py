#!/usr/bin/env python
"""The §2 motivating scenario: weakly-consistent Wikipedia (Figure 1).

Two sites replicate a page about the controversial Mr. Banditoni. Alice
and Bruno concurrently rewrite the content at different sites; Carlo and
Davide then align the references and the image with the content *they*
read. Causal consistency is never violated — and yet, flattened
per-object, the page ends up arguing three different things at once.

TARDiS keeps the two editing sessions as branches, so a moderator sees
two *coherent* candidate pages plus the fork point, and resolves the
whole page atomically in one merge transaction.

Run:  python examples/wikipedia_moderation.py
"""

from repro.apps.wiki import run_banditoni_scenario


def show(title, version):
    print("  %-28s content=%-28r refs=%-18r image=%r"
          % (title + (" [coherent]" if version.coherent() else " [INCOHERENT]"),
             version.content, version.references, version.image))


def main() -> None:
    print("Replaying Figure 1 on a two-site cluster...\n")
    result = run_banditoni_scenario()

    print("What a per-object, deterministic-writer-wins store would serve:")
    show("flattened page", result["naive"])

    print("\nWhat TARDiS exposes to the moderator instead — the branches:")
    for i, version in enumerate(result["branches"]):
        show("branch %d" % i, version)

    print("\nAfter one atomic merge transaction (moderator picked a side):")
    show("moderated page", result["moderated"])

    print("\nreplicated everywhere:", result["converged"])
    counts = result["cluster"].state_counts()
    print("state DAG sizes per site:", counts)


if __name__ == "__main__":
    main()
