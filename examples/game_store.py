#!/usr/bin/env python
"""The §5.2 online game store (Figure 4): cross-object merge logic.

Alice and Bruno both buy the last copy of a board game on different
branches; Bruno also buys the expansion pack, which is only playable
with the game. At merge time the stock counter is reconciled three-way,
the oversell is detected, and the application — not the storage layer —
decides the outcome: Bruno (the bigger cart) keeps game + expansion,
Alice's cart is emptied with an apology, and the invariant "no expansion
without its game" holds throughout.

Run:  python examples/game_store.py
"""

from repro import TardisStore
from repro.apps.shopping import GameStore


def main() -> None:
    store = TardisStore("shop")
    shop = GameStore(store)
    shop.stock_item("boardgame", 1)
    shop.stock_item("expansion", 5, requires="boardgame")
    print("stocked: 1x boardgame, 5x expansion (requires boardgame)\n")

    # Concurrent purchases of the last copy, as if from two sites: both
    # transactions read stock=1 before either commits.
    t_alice = store.begin(session=store.session("shop:alice"))
    t_bruno = store.begin(session=store.session("shop:bruno"))
    for txn, customer in ((t_alice, "alice"), (t_bruno, "bruno")):
        stock = txn.get("item:boardgame:stock")
        txn.put("item:boardgame:stock", stock - 1)
        txn.put("cart:%s" % customer, ("boardgame",))
        txn.put("item:boardgame:carts",
                txn.get("item:boardgame:carts") | {customer})
    t_alice.commit()
    t_bruno.commit()
    print("both bought the last copy -> %d branches" % len(store.dag.leaves()))

    # Bruno additionally buys the expansion on his branch.
    assert shop.buy("bruno", "expansion")
    print("bruno also bought the expansion on his branch")
    print("  alice's branch: cart=%s" % (shop.cart("alice"),))
    print("  bruno's branch: cart=%s" % (shop.cart("bruno"),))

    # The merge: maximize overall profit (keep the bigger cart).
    losers = shop.merge(cart_value={"alice": 10, "bruno": 60})
    print("\nmerge resolved the oversell; apologized to:", losers)
    print("  stock(boardgame) =", shop.stock("boardgame"))
    print("  alice: cart=%s apology=%s" % (shop.cart("alice"), shop.apologized_to("alice")))
    print("  bruno: cart=%s apology=%s" % (shop.cart("bruno"), shop.apologized_to("bruno")))

    # Invariant check: nobody holds an expansion without the game.
    for customer in ("alice", "bruno"):
        cart = shop.cart(customer)
        assert "expansion" not in cart or "boardgame" in cart
    print("\ninvariant holds: no expansion without its board game")


if __name__ == "__main__":
    main()
