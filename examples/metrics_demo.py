#!/usr/bin/env python
"""Observability walkthrough: metrics, tracing, exporters.

Shows the full loop in under a minute:

1. install a registry + tracer and run conflicting transactions;
2. watch branch counters (forks, merges) and histograms accumulate;
3. take a snapshot, do more work, diff the two — per-window counters;
4. render everything as Prometheus text and JSON;
5. replay the recent trace events (fork, merge, GC) as a story.

Run:  python examples/metrics_demo.py
"""

from repro import TardisStore
from repro.obs import (
    MetricsRegistry,
    Tracer,
    export,
    metrics as met,
    tracing as trc,
)


def contended_increments(store, sessions, rounds: int) -> None:
    """Concurrent read-modify-writes on one hot key: forks, then merges."""
    for _ in range(rounds):
        txns = [store.begin(session=s) for s in sessions]
        for txn in txns:
            txn.put("hits", txn.get("hits") + 1)
        for txn in txns:
            txn.commit()  # later committers conflict -> branch
        merge = store.begin_merge(session=sessions[0])
        fork = merge.find_fork_points()[0]
        base = merge.get_for_id("hits", fork)
        merge.put("hits", base + sum(v - base for v in merge.get_all("hits")))
        merge.commit()


def main() -> None:
    registry = MetricsRegistry()
    tracer = Tracer(capacity=256)

    with met.use_registry(registry), trc.use_tracer(tracer):
        store = TardisStore("demo")
        sessions = [store.session("s%d" % i) for i in range(3)]
        store.put("hits", 0, session=sessions[0])

        # -- 1+2: work, then read the registry ----------------------------
        contended_increments(store, sessions, rounds=4)
        print("hits =", store.get("hits", session=sessions[0]))
        data = registry.to_dict()
        print("commits:", data["tardis_txn_commit_total"]["value"])
        print("forks:  ", data["tardis_branch_fork_total"]["value"])
        print("merges: ", data["tardis_branch_merge_total"]["value"])
        fanin = registry.histogram("tardis_merge_parents")
        print("merge fan-in p50=%.1f max=%.0f" % (fanin.p50, fanin.max))

        # -- 3: snapshot / diff a window ----------------------------------
        before = export.snapshot(registry)
        contended_increments(store, sessions, rounds=2)
        window = export.diff(before, export.snapshot(registry))
        print("\nlast window only: %d commits, %d merges" % (
            window["tardis_txn_commit_total"]["value"],
            window["tardis_branch_merge_total"]["value"],
        ))

        # -- 4: exporters --------------------------------------------------
        prom = export.to_prometheus(registry)
        print("\nPrometheus text (first lines):")
        print("\n".join(prom.splitlines()[:6]))
        doc = export.to_json(registry, tracer, event_limit=5, indent=None)
        print("\nJSON document: %d chars" % len(doc))

        # -- 5: the event log as a story ----------------------------------
        print("\nrecent branch events:")
        for event in tracer.events(limit=8):
            attrs = " ".join(
                "%s=%s" % kv for kv in sorted(event.attrs.items())
                if kv[0] in ("state", "parent", "parents", "reason", "removed")
            )
            print("  %-14s %s" % (event.kind, attrs))

    # Outside the context managers the library defaults are restored:
    # the store records nothing further.
    assert not met.DEFAULT.enabled


if __name__ == "__main__":
    main()
