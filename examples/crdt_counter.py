#!/usr/bin/env python
"""CRDTs two ways (§7.2.1): the same counter on TARDiS and classic.

Left: the TARDiS counter — an integer field, incremented with plain
read-modify-write transactions; branch divergence is merged three-way
from the fork point whenever convenient. Right: the classic state-based
PN-counter — two per-replica vectors, element-wise-max merges, every
read summing all entries.

Also demonstrates a two-site TARDiS deployment: increments at both
sites, asynchronous replication, one merge, global convergence.

Run:  python examples/crdt_counter.py
"""

from repro.crdt import MemoryKV, SeqPNCounter, TardisCounter
from repro.replication import Cluster


def classic_demo() -> None:
    print("classic PN-counter (two replicas, explicit vectors):")
    r1 = SeqPNCounter(MemoryKV(), "hits", "replica-1")
    r2 = SeqPNCounter(MemoryKV(), "hits", "replica-2")
    r1.increment(3)
    r2.increment(4)
    r2.decrement(1)
    print("  before merge: r1=%d r2=%d" % (r1.value(), r2.value()))
    r1.merge(r2.state())
    r2.merge(r1.state())
    print("  after merge:  r1=%d r2=%d  (state: P=%s N=%s)"
          % (r1.value(), r2.value(), *map(dict, r1.state())))


def tardis_demo() -> None:
    print("\nTARDiS counter (two geo-replicated sites, plain integers):")
    cluster = Cluster(n_sites=2, default_latency_ms=10)
    us, eu = cluster.stores["us"], cluster.stores["eu"]

    c_us = TardisCounter(us, "hits", session=us.session("web-us"))
    c_us.increment(0)  # seed
    cluster.run(until=50)

    c_eu = TardisCounter(eu, "hits", session=eu.session("web-eu"))
    c_us.increment(3)
    c_eu.increment(4)
    c_eu.decrement(1)
    cluster.run(until=150)

    print("  us sees %d branches before merging" % len(us.dag.leaves()))
    merged = TardisCounter(us, "hits", session=us.session("merger")).merge()
    print("  merge at us -> %d" % merged)
    cluster.run(until=400)
    print("  eu reads %d after replication"
          % TardisCounter(eu, "hits", session=eu.session("reader")).value())
    print("  converged:", cluster.converged("hits"))


def main() -> None:
    classic_demo()
    tardis_demo()


if __name__ == "__main__":
    main()
