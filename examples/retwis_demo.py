#!/usr/bin/env python
"""Retwis on TARDiS (§7.2.2): a Twitter clone with branch-merge timelines.

Posts push onto follower timelines; concurrent posts that touch the same
timeline fork the store instead of blocking each other, and a periodic
resolver merges the branches, deduplicating posts and preserving order.

Run:  python examples/retwis_demo.py
"""

from repro import TardisStore
from repro.apps.retwis import RetwisApp, timeline_key


def main() -> None:
    store = TardisStore("retwis")
    app = RetwisApp(store)

    for user in ("alice", "bruno", "carla"):
        app.create_account(user)
    app.follow("carla", "alice")
    app.follow("carla", "bruno")
    print("carla follows alice and bruno\n")

    app.post("alice", "branching is the fundamental abstraction")
    print("alice posted; carla's timeline:",
          [c for _a, c in app.read_own_timeline("carla")])

    # Two posts race on carla's timeline: both transactions read the same
    # timeline snapshot, so the second commit forks rather than waits.
    t1 = store.begin(session=store.session("retwis:alice"))
    t2 = store.begin(session=store.session("retwis:bruno"))
    for txn, (pid, author, text) in (
        (t1, ((500, "alice"), "alice", "hot take #1")),
        (t2, ((501, "bruno"), "bruno", "hot take #2")),
    ):
        timeline = txn.get(timeline_key("carla"))
        txn.put(timeline_key("carla"), (pid,) + tuple(timeline))
        txn.put("post:%s:%s" % pid, (author, text))
    t1.commit()
    t2.commit()
    print("\nconcurrent posts -> %d branches (no locks, no aborts)"
          % len(store.dag.leaves()))

    resolved = app.merge_branches()
    print("resolver merged %d conflicting key(s)" % resolved)
    print("carla's merged timeline:")
    for author, content in app.read_own_timeline("carla"):
        print("  @%s: %s" % (author, content))


if __name__ == "__main__":
    main()
