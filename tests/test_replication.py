"""Tests for multi-site replication: gossip, caching, partitions, GC modes."""

import random

import pytest

from repro.core.ids import StateId
from repro.obs import metrics as met
from repro.obs.context import trace_id_of
from repro.replication import Cluster, SimNetwork
from repro.replication.cluster import PESSIMISTIC, run_replicated_workload
from repro.replication.replicator import FetchRequest, TxnMessage
from repro.sim.des import Simulator
from repro.workload import RunConfig, YCSBWorkload
from repro.errors import UnknownSiteError


def two_sites(latency=10.0, **kw):
    return Cluster(n_sites=2, default_latency_ms=latency, **kw)


class TestSimNetwork:
    def test_delivery_with_latency(self):
        sim = Simulator()
        net = SimNetwork(sim, default_latency_ms=5)
        inbox = []
        net.connect("b", lambda src, msg: inbox.append((sim.now, src, msg)))
        net.connect("a", lambda src, msg: None)
        net.send("a", "b", "hello")
        sim.run()
        assert inbox == [(5.0, "a", "hello")]

    def test_per_pair_latency(self):
        sim = Simulator()
        net = SimNetwork(sim, default_latency_ms=5)
        net.set_latency("a", "b", 100)
        inbox = []
        net.connect("b", lambda src, msg: inbox.append(sim.now))
        net.send("a", "b", "x")
        sim.run()
        assert inbox == [100.0]

    def test_unknown_site(self):
        net = SimNetwork(Simulator())
        with pytest.raises(UnknownSiteError):
            net.send("a", "nowhere", "x")

    def test_partition_buffers_and_heals(self):
        sim = Simulator()
        net = SimNetwork(sim, default_latency_ms=1)
        inbox = []
        net.connect("b", lambda src, msg: inbox.append(msg))
        net.connect("a", lambda src, msg: None)
        net.partition("a", "b")
        net.send("a", "b", 1)
        net.send("a", "b", 2)
        sim.run()
        assert inbox == []
        net.heal("a", "b")
        sim.run()
        assert inbox == [1, 2]

    def test_broadcast(self):
        sim = Simulator()
        net = SimNetwork(sim, default_latency_ms=1)
        got = {"b": [], "c": []}
        net.connect("a", lambda s, m: None)
        net.connect("b", lambda s, m: got["b"].append(m))
        net.connect("c", lambda s, m: got["c"].append(m))
        net.broadcast("a", "hi")
        sim.run()
        assert got == {"b": ["hi"], "c": ["hi"]}


class TestReplication:
    def test_simple_propagation(self):
        cluster = two_sites()
        a, b = cluster.stores["us"], cluster.stores["eu"]
        a.put("x", 1)
        cluster.run(until=100)
        assert b.get("x") == 1
        assert cluster.replicators["eu"].applied == 1

    def test_state_ids_preserved_across_sites(self):
        cluster = two_sites()
        a, b = cluster.stores["us"], cluster.stores["eu"]
        sid = a.put("x", 1)
        cluster.run(until=100)
        assert sid in b.dag
        assert b.dag.resolve(sid).id == sid

    def test_bidirectional_non_conflicting(self):
        cluster = two_sites()
        a, b = cluster.stores["us"], cluster.stores["eu"]
        a.put("xa", 1)
        b.put("xb", 2)
        cluster.run(until=100)
        # Writes happened concurrently at different sites: each site now
        # holds both branches; values readable per branch.
        assert len(a.dag.leaves()) == 2
        assert len(b.dag.leaves()) == 2

    def test_cross_site_conflict_and_merge(self):
        cluster = two_sites()
        a, b = cluster.stores["us"], cluster.stores["eu"]
        a.put("x", 0)
        cluster.run(until=100)
        # Conflicting increments at both sites (the Wikipedia scenario).
        ta = a.begin(session=a.session("alice"))
        ta.put("x", ta.get("x") + 1)
        ta.commit()
        tb = b.begin(session=b.session("bruno"))
        tb.put("x", tb.get("x") + 5)
        tb.commit()
        cluster.run(until=300)
        # Both sites see both branches.
        for store in (a, b):
            merge = store.begin_merge()
            assert sorted(merge.get_all("x")) == [1, 5]
            assert merge.find_conflict_writes() == ["x"]
            merge.abort()
        # Merge at one site; the merge replicates.
        merge = a.begin_merge(session=a.session("alice"))
        fork = merge.find_fork_points()[0]
        base = merge.get_for_id("x", fork)
        merge.put("x", base + sum(v - base for v in merge.get_all("x")))
        merge.commit()
        cluster.run(until=600)
        assert cluster.converged("x")
        tb2 = b.begin(session=b.session("checker"))
        assert tb2.get("x") == 6  # 0 + 1 + 5, the three-way merge
        tb2.commit()

    def test_out_of_order_delivery_cached(self):
        """A child arriving before its parent is cached, then applied."""
        sim = Simulator()
        cluster = Cluster(n_sites=2, sim=sim, default_latency_ms=10)
        b = cluster.stores["eu"]
        rep_b = cluster.replicators["eu"]
        parent = StateId(1, "us")
        child = StateId(2, "us")
        # Deliver the child first, directly.
        rep_b.handle("us", TxnMessage(child, (parent,), {"k": 2}, ("k",)))
        assert rep_b.pending_count == 1
        assert child not in b.dag
        rep_b.handle("us", TxnMessage(parent, (b.dag.root.id,), {"k": 1}, ("k",)))
        assert rep_b.pending_count == 0
        assert child in b.dag
        assert b.get("k") == 2

    def test_duplicate_delivery_idempotent(self):
        cluster = two_sites()
        rep_b = cluster.replicators["eu"]
        msg = TxnMessage(StateId(1, "us"), (cluster.stores["eu"].dag.root.id,), {"k": 1}, ("k",))
        rep_b.handle("us", msg)
        rep_b.handle("us", msg)
        assert rep_b.applied == 1
        assert cluster.stores["eu"].get("k") == 1

    def test_partition_then_heal_converges(self):
        cluster = two_sites()
        a, b = cluster.stores["us"], cluster.stores["eu"]
        a.put("x", 0)
        cluster.run(until=100)
        cluster.network.partition("us", "eu")
        a.put("x", 1)
        b_t = b.begin()
        b_t.put("y", 2)
        b_t.commit()
        cluster.run(until=200)
        assert b.get("x") == 0  # partition holds
        cluster.network.heal("us", "eu")
        cluster.run(until=400)
        assert b.get("x", session=b.session("fresh")) in (0, 1)
        t = b.begin(session=b.session("reader"))
        # The replicated branch is present even if not merged.
        assert len(b.dag.leaves()) == 2
        t.commit()

    def test_fetch_recovers_promoted_state(self):
        """Optimistic GC: a flushed promotion is refetched from a peer.

        Both sites share a replicated chain and collect it; ``eu``
        additionally flushes its promotion table. A late transaction
        referencing a collected state then arrives at ``eu``: the fetch
        returns the peer's promotion, which eu adopts and applies under.
        """
        cluster = two_sites()
        a, b = cluster.stores["us"], cluster.stores["eu"]
        sess = a.session("writer")
        old = a.put("x", 1, session=sess)
        for i in range(3):
            t = a.begin(session=sess)
            t.put("x", i + 2)
            t.commit()
        cluster.run(until=200)
        assert old in b.dag
        # Both sites collect the chain; eu flushes promotions too.
        sess.place_ceiling()
        a.collect_garbage()  # us keeps its promotion table
        sess_b = b.session("local")
        t = b.begin(session=sess_b)
        t.put("z", 1)
        t.commit()
        sess_b.place_ceiling()
        b.collect_garbage(flush_promotions=True)
        assert old not in b.dag  # flushed
        assert old in a.dag      # promoted, promotion retained
        # A late transaction parented at the collected state reaches eu.
        # eu fetched the promotion, but it flushed past the target too:
        # the dependent transaction is aborted (dropped), as §6.4 says.
        late = TxnMessage(StateId(999, "us"), (old,), {"x": 99}, ("x",))
        cluster.replicators["eu"].handle("us", late)
        cluster.run(until=500)
        assert cluster.replicators["eu"].fetches >= 1
        assert cluster.replicators["eu"].dropped == 1
        assert cluster.replicators["eu"].pending_count == 0

    def test_fetch_promotion_adopted_when_target_live(self):
        """Optimistic GC: the fetched promotion resolves the missing id."""
        cluster = two_sites()
        a, b = cluster.stores["us"], cluster.stores["eu"]
        sess = a.session("writer")
        old = a.put("x", 1, session=sess)
        for i in range(3):
            t = a.begin(session=sess)
            t.put("x", i + 2)
            t.commit()
        tip = sess.last_commit_id
        cluster.run(until=200)
        # eu collects up to the chain tip and flushes; the tip stays live.
        b.gc.place_ceiling("local", tip)
        b.collect_garbage(flush_promotions=True)
        assert old not in b.dag
        sess.place_ceiling()
        a.collect_garbage()  # us promotes old -> tip, keeps the table
        assert a.dag.resolve(old).id == tip
        late = TxnMessage(StateId(999, "us"), (old,), {"x": 99}, ("x",))
        cluster.replicators["eu"].handle("us", late)
        cluster.run(until=500)
        assert StateId(999, "us") in b.dag
        assert b.dag.resolve(StateId(999, "us")).parents[0].id == tip

    def test_fetch_content_recovers_lost_gossip(self):
        """A dropped gossip message is refetched by content on demand."""
        cluster = two_sites()
        a, b = cluster.stores["us"], cluster.stores["eu"]
        # Cut the link so eu misses the first commit entirely...
        cluster.network.partition("us", "eu")
        lost = a.put("x", 1)
        # ...simulate message loss: discard the buffer, then heal.
        assert cluster.network.drop_buffered("us", "eu") == 1
        cluster.network.heal("us", "eu")
        child = a.put("x", 2)
        cluster.run(until=400)
        # eu cached the child, fetched the lost parent, applied both.
        assert lost in b.dag
        assert child in b.dag
        assert b.get("x") == 2

    def test_pessimistic_gc_waits_for_peers(self):
        cluster = Cluster(n_sites=2, default_latency_ms=10, gc_mode=PESSIMISTIC)
        a = cluster.stores["us"]
        sess = a.session("w")
        for i in range(5):
            t = a.begin(session=sess)
            t.put("x", i)
            t.commit()
        sess.place_ceiling()
        # Peers have not applied anything yet: only the shared original
        # root (present at every site from birth) may be collected.
        stats = a.collect_garbage()
        assert stats.states_removed <= 1
        held_back = stats.live_states
        assert held_back >= 4
        cluster.run(until=200)
        stats = a.collect_garbage()
        assert stats.states_removed > 0
        assert stats.live_states < held_back

    def test_unknown_gc_mode(self):
        with pytest.raises(ValueError):
            Cluster(n_sites=2, gc_mode="yolo")


class TestReplicatedWorkload:
    def test_aggregate_scales_with_sites(self):
        results = [
            run_replicated_workload(
                n,
                lambda: YCSBWorkload(n_keys=200),
                RunConfig(n_clients=4, duration_ms=80, warmup_ms=20, cores=2,
                          maintenance_interval_ms=10),
            )
            for n in (1, 2)
        ]
        assert results[1].aggregate_tps > 1.5 * results[0].aggregate_tps
        assert results[1].messages > 0

    def test_per_site_results_reported(self):
        result = run_replicated_workload(
            2,
            lambda: YCSBWorkload(n_keys=200),
            RunConfig(n_clients=2, duration_ms=60, warmup_ms=10, cores=2,
                      maintenance_interval_ms=10),
        )
        assert len(result.per_site) == 2
        assert all(r.commits > 0 for r in result.per_site)
        assert "sites=2" in result.summary()


class TestNetworkMetrics:
    """tardis_net_* metrics mirror the SimNetwork instance counters."""

    def net_metrics(self, reg):
        data = reg.to_dict()
        return {
            name: entry["value"]
            for name, entry in data.items()
            if name.startswith("tardis_net_")
        }

    def test_send_deliver_mirrored(self):
        reg = met.MetricsRegistry()
        with met.use_registry(reg):
            cluster = two_sites()
            cluster.stores["us"].put("x", 1)
            cluster.run(until=100)
        net = cluster.network
        mirrored = self.net_metrics(reg)
        assert mirrored["tardis_net_messages_sent_total"] == net.messages_sent
        assert (
            mirrored["tardis_net_messages_delivered_total"]
            == net.messages_delivered
        )
        assert net.messages_sent > 0

    def test_partition_heal_drop_mirrored(self):
        reg = met.MetricsRegistry()
        with met.use_registry(reg):
            cluster = two_sites()
            a = cluster.stores["us"]
            cluster.network.partition("us", "eu")
            a.put("x", 1)
            a.put("x", 2)
            cluster.run(until=50)
            assert cluster.network.buffered_count == 2
            dropped = cluster.network.drop_buffered("us", "eu")
            assert dropped == 2
            a.put("x", 3)  # buffers again behind the same partition
            cluster.network.heal("us", "eu")
            cluster.run(until=200)
        net = cluster.network
        mirrored = self.net_metrics(reg)
        assert mirrored["tardis_net_buffered_total"] == net.messages_buffered == 3
        assert mirrored["tardis_net_buffered_dropped_total"] == 2
        assert mirrored["tardis_net_buffered_flushed_total"] == 1

    def test_counters_reconcile_at_any_instant(self):
        """sent == delivered + in_flight + buffered + dropped, always."""
        cluster = two_sites(latency=25.0)
        net = cluster.network
        a, b = cluster.stores["us"], cluster.stores["eu"]

        def reconciled():
            return net.messages_sent == (
                net.messages_delivered
                + net.in_flight
                + net.buffered_count
                + net.buffered_dropped
            )

        a.put("x", 1)
        assert net.in_flight == 1 and reconciled()  # mid-flight
        cluster.run(until=100)
        assert net.in_flight == 0 and reconciled()  # delivered
        net.partition("us", "eu")
        a.put("x", 2)
        b.put("y", 9)
        assert net.buffered_count == 2 and reconciled()  # parked
        net.drop_buffered("us", "eu")
        assert net.buffered_dropped == 2 and reconciled()  # lost
        a.put("x", 3)
        net.heal("us", "eu")
        assert net.buffered_count == 0 and reconciled()  # flushed to flight
        cluster.run(until=300)
        assert reconciled()


class TestTracePropagation:
    """Trace contexts ride replication across sites (the tentpole)."""

    def test_context_survives_partition_buffering(self):
        cluster = Cluster(n_sites=2, default_latency_ms=10, trace=True)
        a = cluster.stores["us"]
        cluster.network.partition("us", "eu")
        sid = a.put("x", 1)
        cluster.run(until=50)  # buffered: nothing applied at eu
        applies = [
            e for e in cluster.events(kind="repl.apply")
            if e.attrs.get("site") == "eu"
        ]
        assert applies == []
        cluster.network.heal("us", "eu")
        cluster.run(until=200)
        applies = [
            e for e in cluster.events(kind="repl.apply")
            if e.attrs.get("site") == "eu"
        ]
        assert [e.attrs["trace"] for e in applies] == [trace_id_of(sid)]
        # the full timeline reads commit -> send -> apply
        kinds = [e.kind for e in cluster.timeline(trace_id_of(sid))]
        assert kinds[0] == "txn.commit"
        assert "repl.send" in kinds and "repl.apply" in kinds

    def test_three_site_fuzz_every_apply_resolves_to_one_commit(self):
        """Randomized puts over 3 sites: every repl.apply trace id maps
        back to exactly one txn.commit at the originating site."""
        rng = random.Random(20160814)
        cluster = Cluster(n_sites=3, trace=True, trace_capacity=65536)
        sites = cluster.sites
        for step in range(120):
            site = rng.choice(sites)
            key = "k%d" % rng.randrange(8)
            cluster.stores[site].put(key, (site, step))
            if rng.random() < 0.3:
                cluster.run(until=cluster.sim.now + rng.uniform(5.0, 120.0))
        cluster.run()  # drain all replication traffic

        assert all(t.dropped == 0 for t in cluster.tracers.values())
        commits = {}
        for event in cluster.events(kind="txn.commit"):
            commits.setdefault(event.attrs["trace"], []).append(event)
        for event in cluster.events(kind="repl.apply"):
            trace = event.attrs["trace"]
            origin = commits.get(trace)
            assert origin is not None, "apply %r has no commit" % trace
            assert len(origin) == 1, "trace %r committed %d times" % (
                trace, len(origin),
            )
            # the commit happened at the trace id's origin site, the
            # apply anywhere else
            origin_site = origin[0].attrs["site"]
            assert trace.endswith("@" + origin_site)
            assert event.attrs["site"] != origin_site
        # with 120 puts over 3 sites there was real replication traffic
        applies = cluster.events(kind="repl.apply")
        assert len(applies) >= 120  # each commit applies at >= 1 peer
