"""Tests for the baseline systems: lock manager, 2PL store, OCC store."""

import pytest

from repro.baselines import (
    LockManager,
    LockMode,
    OCCStore,
    TwoPhaseLockingStore,
)
from repro.errors import DeadlockError, KeyNotFound, TransactionClosed, ValidationError


class TestLockManager:
    def test_shared_locks_compatible(self):
        lm = LockManager()
        assert lm.acquire(1, "k", LockMode.SHARED).granted
        assert lm.acquire(2, "k", LockMode.SHARED).granted
        assert len(lm.holders("k")) == 2

    def test_exclusive_blocks_shared(self):
        lm = LockManager()
        assert lm.acquire(1, "k", LockMode.EXCLUSIVE).granted
        req = lm.acquire(2, "k", LockMode.SHARED)
        assert not req.granted
        assert lm.waiting("k") == [req]

    def test_shared_blocks_exclusive(self):
        lm = LockManager()
        assert lm.acquire(1, "k", LockMode.SHARED).granted
        assert not lm.acquire(2, "k", LockMode.EXCLUSIVE).granted

    def test_reacquire_held_lock(self):
        lm = LockManager()
        assert lm.acquire(1, "k", LockMode.SHARED).granted
        assert lm.acquire(1, "k", LockMode.SHARED).granted
        assert lm.acquire(1, "k", LockMode.EXCLUSIVE).granted  # upgrade, sole holder
        assert lm.holders("k")[1] == LockMode.EXCLUSIVE
        # X holder re-requesting S keeps X.
        assert lm.acquire(1, "k", LockMode.SHARED).granted
        assert lm.holders("k")[1] == LockMode.EXCLUSIVE

    def test_release_wakes_fifo(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.EXCLUSIVE)
        r2 = lm.acquire(2, "k", LockMode.EXCLUSIVE)
        r3 = lm.acquire(3, "k", LockMode.EXCLUSIVE)
        woken = lm.release_all(1)
        assert woken == [r2]
        assert r2.granted
        assert not r3.granted
        assert lm.release_all(2) == [r3]

    def test_release_wakes_reader_batch(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.EXCLUSIVE)
        r2 = lm.acquire(2, "k", LockMode.SHARED)
        r3 = lm.acquire(3, "k", LockMode.SHARED)
        woken = lm.release_all(1)
        assert set(id(w) for w in woken) == {id(r2), id(r3)}

    def test_writer_not_starved_behind_queued_writer(self):
        lm = LockManager()
        lm.acquire(1, "k", LockMode.SHARED)
        rw = lm.acquire(2, "k", LockMode.EXCLUSIVE)
        # A new reader must queue behind the queued writer.
        rr = lm.acquire(3, "k", LockMode.SHARED)
        assert not rr.granted
        woken = lm.release_all(1)
        assert woken[0] is rw

    def test_deadlock_detected(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.EXCLUSIVE)
        lm.acquire(2, "b", LockMode.EXCLUSIVE)
        lm.acquire(1, "b", LockMode.EXCLUSIVE)  # 1 waits on 2
        with pytest.raises(DeadlockError):
            lm.acquire(2, "a", LockMode.EXCLUSIVE)  # 2 waits on 1: cycle
        assert lm.deadlocks == 1
        # The victim's request was not left in the queue.
        assert all(r.txn_id != 2 for r in lm.waiting("a"))

    def test_no_false_deadlock(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.EXCLUSIVE)
        lm.acquire(2, "a", LockMode.EXCLUSIVE)
        lm.acquire(3, "a", LockMode.EXCLUSIVE)  # chain, no cycle
        assert lm.deadlocks == 0

    def test_release_all_cleans_up(self):
        lm = LockManager()
        lm.acquire(1, "a", LockMode.SHARED)
        lm.acquire(1, "b", LockMode.EXCLUSIVE)
        assert sorted(lm.held_keys(1)) == ["a", "b"]
        lm.release_all(1)
        assert lm.held_keys(1) == []
        assert lm.holders("a") == {}


class TestTwoPhaseLockingStore:
    def test_single_threaded_transactions(self):
        store = TwoPhaseLockingStore()
        t = store.begin()
        t.put("x", 1)
        assert t.get("x") == 1
        t.commit()
        t2 = store.begin()
        assert t2.get("x") == 1
        with pytest.raises(KeyNotFound):
            t2.get("missing")
        assert t2.get("missing", default=0) == 0
        t2.commit()
        assert store.commits == 2

    def test_abort_discards(self):
        store = TwoPhaseLockingStore()
        t = store.begin()
        t.put("x", 1)
        t.commit()
        t2 = store.begin()
        t2.put("x", 99)
        t2.abort()
        t3 = store.begin()
        assert t3.get("x") == 1
        assert store.aborts == 1

    def test_writer_blocks_reader(self):
        store = TwoPhaseLockingStore()
        w = store.begin()
        r = store.begin()
        assert store.write(w, "x", 1)[0] == "ok"
        status, request = store.read(r, "x")
        assert status == "wait"
        assert r.blocked_on is request
        woken = store.commit(w)
        assert woken and woken[0].txn_id == r.txn_id
        # Retry after wakeup: lock now held.
        assert store.read(r, "x") == ("ok", 1)

    def test_reader_blocks_writer(self):
        store = TwoPhaseLockingStore()
        t = store.begin()
        t.put("x", 0)
        t.commit()
        r = store.begin()
        w = store.begin()
        assert store.read(r, "x")[0] == "ok"
        assert store.write(w, "x", 1)[0] == "wait"
        store.commit(r)
        assert store.write(w, "x", 1)[0] == "ok"
        store.commit(w)
        check = store.begin()
        assert check.get("x") == 1

    def test_deadlock_propagates(self):
        store = TwoPhaseLockingStore()
        t1, t2 = store.begin(), store.begin()
        store.write(t1, "a", 1)
        store.write(t2, "b", 2)
        assert store.write(t1, "b", 1)[0] == "wait"
        with pytest.raises(DeadlockError):
            store.write(t2, "a", 2)

    def test_closed_transaction_rejected(self):
        store = TwoPhaseLockingStore()
        t = store.begin()
        t.commit()
        with pytest.raises(TransactionClosed):
            store.read(t, "x")


class TestOCCStore:
    def test_basic_commit(self):
        store = OCCStore()
        t = store.begin()
        t.put("x", 1)
        t.commit()
        t2 = store.begin()
        assert t2.get("x") == 1
        t2.commit()

    def test_missing_key(self):
        store = OCCStore()
        t = store.begin()
        with pytest.raises(KeyNotFound):
            t.get("nope")
        assert t.get("nope", default=5) == 5
        t.commit()

    def test_validation_failure_aborts(self):
        store = OCCStore()
        t1 = store.begin()
        t2 = store.begin()
        t1.get("x", default=0)
        t2.put("x", 1)
        t2.commit()
        t1.put("y", 1)
        with pytest.raises(ValidationError):
            t1.commit()
        assert t1.status == "aborted"
        assert store.validation_failures == 1

    def test_blind_writes_do_not_conflict(self):
        store = OCCStore()
        t1 = store.begin()
        t2 = store.begin()
        t1.put("x", 1)
        t2.put("x", 2)
        t1.commit()
        t2.commit()  # no reads -> validation passes
        t3 = store.begin()
        assert t3.get("x") == 2
        t3.commit()

    def test_read_only_not_in_history(self):
        """Read-write txns are not validated against read-only ones."""
        store = OCCStore()
        ro = store.begin()
        rw = store.begin()
        ro.get("x", default=0)
        ro.commit()
        rw.get("y", default=0)
        rw.put("y", 1)
        rw.commit()  # must not be invalidated by the read-only commit
        assert store.commits == 2
        assert store._history[-1][1] == frozenset({"y"})

    def test_read_only_still_validated(self):
        """Read-only txns validate their own reads (§7.1.2)."""
        store = OCCStore()
        ro = store.begin()
        ro.get("x", default=0)
        w = store.begin()
        w.put("x", 1)
        w.commit()
        with pytest.raises(ValidationError):
            ro.commit()

    def test_validation_scope_is_lifetime(self):
        store = OCCStore()
        w = store.begin()
        w.put("x", 1)
        w.commit()
        # t begins after w committed: w is not in t's validation scope.
        t = store.begin()
        t.get("x")
        t.put("z", 1)
        t.commit()
        assert store.validation_failures == 0

    def test_history_pruned(self):
        store = OCCStore()
        for i in range(200):
            t = store.begin()
            t.put("k%d" % i, i)
            t.commit()
        assert len(store._history) <= 64

    def test_at_least_one_committer_wins(self):
        """OCC guarantees the first committer succeeds (§7.1.3)."""
        store = OCCStore()
        txns = [store.begin() for _ in range(5)]
        for t in txns:
            t.get("hot", default=0)
            t.put("hot", t.txn_id)
        outcomes = []
        for t in txns:
            try:
                t.commit()
                outcomes.append(True)
            except ValidationError:
                outcomes.append(False)
        assert outcomes[0] is True
        assert outcomes[1:] == [False] * 4
