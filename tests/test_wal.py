"""Tests for the write-ahead commit log (§6.5)."""

import pytest

from repro.errors import CorruptLogError
from repro.storage.wal import CHECKPOINT, COMMIT, LogRecord, WriteAheadLog


def commit_ids(path):
    return [
        r.payload["state_id"] for r in WriteAheadLog.read(path) if r.kind == COMMIT
    ]


class TestWal:
    def test_append_and_read(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append_commit((1, "A"), ((0, ""),), ("x", "y"))
            wal.append_commit((2, "A"), ((1, "A"),), ("x",), values={"x": 42})
        records = list(WriteAheadLog.read(path))
        assert len(records) == 2
        assert records[0].kind == COMMIT
        assert records[0].payload["parent_ids"] == ((0, ""),)
        assert records[0].payload["write_keys"] == ("x", "y")
        assert "values" not in records[0].payload
        assert records[1].payload["values"] == {"x": 42}

    def test_checkpoint_record(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append_checkpoint((5, "A"))
        records = list(WriteAheadLog.read(path))
        assert records[0].kind == CHECKPOINT
        assert records[0].payload["state_id"] == (5, "A")

    def test_async_buffering(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync=False)
        wal.append_commit((1, "A"), (), ("x",))
        assert wal.pending() == 1
        # Nothing durable before flush.
        assert list(WriteAheadLog.read(path)) == []
        wal.flush()
        assert wal.pending() == 0
        assert len(list(WriteAheadLog.read(path))) == 1
        wal.close()

    def test_drop_buffered_simulates_crash(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path, sync=False)
        wal.append_commit((1, "A"), (), ("x",))
        wal.flush()
        wal.append_commit((2, "A"), (), ("y",))
        assert wal.drop_buffered() == 1
        wal.close()
        assert commit_ids(path) == [(1, "A")]

    def test_torn_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append_commit((1, "A"), (), ("x",))
            wal.append_commit((2, "A"), (), ("y",))
        # Truncate mid-way through the last record.
        size = __import__("os").path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        assert commit_ids(path) == [(1, "A")]
        with pytest.raises(CorruptLogError):
            list(WriteAheadLog.read(path, strict=True))

    def test_mid_log_corruption_raises(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append_commit((1, "A"), (), ("x",))
            wal.append_commit((2, "A"), (), ("y",))
        with open(path, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xff\xff")
        with pytest.raises(CorruptLogError):
            list(WriteAheadLog.read(path))

    def test_compact_drops_old_commits(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            for i in range(1, 6):
                wal.append_commit((i, "A"), (), ("k%d" % i,))
        kept = WriteAheadLog.compact(path, keep_from_state=(4, "A"))
        assert kept == 2
        assert commit_ids(path) == [(4, "A"), (5, "A")]

    def test_reopen_appends(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append_commit((1, "A"), (), ())
        with WriteAheadLog(path) as wal:
            wal.append_commit((2, "A"), (), ())
        assert commit_ids(path) == [(1, "A"), (2, "A")]

    def test_record_roundtrip(self):
        rec = LogRecord(COMMIT, {"state_id": (3, "B"), "parent_ids": (), "write_keys": ("a",)})
        assert LogRecord.decode(rec.encode()[8:]).payload == rec.payload
