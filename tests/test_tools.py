"""Tests for the tooling: DOT export, store summaries, CLI."""

import json

import pytest

from repro import TardisStore
from repro.tools import dag_to_dot, describe_store, store_summary
from repro.tools.cli import main


@pytest.fixture
def branched_store():
    store = TardisStore("demo")
    a, b = store.session("a"), store.session("b")
    store.put("x", 0, session=a)
    t1, t2 = store.begin(session=a), store.begin(session=b)
    t1.put("x", t1.get("x") + 1)
    t2.put("x", t2.get("x") + 2)
    t1.commit()
    t2.commit()
    m = store.begin_merge(session=a)
    m.put("x", 3)
    m.commit()
    return store


class TestDot:
    def test_valid_dot_structure(self, branched_store):
        dot = dag_to_dot(branched_store)
        assert dot.startswith("digraph tardis {")
        assert dot.endswith("}")
        # one node line per state
        assert dot.count("->") >= len(branched_store.dag) - 1

    def test_styles_reflect_roles(self, branched_store):
        dot = dag_to_dot(branched_store)
        assert "lightblue" in dot  # fork point
        assert "khaki" in dot      # merge state
        assert "palegreen" in dot  # leaf

    def test_write_labels(self, branched_store):
        dot = dag_to_dot(branched_store)
        assert "{x}" in dot
        bare = dag_to_dot(branched_store, show_writes=False)
        assert "{x}" not in bare

    def test_label_key_cap(self):
        store = TardisStore("demo")
        with store.begin() as t:
            for i in range(10):
                t.put("key%d" % i, i)
        dot = dag_to_dot(store, max_label_keys=2)
        assert "..." in dot


class TestSummary:
    def test_summary_fields(self, branched_store):
        summary = store_summary(branched_store)
        assert summary["states"] == len(branched_store.dag)
        assert summary["fork_points"] == 1
        assert summary["merges"] == 1
        assert summary["commits"] == 4
        assert summary["leaves"] == 1

    def test_describe_store(self, branched_store):
        text = describe_store(branched_store, keys=["x"])
        assert "site 'demo'" in text
        assert "'x'" in text and "3" in text
        assert "branches" in text


class TestCli:
    def test_bench_command(self, capsys):
        rc = main([
            "bench", "--system", "tardis", "--mix", "read-heavy",
            "--clients", "2", "--duration", "20", "--cores", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tardis" in out and "txn/s" in out

    def test_bench_json(self, capsys):
        rc = main([
            "bench", "--system", "bdb", "--mix", "write-heavy",
            "--clients", "2", "--duration", "20", "--cores", "2", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "bdb"
        assert payload["throughput_tps"] > 0
        assert set(payload["op_breakdown_ms"]) == {"begin", "get", "put", "commit"}

    def test_demo_command(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "counter" in out

    def test_demo_dot(self, capsys):
        assert main(["demo", "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")

    def test_metrics_command(self, capsys):
        rc = main([
            "metrics", "--mix", "write-heavy",
            "--clients", "4", "--duration", "40", "--cores", "2",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "-- branches" in out
        assert "conflict_rate=" in out
        assert "-- gc debt" in out
        assert "tardis_txn_commit_total" in out
        assert "leaf " in out

    def test_metrics_command_leaves_defaults_restored(self):
        from repro.obs import metrics as met
        from repro.obs import tracing as trc

        before_reg, before_trc = met.DEFAULT, trc.DEFAULT
        assert main(["metrics", "--clients", "2", "--duration", "20",
                     "--cores", "2"]) == 0
        assert met.DEFAULT is before_reg
        assert trc.DEFAULT is before_trc

    def test_metrics_json(self, capsys):
        rc = main([
            "metrics", "--mix", "mixed",
            "--clients", "2", "--duration", "30", "--cores", "2",
            "--events", "5", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["tardis_txn_begin_total"]["value"] > 0
        assert len(payload["events"]) <= 5

    def test_metrics_prometheus(self, capsys):
        rc = main([
            "metrics", "--system", "bdb", "--mix", "write-heavy",
            "--clients", "2", "--duration", "30", "--cores", "2",
            "--prometheus",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE baseline_2pl_commit_total counter" in out
        # no branch panel for a non-TARDiS system, but the dump works
        assert "tardis_branch_fork_total" not in out

    def test_recover_command(self, tmp_path, capsys):
        wal = str(tmp_path / "wal.log")
        store = TardisStore("A", wal_path=wal)
        store.put("x", 42)
        store.close()
        assert main(["recover", wal]) == 0
        out = capsys.readouterr().out
        assert '"replayed": 1' in out
        assert "recovered" in out


class TestTraceCommand:
    def test_trace_prints_multi_site_timeline(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        # commit at the origin, replicate, apply at each peer, merge
        assert out.startswith("trace s1@us:")
        assert "3 sites" in out
        assert "txn.commit" in out
        assert "repl.send" in out
        assert "repl.apply" in out
        assert "branch.merge" in out
        # the apply lands at both peers
        apply_sites = {
            line.split()[1]
            for line in out.splitlines()
            if "repl.apply" in line
        }
        assert apply_sites >= {"eu", "asia"}

    def test_trace_unknown_txn_lists_known(self, capsys):
        assert main(["trace", "--txn", "s999@zz"]) == 1
        out = capsys.readouterr().out
        assert "no events for trace 's999@zz'" in out
        assert "s1@us" in out  # known traces are suggested

    def test_trace_dump_then_flight_pretty_print(self, tmp_path, capsys):
        dump = str(tmp_path / "flight.json")
        assert main(["trace", "--dump", dump]) == 0
        capsys.readouterr()  # discard the timeline output
        with open(dump) as handle:
            doc = json.load(handle)
        assert doc["flight_schema"] == 1
        assert doc["dag"].keys() == {"us", "eu", "asia"}
        assert main(["flight", dump]) == 0
        out = capsys.readouterr().out
        assert "FLIGHT RECORDER DUMP" in out
        assert "-- state DAGs" in out
        assert "-- last" in out and "trace events" in out
        assert "tardis_branch_count@us" in out
