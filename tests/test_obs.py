"""Tests for the observability subsystem (repro.obs)."""

import json
import math
import random
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Tracer,
    export,
)
from repro.obs import metrics as met
from repro.obs import tracing as trc


class TestCounterGauge:
    def test_counter(self):
        c = Counter("c")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.to_dict() == {"type": "counter", "value": 6}

    def test_counter_merge(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7

    def test_gauge(self):
        g = Gauge("g")
        g.set(10.0)
        g.add(-2.5)
        assert g.value == 7.5
        other = Gauge("g")
        other.set(2.5)
        g.merge(other)  # site gauges merge by sum
        assert g.value == 10.0


class TestHistogramBuckets:
    def test_zero_and_negative_hit_zero_bucket(self):
        assert Histogram.bucket_index(0.0) is None
        assert Histogram.bucket_index(-1.0) is None
        h = Histogram("h")
        h.record(0.0)
        h.record(-3.0)
        assert h.count == 2
        assert h.quantile(0.5) == 0.0

    def test_value_falls_within_its_bucket_bounds(self):
        rng = random.Random(7)
        values = [rng.uniform(1e-6, 1e6) for _ in range(200)]
        values += [1e-9, 0.5, 1.0, 2.0, 1023.999, 1024.0, 1e12]
        for v in values:
            index = Histogram.bucket_index(v)
            lo, hi = Histogram.bucket_bounds(index)
            assert lo <= v < hi or math.isclose(v, lo), v
            # relative bucket width bounds the quantile error
            assert (hi - lo) / lo <= 1.0 / Histogram.SUBBUCKETS + 1e-12

    def test_bucket_indices_are_monotonic_in_value(self):
        values = sorted(abs(math.sin(i)) * 10**(i % 7) + 1e-9 for i in range(1, 300))
        indices = [Histogram.bucket_index(v) for v in values]
        assert indices == sorted(indices)

    def test_power_of_two_boundaries(self):
        # frexp(2**k) == (0.5, k+1): each power of two starts its octave.
        for k in (-3, 0, 1, 10):
            index = Histogram.bucket_index(2.0 ** k)
            lo, _hi = Histogram.bucket_bounds(index)
            assert math.isclose(lo, 2.0 ** k)

    def test_min_max_sum_mean(self):
        h = Histogram("h")
        for v in (1.0, 2.0, 3.0):
            h.record(v)
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.sum == 6.0
        assert h.mean == 2.0

    def test_empty_histogram_queries(self):
        h = Histogram("h")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.min == 0.0
        assert h.max == 0.0
        assert h.quantile(0.99) == 0.0
        assert h.buckets() == []


class TestHistogramQuantiles:
    def test_quantile_relative_error_bound(self):
        """Estimates stay within the documented 1/SUBBUCKETS bound."""
        rng = random.Random(42)
        samples = [rng.expovariate(1.0 / 5.0) + 0.01 for _ in range(10_000)]
        h = Histogram("lat")
        for s in samples:
            h.record(s)
        samples.sort()
        bound = 1.0 / Histogram.SUBBUCKETS
        for q in (0.10, 0.50, 0.90, 0.99, 0.999):
            exact = samples[min(len(samples) - 1, math.ceil(q * len(samples)) - 1)]
            estimate = h.quantile(q)
            assert abs(estimate - exact) / exact <= bound, q

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("h")
        h.record(5.0)
        assert h.quantile(0.0) == 5.0
        assert h.quantile(1.0) == 5.0

    def test_merge_equals_union(self):
        rng = random.Random(3)
        a, b, union = Histogram("h"), Histogram("h"), Histogram("h")
        for _ in range(500):
            v = rng.lognormvariate(0, 2)
            (a if rng.random() < 0.5 else b).record(v)
            union.record(v)
        a.merge(b)
        assert a.count == union.count
        assert a.sum == pytest.approx(union.sum)
        assert a.min == union.min
        assert a.max == union.max
        assert a.buckets() == union.buckets()
        for q in (0.5, 0.9, 0.99):
            assert a.quantile(q) == union.quantile(q)

    def test_percentile_and_properties(self):
        h = Histogram("h")
        for v in range(1, 101):
            h.record(float(v))
        assert h.percentile(50) == h.p50
        assert h.percentile(99) == h.p99
        assert h.p50 == pytest.approx(50.0, rel=1.0 / Histogram.SUBBUCKETS)
        assert h.p99 == pytest.approx(99.0, rel=1.0 / Histogram.SUBBUCKETS)


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1
        assert "a" in reg
        assert reg.names() == ["a"]

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_disabled_recorders_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c")
        reg.observe("h", 1.0)
        reg.set_gauge("g", 2.0)
        assert len(reg) == 0

    def test_convenience_recorders(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.observe("h", 1.5)
        reg.set_gauge("g", 3.0)
        data = reg.to_dict()
        assert data["c"]["value"] == 2
        assert data["h"]["count"] == 1
        assert data["g"]["value"] == 3.0

    def test_registry_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        b.observe("h", 4.0)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.histogram("h").count == 1

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.reset()
        assert len(reg) == 0

    def test_thread_safety_under_concurrent_record(self):
        """No samples lost with many threads hammering one registry."""
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 2_000

        def work(seed):
            rng = random.Random(seed)
            for _ in range(per_thread):
                reg.inc("ops")
                reg.observe("lat", rng.random() + 0.001)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("ops").value == n_threads * per_thread
        hist = reg.histogram("lat")
        assert hist.count == n_threads * per_thread
        assert sum(c for _ub, c in hist.buckets()) == hist.count

    def test_default_registry_swap(self):
        mine = MetricsRegistry()
        previous = met.set_default_registry(mine)
        try:
            assert met.default_registry() is mine
            met.DEFAULT.inc("x")
            assert mine.counter("x").value == 1
        finally:
            met.set_default_registry(previous)
        assert met.default_registry() is previous

    def test_use_registry_context(self):
        mine = MetricsRegistry()
        original = met.DEFAULT
        with met.use_registry(mine) as active:
            assert active is mine
            assert met.DEFAULT is mine
        assert met.DEFAULT is original


class TestTracer:
    def test_event_recording_and_filtering(self):
        tr = Tracer()
        tr.event("branch.fork", state="s1", parent="s0")
        tr.event("branch.merge", state="s2")
        assert len(tr) == 2
        forks = tr.events(kind="branch.fork")
        assert len(forks) == 1
        assert forks[0].attrs["state"] == "s1"
        assert len(tr.events(limit=1)) == 1
        assert tr.events(limit=0) == []  # not "everything" via [-0:]

    def test_ring_buffer_bounded(self):
        tr = Tracer(capacity=10)
        for i in range(25):
            tr.event("tick", i=i)
        events = tr.events()
        assert len(events) == 10
        assert [e.attrs["i"] for e in events] == list(range(15, 25))

    def test_disabled_tracer_noop(self):
        tr = Tracer(enabled=False)
        tr.event("x")
        with tr.span("op") as span:
            span.annotate(note="ignored")
        assert len(tr) == 0

    def test_span_nesting(self):
        tr = Tracer(clock=iter(range(100)).__next__)
        with tr.span("txn") as outer:
            assert tr.current_span() is outer
            with tr.span("merge", keys=3) as inner:
                assert inner.depth == 1
                assert inner.parent == "txn"
                inner.annotate(conflicts=2)
            assert tr.current_span() is outer
        assert tr.current_span() is None
        spans = tr.events(kind="span")
        assert [e.attrs["name"] for e in spans] == ["merge", "txn"]  # inner ends first
        assert spans[0].attrs["depth"] == 1
        assert spans[0].attrs["parent"] == "txn"
        assert spans[0].attrs["conflicts"] == 2
        assert spans[1].attrs["depth"] == 0
        assert spans[1].attrs["parent"] is None
        assert spans[1].attrs["ms"] >= spans[0].attrs["ms"]

    def test_span_recorded_on_exception(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("x")
        assert len(tr.events(kind="span")) == 1
        assert tr.current_span() is None  # stack unwound

    def test_default_tracer_swap(self):
        mine = Tracer()
        previous = trc.set_default_tracer(mine)
        try:
            trc.DEFAULT.event("ping")
            assert len(mine.events()) == 1
        finally:
            trc.set_default_tracer(previous)

    def test_event_to_dict(self):
        tr = Tracer(clock=lambda: 1.5)
        tr.event("gc.cycle", removed=3)
        assert tr.to_list() == [{"ts": 1.5, "kind": "gc.cycle", "removed": 3}]


class TestExport:
    def _registry(self):
        reg = MetricsRegistry()
        reg.inc("commits", 7)
        reg.set_gauge("live_states", 4.0)
        for v in (0.5, 1.0, 2.0, 0.0):
            reg.observe("lat_ms", v)
        return reg

    def test_json_round_trip(self):
        reg = self._registry()
        tr = Tracer()
        tr.event("branch.fork", state="s1")
        doc = json.loads(export.to_json(reg, tr, include_buckets=True))
        assert doc["metrics"]["commits"] == {"type": "counter", "value": 7}
        assert doc["metrics"]["lat_ms"]["count"] == 4
        assert doc["metrics"]["lat_ms"]["zero"] == 1
        assert doc["events"][0]["kind"] == "branch.fork"

    def test_prometheus_format(self):
        text = export.to_prometheus(self._registry())
        lines = text.splitlines()
        assert "# TYPE commits counter" in lines
        assert "commits 7" in lines
        assert "# TYPE live_states gauge" in lines
        assert "live_states 4" in lines
        assert "# TYPE lat_ms histogram" in lines
        assert 'lat_ms_bucket{le="+Inf"} 4' in lines
        assert "lat_ms_count 4" in lines
        assert "lat_ms_sum 3.5" in lines
        # cumulative bucket counts are non-decreasing
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in lines
            if line.startswith('lat_ms_bucket')
        ]
        assert counts == sorted(counts)

    def test_prometheus_name_sanitisation(self):
        reg = MetricsRegistry()
        reg.inc("1bad name-with.dots")
        text = export.to_prometheus(reg)
        assert "_1bad_name_with_dots 1" in text

    def test_snapshot_diff_counters(self):
        reg = self._registry()
        before = export.snapshot(reg)
        reg.inc("commits", 3)
        reg.set_gauge("live_states", 9.0)
        after = export.snapshot(reg)
        delta = export.diff(before, after)
        assert delta["commits"]["value"] == 3
        assert delta["live_states"]["value"] == 9.0
        assert delta["live_states"]["delta"] == 5.0

    def test_snapshot_diff_histogram_window(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0):
            reg.observe("lat", v)
        before = export.snapshot(reg)
        for v in (100.0, 200.0, 0.0):
            reg.observe("lat", v)
        delta = export.diff(before, export.snapshot(reg))["lat"]
        assert delta["count"] == 3
        assert delta["sum"] == pytest.approx(300.0)
        assert delta["zero"] == 1
        # quantiles of just the window: the pre-existing 1.0/2.0 are gone
        hist = export.histogram_from_snapshot("lat", delta)
        assert hist.count == 3
        assert hist.quantile(0.99) == pytest.approx(200.0, rel=1.0 / 16)
        assert hist.quantile(0.5) == pytest.approx(100.0, rel=1.0 / 16)

    def test_diff_handles_metric_absent_from_before(self):
        reg = MetricsRegistry()
        before = export.snapshot(reg)
        reg.inc("new_counter", 2)
        delta = export.diff(before, export.snapshot(reg))
        assert delta["new_counter"]["value"] == 2


class TestInstrumentation:
    """The store's hot paths feed an installed registry/tracer."""

    def test_store_counters_and_events(self):
        from repro.core.store import TardisStore

        reg = MetricsRegistry()
        tr = Tracer()
        with met.use_registry(reg), trc.use_tracer(tr):
            store = TardisStore("obs")
            a, b = store.session("a"), store.session("b")
            store.put("k", 0, session=a)
            t1, t2 = store.begin(session=a), store.begin(session=b)
            t1.put("k", t1.get("k") + 1)
            t2.put("k", t2.get("k") + 2)  # read-modify-write: true conflict
            t1.commit()
            t2.commit()  # conflicts -> fork
            merge = store.begin_merge(session=a)
            merge.put("k", max(merge.get_all("k")))
            merge.commit()
        data = reg.to_dict()
        assert data["tardis_txn_begin_total"]["value"] >= 3
        assert data["tardis_txn_commit_total"]["value"] >= 3
        assert data["tardis_branch_fork_total"]["value"] == 1
        assert data["tardis_branch_merge_total"]["value"] == 1
        kinds = {e.kind for e in tr.events()}
        assert "txn.commit" in kinds
        assert "branch.fork" in kinds
        assert "branch.merge" in kinds

    def test_disabled_by_default(self):
        """An uninstrumented run records nothing into the global default."""
        from repro.core.store import TardisStore

        baseline = len(met.DEFAULT)
        store = TardisStore("quiet")
        txn = store.begin()
        txn.put("k", 1)
        txn.commit()
        assert len(met.DEFAULT) == baseline
        assert not met.DEFAULT.enabled

    def test_run_simulation_folds_registry(self):
        from repro.sim.adapters import TardisAdapter
        from repro.workload import RunConfig, YCSBWorkload, run_simulation
        from repro.workload.mixes import WRITE_HEAVY

        result = run_simulation(
            TardisAdapter(branching=True),
            YCSBWorkload(mix=WRITE_HEAVY, n_keys=50),
            RunConfig(n_clients=4, duration_ms=30.0, warmup_ms=5.0, seed=1,
                      maintenance_interval_ms=5.0),
        )
        assert result.obs_metrics["tardis_txn_commit_total"]["value"] > 0
        assert result.obs_metrics["run_commit_total"]["value"] == result.commits
        assert result.obs_metrics["run_txn_latency_ms"]["count"] > 0
        # the swap is restored afterwards
        assert not met.DEFAULT.enabled

    def test_run_simulation_collect_metrics_off(self):
        from repro.sim.adapters import TardisAdapter
        from repro.workload import RunConfig, YCSBWorkload, run_simulation
        from repro.workload.mixes import READ_HEAVY

        result = run_simulation(
            TardisAdapter(branching=True),
            YCSBWorkload(mix=READ_HEAVY, n_keys=50),
            RunConfig(n_clients=2, duration_ms=20.0, warmup_ms=5.0, seed=1,
                      collect_metrics=False),
        )
        assert result.obs_metrics == {}
