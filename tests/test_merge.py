"""Tests for merge transactions and the merge-mode API (§5.1, §6.2)."""

import pytest

from repro import AnyConstraint, NoBranchingConstraint, TardisStore
from repro.errors import (
    BeginError,
    KeyNotFound,
    MultipleValuesError,
    TransactionAborted,
)


@pytest.fixture
def store():
    return TardisStore("A")


def fork_counter(store, key="c", base=10, deltas=(3, 7)):
    """Create two conflicting branches incrementing a counter."""
    store.put(key, base)
    sessions = [store.session("s%d" % i) for i in range(len(deltas))]
    txns = [store.begin(session=s) for s in sessions]
    for t, d in zip(txns, deltas):
        t.put(key, t.get(key) + d)
    for t in txns:
        t.commit()
    return sessions


class TestMergeBasics:
    def test_parents_are_branch_heads(self, store):
        fork_counter(store)
        m = store.begin_merge()
        assert len(m.parents) == 2
        assert {p for p in m.parents} == {l.id for l in store.dag.leaves()}
        m.abort()

    def test_find_fork_points(self, store):
        fork_counter(store)
        m = store.begin_merge()
        forks = m.find_fork_points()
        assert len(forks) == 1
        # The fork point is the state where the counter was 10.
        assert m.get_for_id("c", forks[0]) == 10
        m.abort()

    def test_find_conflict_writes(self, store):
        fork_counter(store)
        m = store.begin_merge()
        assert m.find_conflict_writes() == ["c"]
        m.abort()

    def test_conflict_writes_ignores_disjoint_keys(self, store):
        store.put("x", 0)
        t1, t2 = store.begin(session=store.session("a")), store.begin(
            session=store.session("b")
        )
        t1.put("x", t1.get("x") + 1)  # conflicting
        t2.put("x", t2.get("x") + 1)
        t1.put("only-a", 1)  # branch-private keys
        t2.put("only-b", 2)
        t1.commit()
        t2.commit()
        m = store.begin_merge()
        assert m.find_conflict_writes() == ["x"]
        m.abort()

    def test_get_conflicting_key_raises(self, store):
        fork_counter(store)
        m = store.begin_merge()
        with pytest.raises(MultipleValuesError) as exc:
            m.get("c")
        assert exc.value.key == "c"
        assert len(exc.value.candidates) == 2
        assert sorted(v for _s, v in exc.value.candidates) == [13, 17]
        m.abort()

    def test_get_non_conflicting_key(self, store):
        store.put("shared", "s")
        fork_counter(store)
        m = store.begin_merge()
        assert m.get("shared") == "s"
        m.abort()

    def test_get_all(self, store):
        fork_counter(store)
        m = store.begin_merge()
        assert sorted(m.get_all("c")) == [13, 17]
        assert m.get_all("absent") == []
        m.abort()

    def test_get_for_id_missing_key(self, store):
        fork_counter(store)
        m = store.begin_merge()
        fork = m.find_fork_points()[0]
        with pytest.raises(KeyNotFound):
            m.get_for_id("absent", fork)
        assert m.get_for_id("absent", fork, default=0) == 0
        m.abort()


class TestMergeCommit:
    def merge_counter(self, store, key="c"):
        m = store.begin_merge()
        fork = m.find_fork_points()[0]
        base = m.get_for_id(key, fork)
        merged = base + sum(v - base for v in m.get_all(key))
        m.put(key, merged)
        return m, merged

    def test_three_way_counter_merge(self, store):
        fork_counter(store, deltas=(3, 7))
        m, merged = self.merge_counter(store)
        m.commit()
        assert merged == 20
        assert store.get("c") == 20
        assert len(store.dag.leaves()) == 1
        assert store.metrics.merges == 1

    def test_merge_three_branches(self, store):
        fork_counter(store, deltas=(1, 2, 4))
        m, merged = self.merge_counter(store)
        assert len(m.parents) == 3
        m.commit()
        assert store.get("c") == 17

    def test_merge_state_has_all_parents(self, store):
        fork_counter(store)
        m, _ = self.merge_counter(store)
        sid = m.commit()
        state = store.dag.resolve(sid)
        assert {p.id for p in state.parents} == set(m.parents)

    def test_after_merge_single_mode_sees_merged_value(self, store):
        fork_counter(store)
        m, _ = self.merge_counter(store)
        m.commit()
        t = store.begin(session=store.session("s0"))
        assert t.get("c") == 20
        t.commit()

    def test_unmerged_nonconflicting_keys_visible_after_merge(self, store):
        store.put("x", 0)
        a, b = store.session("a"), store.session("b")
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 1)
        t1.put("left", "L")
        t2.put("right", "R")
        t1.commit()
        t2.commit()
        m = store.begin_merge()
        m.put("x", 2)
        m.commit()
        t = store.begin()
        assert t.get("left") == "L"
        assert t.get("right") == "R"
        assert t.get("x") == 2

    def test_merge_abort_leaves_branches(self, store):
        fork_counter(store)
        m = store.begin_merge()
        m.put("c", 999)
        m.abort()
        assert len(store.dag.leaves()) == 2
        assert store.metrics.merges == 0

    def test_merge_end_constraint_failure_aborts(self, store):
        fork_counter(store)
        m = store.begin_merge()
        # Extend one branch after beginMerge so its head gains a child.
        t = store.begin(session=store.session("s0"))
        t.put("other", 1)
        t.commit()
        m.put("c", 0)
        with pytest.raises(TransactionAborted):
            m.commit(NoBranchingConstraint())

    def test_concurrent_merges_allowed(self, store):
        fork_counter(store)
        m1 = store.begin_merge()
        m2 = store.begin_merge()
        m1.put("c", 20)
        m2.put("c", 20)
        m1.commit()
        m2.commit()
        # Both merge states exist; they can be merged again later.
        assert store.metrics.merges == 2
        m3 = store.begin_merge()
        assert len(m3.parents) == 2
        m3.put("c", 20)
        m3.commit()
        assert store.get("c") == 20

    def test_merge_of_single_branch(self, store):
        store.put("x", 1)
        m = store.begin_merge()
        assert len(m.parents) == 1
        assert m.find_fork_points() == []
        assert m.find_conflict_writes() == []
        assert m.get("x") == 1
        m.put("x", 2)
        m.commit()
        assert store.get("x") == 2

    def test_explicit_states_merge(self, store):
        fork_counter(store)
        leaves = [l.id for l in store.dag.leaves()]
        m = store.begin_merge(states=leaves[:1])
        assert m.parents == leaves[:1]
        m.abort()

    def test_begin_merge_empty_states_rejected(self, store):
        with pytest.raises(BeginError):
            store.begin_merge(states=[])

    def test_session_anchored_at_merge(self, store):
        sess = store.session("merger")
        fork_counter(store)
        m = store.begin_merge(session=sess)
        m.put("c", 20)
        sid = m.commit()
        assert sess.last_commit_id == sid


class TestShoppingCartScenario:
    """The paper's §5.2 game-store example, distilled."""

    def test_oversell_detected_and_resolved(self, store):
        with store.begin() as t:
            t.put("stock:game", 1)
            t.put("cart:alice", [])
            t.put("cart:bruno", [])
        alice, bruno = store.session("alice"), store.session("bruno")
        ta = store.begin(session=alice)
        tb = store.begin(session=bruno)
        # Both buy the last copy concurrently.
        for t, cart in ((ta, "cart:alice"), (tb, "cart:bruno")):
            stock = t.get("stock:game")
            t.put("stock:game", stock - 1)
            t.put(cart, t.get(cart) + ["game"])
        ta.commit()
        tb.commit()
        # Bruno additionally buys the expansion on his branch.
        tb2 = store.begin(session=bruno)
        tb2.put("cart:bruno", tb2.get("cart:bruno") + ["expansion"])
        tb2.commit()

        m = store.begin_merge()
        conflicts = m.find_conflict_writes()
        assert "stock:game" in conflicts
        fork = m.find_fork_points()[0]
        base = m.get_for_id("stock:game", fork)
        merged_stock = base + sum(v - base for v in m.get_all("stock:game"))
        assert merged_stock == -1  # oversold
        # Policy: Bruno keeps game+expansion, Alice gets an apology.
        m.put("stock:game", 0)
        m.put("cart:alice", [])
        m.put("apology:alice", True)
        m.commit()

        t = store.begin()
        assert t.get("stock:game") == 0
        assert t.get("cart:bruno") == ["game", "expansion"]
        assert t.get("cart:alice") == []
        assert t.get("apology:alice") is True
