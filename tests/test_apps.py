"""Tests for the ALPS applications: Retwis, the game store, the wiki."""

import random

import pytest

from repro import TardisStore
from repro.apps.retwis import (
    POST_HEAVY,
    READ_HEAVY,
    RetwisApp,
    RetwisWorkload,
    retwis_merge_resolver,
    timeline_key,
)
from repro.apps.shopping import GameStore
from repro.apps.wiki import PageVersion, WikiPage, run_banditoni_scenario, side_of
from repro.replication import Cluster
from repro.sim.adapters import OCCAdapter, TardisAdapter, TwoPLAdapter
from repro.workload import RunConfig, run_simulation


class TestRetwisApp:
    def make_app(self):
        app = RetwisApp(TardisStore("A"))
        for user in ("alice", "bruno", "carla"):
            app.create_account(user)
        return app

    def test_account_lifecycle(self):
        app = self.make_app()
        with pytest.raises(ValueError):
            app.create_account("alice")
        assert app.read_own_timeline("alice") == []

    def test_post_reaches_followers(self):
        app = self.make_app()
        app.follow("bruno", "alice")
        app.post("alice", "hello world")
        assert app.read_own_timeline("bruno") == [("alice", "hello world")]
        assert app.read_own_timeline("alice") == [("alice", "hello world")]
        assert app.read_own_timeline("carla") == []

    def test_timeline_order_newest_first(self):
        app = self.make_app()
        app.follow("bruno", "alice")
        app.post("alice", "first")
        app.post("alice", "second")
        assert [c for _a, c in app.read_own_timeline("bruno")] == ["second", "first"]

    def test_timeline_capped(self):
        app = self.make_app()
        for i in range(60):
            app.post("alice", "p%d" % i)
        assert len(app.read_own_timeline("alice")) == 50

    def test_merge_branches_unions_timelines(self):
        app = self.make_app()
        app.follow("carla", "alice")
        app.follow("carla", "bruno")
        store = app.store
        # Force conflicting posts on two branches: both append to carla's
        # timeline from the same snapshot.
        t1 = store.begin(session=store.session("retwis:alice"))
        t2 = store.begin(session=store.session("retwis:bruno"))
        for txn, (pid, author) in ((t1, ((100, "alice"), "alice")), (t2, ((101, "bruno"), "bruno"))):
            tl = txn.get(timeline_key("carla"))
            txn.put(timeline_key("carla"), ((pid),) + tuple(tl))
            txn.put("post:%s:%s" % pid, (author, "from " + author))
        t1.commit()
        t2.commit()
        assert store.metrics.forks == 1
        resolved = app.merge_branches()
        assert resolved >= 1
        timeline = app.read_own_timeline("carla")
        assert ("alice", "from alice") in timeline
        assert ("bruno", "from bruno") in timeline

    def test_posts_never_misattributed_across_merge(self):
        app = self.make_app()
        app.follow("carla", "alice")
        app.post("alice", "yours truly")
        app.merge_branches()  # no-op with one branch
        for author, content in app.read_own_timeline("carla"):
            assert author == "alice"


class TestRetwisWorkload:
    def test_mix_validation(self):
        with pytest.raises(ValueError):
            RetwisWorkload(mix="chaos")

    def test_preload_shape(self):
        wl = RetwisWorkload(n_users=10, follows_per_user=3)
        data = wl.preload
        assert len(data) == 40  # 4 keys per user
        assert all(isinstance(v, (frozenset, tuple)) for v in data.values())

    def test_programs_run_on_all_systems(self):
        for adapter in (TardisAdapter(), TwoPLAdapter(), OCCAdapter()):
            wl = RetwisWorkload(mix=POST_HEAVY, n_users=20, follows_per_user=3)
            result = run_simulation(
                adapter,
                wl,
                RunConfig(n_clients=4, duration_ms=40, warmup_ms=5, cores=4,
                          maintenance_interval_ms=10),
            )
            assert result.commits > 50, adapter.name

    def test_followers_graph_skewed(self):
        wl = RetwisWorkload(n_users=50, follows_per_user=5)
        counts = sorted((len(f) for f in wl._followers.values()), reverse=True)
        assert counts[0] >= 3 * max(1, counts[-1])

    def test_tardis_with_resolver_preserves_attribution(self):
        wl = RetwisWorkload(mix=POST_HEAVY, n_users=20, follows_per_user=3)
        adapter = TardisAdapter(merge_resolver=retwis_merge_resolver)
        run_simulation(
            adapter,
            wl,
            RunConfig(n_clients=4, duration_ms=40, warmup_ms=5, cores=4,
                      maintenance_interval_ms=5),
        )
        store = adapter.store
        txn = store.begin(session=store.session("checker"))
        for user in wl._users[:10]:
            timeline = txn.get(timeline_key(user), default=())
            for post_id in timeline:
                post = txn.get("post:%s:%s" % post_id, default=None)
                if post is not None:
                    assert post[0] == post_id[1]  # author matches id
        txn.commit()


class TestGameStore:
    def make_shop(self):
        shop = GameStore(TardisStore("A"))
        shop.stock_item("game", 1)
        shop.stock_item("expansion", 5, requires="game")
        return shop

    def test_normal_purchase(self):
        shop = self.make_shop()
        assert shop.buy("alice", "game")
        assert shop.cart("alice") == ("game",)
        assert shop.stock("game") == 0

    def test_out_of_stock_rejected(self):
        shop = self.make_shop()
        assert shop.buy("alice", "game")
        assert not shop.buy("alice", "game")

    def test_expansion_requires_game(self):
        shop = self.make_shop()
        assert not shop.buy("alice", "expansion")
        assert shop.buy("alice", "game")
        assert shop.buy("alice", "expansion")

    def oversell(self, shop):
        """Alice and Bruno both buy the last game on separate branches."""
        store = shop.store
        t1 = store.begin(session=store.session("shop:alice"))
        t2 = store.begin(session=store.session("shop:bruno"))
        for txn, customer in ((t1, "alice"), (t2, "bruno")):
            stock = txn.get("item:game:stock")
            txn.put("item:game:stock", stock - 1)
            cart = txn.get("cart:%s" % customer, default=())
            txn.put("cart:%s" % customer, tuple(cart) + ("game",))
            txn.put(
                "item:game:carts", txn.get("item:game:carts") | {customer}
            )
        t1.commit()
        t2.commit()
        assert store.metrics.forks == 1

    def test_oversell_resolution_prefers_valuable_cart(self):
        shop = self.make_shop()
        self.oversell(shop)
        # Bruno additionally bought the expansion on his branch.
        assert shop.buy("bruno", "expansion")
        losers = shop.merge(cart_value={"alice": 1, "bruno": 10})
        assert losers == ["alice"]
        assert shop.stock("game") == 0
        assert shop.cart("bruno") == ("game", "expansion")
        assert shop.cart("alice") == ()
        assert shop.apologized_to("alice")
        assert not shop.apologized_to("bruno")

    def test_oversell_strips_dependent_items(self):
        shop = self.make_shop()
        self.oversell(shop)
        assert shop.buy("alice", "expansion")
        # Bruno is the better customer: Alice loses game AND expansion.
        losers = shop.merge(cart_value={"alice": 1, "bruno": 10})
        assert losers == ["alice"]
        assert shop.cart("alice") == ()
        # Expansion stock untouched by the strip (apology, not restock,
        # per the paper's pseudocode).
        assert shop.apologized_to("alice")

    def test_invariant_no_expansion_without_game(self):
        shop = self.make_shop()
        self.oversell(shop)
        assert shop.buy("alice", "expansion")
        assert shop.buy("bruno", "expansion")
        shop.merge(cart_value={"alice": 5, "bruno": 6})
        for customer in ("alice", "bruno"):
            cart = shop.cart(customer)
            if "expansion" in cart:
                assert "game" in cart

    def test_merge_without_branches_is_noop(self):
        shop = self.make_shop()
        shop.buy("alice", "game")
        assert shop.merge() == []


class TestWiki:
    def test_side_of(self):
        assert side_of("pro-banditoni") == "pro"
        assert side_of("anti-banditoni") == "anti"
        assert side_of("stub") == "neutral"

    def test_single_site_edits(self):
        page = WikiPage(TardisStore("A"))
        page.initialize("neutral stub", "neutral refs", "neutral portrait")
        page.edit("alice", "content", "pro-banditoni text")
        got = page.read()
        assert got.content == "pro-banditoni text"

    def test_scenario_reproduces_anomaly_and_resolution(self):
        result = run_banditoni_scenario()
        branches = result["branches"]
        assert len(branches) == 2
        # Each branch is internally coherent...
        assert all(v.coherent() for v in branches)
        sides = {side_of(v.content) for v in branches}
        assert sides == {"pro", "anti"}
        # ...but the naive per-object flattening is not.
        assert not result["naive"].coherent()
        # The moderated page is coherent and replicates everywhere.
        assert result["moderated"].coherent()
        assert result["converged"]

    def test_moderator_can_construct_compromise(self):
        store = TardisStore("A")
        page = WikiPage(store)
        page.initialize("neutral stub", "neutral refs", "neutral portrait")
        t1 = store.begin(session=store.session("wiki:alice"))
        t2 = store.begin(session=store.session("wiki:bruno"))
        t1.get("wiki:banditoni:content")
        t2.get("wiki:banditoni:content")
        t1.put("wiki:banditoni:content", "pro-banditoni text")
        t2.put("wiki:banditoni:content", "anti-banditoni text")
        t1.commit()
        t2.commit()
        resolved = page.moderate(
            lambda versions: PageVersion(
                "balanced summary", "neutral refs", "neutral portrait"
            )
        )
        assert page.read().content == "balanced summary"
