"""System-level property tests: GC transparency, crash equivalence,
multi-site convergence under random schedules.

These treat whole-store behaviours as properties over randomized
histories — the strongest correctness evidence in the suite:

* running the identical transaction schedule with and without garbage
  collection interleaved at random points yields identical results;
* crashing at an arbitrary point (dropping unflushed log records) and
  recovering yields exactly the durable prefix;
* any interleaving of writes and partitions across sites converges once
  the network heals and one site merges.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TardisStore, recover_store
from repro.errors import TransactionAborted
from repro.replication import Cluster


def apply_schedule(store, schedule, gc_points=()):
    """Replay a deterministic schedule of interleaved transactions.

    ``schedule`` is a list of (session, [ops]) where ops are
    ('r', key) / ('w', key, value); transactions interleave pairwise:
    each opens, performs its ops, commits in list order. ``gc_points``
    are indexes after which a full ceiling+collect cycle runs.
    """
    results = []
    for index, (session_name, ops) in enumerate(schedule):
        session = store.session(session_name)
        txn = store.begin(session=session)
        observed = []
        for op in ops:
            if op[0] == "r":
                observed.append(txn.get(op[1], default=None))
            else:
                txn.put(op[1], op[2])
        try:
            txn.commit()
            committed = True
        except TransactionAborted:
            committed = False
        results.append((committed, tuple(observed)))
        if index in gc_points:
            for sess in store.sessions():
                sess.place_ceiling()
            store.collect_garbage()
    return results


def final_views(store, keys):
    views = []
    for leaf in sorted(store.dag.leaves(), key=lambda s: s.id):
        view = tuple(
            (key, (store.versions.read_visible(key, leaf, store.dag) or (None, None))[1])
            for key in keys
        )
        views.append(view)
    return views


def random_schedule(rng, n_txns=40, n_sessions=3, n_keys=5):
    schedule = []
    for i in range(n_txns):
        ops = []
        for _ in range(rng.randint(1, 4)):
            key = "k%d" % rng.randrange(n_keys)
            if rng.random() < 0.5:
                ops.append(("r", key))
            else:
                ops.append(("w", key, rng.randrange(100)))
        schedule.append(("s%d" % rng.randrange(n_sessions), ops))
    return schedule


class TestGcEquivalence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_gc_never_changes_results(self, seed):
        rng = random.Random(seed)
        schedule = random_schedule(rng)
        gc_points = {i for i in range(len(schedule)) if rng.random() < 0.15}
        keys = ["k%d" % i for i in range(5)]

        plain = TardisStore("A")
        r1 = apply_schedule(plain, schedule)
        collected = TardisStore("A")
        r2 = apply_schedule(collected, schedule, gc_points=gc_points)

        assert r1 == r2, "GC changed transaction outcomes"
        assert final_views(plain, keys) == final_views(collected, keys)

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_gc_bounds_state(self, seed):
        rng = random.Random(seed)
        schedule = random_schedule(rng, n_txns=60)
        store = TardisStore("A")
        apply_schedule(store, schedule, gc_points=set(range(0, 60, 10)))
        # Interleaved GC keeps the DAG to a handful of live states:
        # everything below the oldest session ceiling compresses away.
        # The bound is intentionally loose — states committed after the
        # last GC point (up to 10 transactions' worth, each possibly
        # forking) are still uncollected when the schedule ends, so the
        # count can legitimately exceed the steady-state handful.
        if len(store.dag.leaves()) == 1:
            assert len(store.dag) <= 32


class TestCrashRecoveryEquivalence:
    @given(seed=st.integers(0, 10_000), crash_at=st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_recovery_restores_durable_prefix(self, seed, crash_at):
        import tempfile

        tmp = tempfile.mkdtemp(prefix="tardis-wal-")
        rng = random.Random(seed)
        schedule = random_schedule(rng, n_txns=30)
        keys = ["k%d" % i for i in range(5)]
        path = "%s/wal-%d-%d.log" % (tmp, seed, crash_at)

        store = TardisStore("A", wal_path=path, wal_sync=False)
        flush_every = 5
        for index, entry in enumerate(schedule):
            apply_schedule(store, [entry])
            if index % flush_every == flush_every - 1:
                store.wal.flush()
            if index == crash_at:
                break
        # Crash: unflushed records vanish.
        dropped = store.wal.drop_buffered()
        store.wal.close()

        recovered, report = recover_store("A", path)
        # Rebuild a reference store from only the durable prefix.
        durable_txns = report["replayed"]
        reference = TardisStore("A")
        applied = 0
        for entry in schedule:
            if applied >= durable_txns:
                break
            before = reference.metrics.commits
            apply_schedule(reference, [entry])
            applied += reference.metrics.commits - before
        assert final_views(recovered, keys) == final_views(reference, keys)
        assert len(recovered.dag) == len(reference.dag)


class TestMultiSiteConvergence:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_converges_after_heal_and_merge(self, seed):
        rng = random.Random(seed)
        cluster = Cluster(n_sites=2, default_latency_ms=5)
        us, eu = cluster.stores["us"], cluster.stores["eu"]
        us.put("x", 0)
        cluster.run(until=50)

        partitioned = False
        now = 50.0
        for step in range(20):
            site = us if rng.random() < 0.5 else eu
            action = rng.random()
            if action < 0.6:
                sess = site.session("w%d" % rng.randrange(2))
                txn = site.begin(session=sess)
                txn.put("x", txn.get("x", default=0) + 1)
                try:
                    txn.commit()
                except TransactionAborted:
                    pass
            elif action < 0.8 and not partitioned:
                cluster.network.partition("us", "eu")
                partitioned = True
            elif partitioned:
                cluster.network.heal("us", "eu")
                partitioned = False
            now += rng.uniform(1, 20)
            cluster.run(until=now)

        if partitioned:
            cluster.network.heal("us", "eu")
        cluster.run(until=now + 500)

        # One site merges everything; the merge replicates.
        merge = us.begin_merge(session=us.session("merger"))
        values = merge.get_all("x")
        if values:
            merge.put("x", max(values))
        merge.commit()
        cluster.run(until=now + 1500)
        assert cluster.converged("x")

    def test_three_site_gossip_delivers_everything(self):
        cluster = Cluster(n_sites=3, default_latency_ms=10)
        stores = list(cluster.stores.values())
        expected = {}
        for i, store in enumerate(stores * 3):
            key = "key-%d" % i
            store.put(key, i)
            expected[key] = i
        cluster.run(until=2000)
        for store in stores:
            for key, value in expected.items():
                versions = store.versions.versions_of(key)
                assert versions, (store.site, key)
                values = {
                    store.versions.records.get((key, sid)) for sid in versions
                }
                assert value in values, (store.site, key)
