"""Tests for workload generators, stats, and the simulation runner."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.adapters import OCCAdapter, TardisAdapter, TwoPLAdapter
from repro.workload import (
    LatencyStats,
    READ_HEAVY,
    READ_ONLY,
    RunConfig,
    UniformGenerator,
    WRITE_HEAVY,
    YCSBWorkload,
    ZipfianGenerator,
    run_simulation,
    sweep_clients,
)
from repro.workload.mixes import BLIND_WRITE, MIXED
from repro.workload.stats import OpBreakdown
from repro.workload.ycsb import make_generator


class TestGenerators:
    def test_uniform_range(self):
        gen = UniformGenerator(100)
        rng = random.Random(1)
        samples = [gen.next(rng) for _ in range(2000)]
        assert min(samples) >= 0 and max(samples) < 100
        assert len(set(samples)) > 80

    def test_zipfian_skew(self):
        gen = ZipfianGenerator(1000, theta=0.99)
        rng = random.Random(1)
        samples = [gen.next(rng) for _ in range(20000)]
        assert all(0 <= s < 1000 for s in samples)
        hot = sum(1 for s in samples if s < 10)
        # The top-10 keys must absorb a large fraction of accesses.
        assert hot / len(samples) > 0.3

    def test_zipfian_more_skewed_than_uniform(self):
        rng = random.Random(2)
        zipf = ZipfianGenerator(100, theta=0.99)
        z = [zipf.next(rng) for _ in range(5000)]
        top = sum(1 for s in z if s == 0) / len(z)
        assert top > 0.05  # uniform would give ~0.01

    def test_zipfian_scramble_spreads_hot_keys(self):
        gen = ZipfianGenerator(1000, theta=0.99, scramble=True)
        rng = random.Random(3)
        samples = [gen.next(rng) for _ in range(5000)]
        # Hot ranks no longer cluster at the low end of the key space.
        assert sum(1 for s in samples if s < 10) / len(samples) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)
        with pytest.raises(ValueError):
            make_generator("gaussian", 10)

    @given(st.integers(1, 500), st.integers(0, 2**31))
    @settings(max_examples=50)
    def test_zipfian_always_in_range(self, n, seed):
        gen = ZipfianGenerator(n)
        rng = random.Random(seed)
        for _ in range(50):
            assert 0 <= gen.next(rng) < n


class TestMixes:
    def test_read_only_mix(self):
        wl = YCSBWorkload(mix=READ_ONLY, n_keys=50)
        rng = random.Random(0)
        for _ in range(20):
            spec = wl.next_txn(rng)
            assert spec.read_only
            assert len(spec.ops) == 6
            assert all(op[0] == "r" for op in spec.ops)

    def test_write_heavy_mix(self):
        wl = YCSBWorkload(mix=WRITE_HEAVY, n_keys=50)
        rng = random.Random(0)
        for _ in range(20):
            spec = wl.next_txn(rng)
            assert not spec.read_only
            reads = [op for op in spec.ops if op[0] == "r"]
            writes = [op for op in spec.ops if op[0] == "w"]
            assert len(reads) == 3 and len(writes) == 3
            # the paper's setup: reads and (blind) writes on distinct keys
            assert not ({op[1] for op in reads} & {op[1] for op in writes})

    def test_write_heavy_rmw_mix(self):
        wl = YCSBWorkload(mix=WRITE_HEAVY, n_keys=50, read_modify_write=True)
        rng = random.Random(0)
        for _ in range(20):
            spec = wl.next_txn(rng)
            if spec.read_only:
                continue
            reads = {op[1] for op in spec.ops if op[0] == "r"}
            writes = {op[1] for op in spec.ops if op[0] == "w"}
            assert reads == writes  # counter-style read-modify-write

    def test_read_heavy_ratio(self):
        wl = YCSBWorkload(mix=READ_HEAVY, n_keys=100)
        rng = random.Random(7)
        ro = sum(wl.next_txn(rng).read_only for _ in range(2000))
        assert 0.70 < ro / 2000 < 0.80

    def test_mixed_ratio(self):
        wl = YCSBWorkload(mix=MIXED, n_keys=100)
        rng = random.Random(7)
        ro = sum(wl.next_txn(rng).read_only for _ in range(2000))
        assert 0.20 < ro / 2000 < 0.30

    def test_blind_write_mix(self):
        wl = YCSBWorkload(mix=BLIND_WRITE, n_keys=50)
        spec = wl.next_txn(random.Random(0))
        assert len(spec.ops) == 1
        assert spec.ops[0][0] == "w"

    def test_write_keys_hint(self):
        wl = YCSBWorkload(mix=WRITE_HEAVY, n_keys=50)
        spec = wl.next_txn(random.Random(0))
        assert spec.write_keys == {op[1] for op in spec.ops if op[0] == "w"}

    def test_preload_covers_keyspace(self):
        wl = YCSBWorkload(n_keys=10)
        assert len(wl.preload) == 10
        assert all(v == 0 for v in wl.preload.values())

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            YCSBWorkload(mix="chaos")


class TestStats:
    def test_latency_stats(self):
        stats = LatencyStats()
        assert stats.mean == 0.0
        assert stats.p99 == 0.0
        for v in [1, 2, 3, 4, 5]:
            stats.record(v)
        assert stats.mean == 3
        assert stats.p50 == 3
        assert stats.percentile(0) == 1
        assert stats.percentile(100) == 5

    def test_percentile_sorted_view_cached(self):
        """Repeated percentile queries reuse one sorted view; a new
        sample invalidates it (regression: percentile() used to re-sort
        the full sample list on every call)."""
        stats = LatencyStats()
        for v in [5, 1, 4, 2, 3]:
            stats.record(v)
        assert stats.sort_count == 0
        assert stats.p50 == 3
        assert stats.p99 == pytest.approx(4.96)
        assert stats.percentile(25) == 2
        assert stats.sort_count == 1  # one sort served all three queries
        stats.record(0)
        assert stats.p50 == 2.5  # new sample is visible...
        assert stats.percentile(0) == 0
        assert stats.sort_count == 2  # ...at the cost of exactly one re-sort

    def test_op_breakdown(self):
        bd = OpBreakdown()
        bd.record("get", 0.010, count=2)
        bd.record("get", 0.030, count=2)
        assert bd.mean("get") == pytest.approx(0.01)
        assert bd.mean("put") == 0.0
        bd.record("warp", 1.0)  # unknown ops ignored
        assert "warp" not in bd.as_dict()


class TestRunner:
    def small_config(self, **kw):
        defaults = dict(n_clients=4, duration_ms=50, warmup_ms=5, cores=4, seed=3)
        defaults.update(kw)
        return RunConfig(**defaults)

    def test_tardis_run_commits(self):
        result = run_simulation(
            TardisAdapter(), YCSBWorkload(n_keys=100), self.small_config()
        )
        assert result.commits > 100
        assert result.throughput_tps > 0
        assert result.mean_latency_ms > 0
        assert 0 < result.utilization <= 1.0

    def test_deterministic_given_seed(self):
        r1 = run_simulation(
            TardisAdapter(), YCSBWorkload(n_keys=100), self.small_config()
        )
        r2 = run_simulation(
            TardisAdapter(), YCSBWorkload(n_keys=100), self.small_config()
        )
        assert r1.commits == r2.commits
        assert r1.throughput_tps == r2.throughput_tps

    def test_twopl_run_under_contention(self):
        result = run_simulation(
            TwoPLAdapter(),
            YCSBWorkload(mix=WRITE_HEAVY, n_keys=20, pattern="zipfian"),
            self.small_config(n_clients=8),
        )
        assert result.commits > 0
        assert result.lock_waits > 0
        assert result.goodput < 1.0

    def test_occ_run_has_aborts_under_contention(self):
        result = run_simulation(
            OCCAdapter(),
            YCSBWorkload(mix=WRITE_HEAVY, n_keys=10, pattern="zipfian"),
            self.small_config(n_clients=8),
        )
        assert result.commits > 0
        assert result.aborts > 0

    def test_more_clients_more_latency(self):
        small = run_simulation(
            TardisAdapter(), YCSBWorkload(n_keys=200), self.small_config(n_clients=2)
        )
        big = run_simulation(
            TardisAdapter(), YCSBWorkload(n_keys=200), self.small_config(n_clients=32)
        )
        assert big.mean_latency_ms > small.mean_latency_ms

    def test_maintenance_bounds_branches(self):
        adapter = TardisAdapter(branching=True)
        result = run_simulation(
            adapter,
            YCSBWorkload(mix=WRITE_HEAVY, n_keys=30, pattern="zipfian"),
            self.small_config(n_clients=8, maintenance_interval_ms=5),
        )
        assert result.commits > 0
        assert adapter.merges_run > 0
        # GC keeps the DAG bounded: after a final merge+collect cycle the
        # live states are a tiny fraction of the committed transactions.
        adapter.maintenance()
        assert len(adapter.store.dag) < result.commits / 2

    def test_samples_collected(self):
        result = run_simulation(
            TardisAdapter(),
            YCSBWorkload(n_keys=100),
            self.small_config(sample_interval_ms=10),
        )
        assert len(result.samples) >= 4
        assert all("commits" in s and "t_ms" in s for s in result.samples)
        commits = [s["commits"] for s in result.samples]
        assert commits == sorted(commits)

    def test_sweep_clients(self):
        results = sweep_clients(
            lambda: TardisAdapter(),
            lambda: YCSBWorkload(n_keys=100),
            [1, 4],
            self.small_config(),
        )
        assert [r.n_clients for r in results] == [1, 4]
        assert results[1].throughput_tps > results[0].throughput_tps

    def test_all_systems_agree_on_final_values(self):
        """Semantic cross-check: the same sequential transaction stream
        drives every system to the same final key values."""
        specs_source = YCSBWorkload(mix=WRITE_HEAVY, n_keys=10)
        rng = random.Random(11)
        specs = [specs_source.next_txn(rng) for _ in range(200)]
        finals = {}
        for name, adapter in (
            ("tardis", TardisAdapter()),
            ("bdb", TwoPLAdapter()),
            ("occ", OCCAdapter()),
        ):
            adapter.preload(specs_source.preload)
            for spec in specs:
                txn, _ = adapter.begin("solo")
                for op in spec.ops:
                    if op[0] == "r":
                        assert adapter.read(txn, op[1]).status == "ok"
                    else:
                        assert adapter.write(txn, op[1], op[2]).status == "ok"
                adapter.commit_request(txn)
                assert adapter.commit(txn).status == "ok"
            txn, _ = adapter.begin("checker")
            finals[name] = tuple(
                adapter.read(txn, "key%06d" % i).value for i in range(10)
            )
        assert finals["tardis"] == finals["bdb"] == finals["occ"]
