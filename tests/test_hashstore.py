"""Tests for the hash record backend (TARDiS-MDB configuration, §6.6)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TardisStore
from repro.storage.hashstore import HashStore
from repro.errors import TransactionAborted


class TestHashStore:
    def test_basics(self):
        hs = HashStore()
        assert len(hs) == 0
        hs.insert("a", 1)
        hs.insert("a", 2)
        assert hs.get("a") == 2
        assert "a" in hs
        assert hs.get("missing", "d") == "d"
        assert hs.remove("a")
        assert not hs.remove("a")

    def test_ordered_iteration(self):
        hs = HashStore()
        for k in [5, 1, 3]:
            hs.insert(k, k)
        assert list(hs.keys()) == [1, 3, 5]
        assert [k for k, _v in hs.range(2, 5)] == [3]

    def test_dump_load(self, tmp_path):
        hs = HashStore()
        for i in range(50):
            hs.insert(i, str(i))
        path = str(tmp_path / "hash.ckpt")
        assert hs.dump(path) == 50
        loaded = HashStore.load(path)
        assert list(loaded.items()) == list(hs.items())

    def test_stats(self):
        hs = HashStore()
        hs.insert("a", 1)
        hs.get("a")
        assert hs.stats.inserts == 1
        assert hs.stats.lookups == 1
        hs.stats.reset()
        assert hs.stats.lookups == 0

    @given(st.lists(st.tuples(st.sampled_from(["i", "d"]), st.integers(0, 30))))
    @settings(max_examples=100)
    def test_matches_dict(self, ops):
        hs = HashStore()
        model = {}
        for op, key in ops:
            if op == "i":
                hs.insert(key, key)
                model[key] = key
            else:
                assert hs.remove(key) == (key in model)
                model.pop(key, None)
        assert list(hs.items()) == sorted(model.items())


class TestHashBackedStore:
    def test_store_with_hash_backend(self):
        store = TardisStore("A", backend="hash")
        with store.begin() as t:
            t.put("x", 1)
        assert store.get("x") == 1

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            TardisStore("A", backend="rocksdb")

    def test_backends_equivalent_on_random_history(self):
        """Identical schedule => identical behaviour across backends."""
        rng = random.Random(5)
        schedule = []
        for _ in range(80):
            ops = [
                ("r" if rng.random() < 0.5 else "w",
                 "k%d" % rng.randrange(6), rng.randrange(100))
                for _ in range(rng.randint(1, 4))
            ]
            schedule.append(("s%d" % rng.randrange(3), ops))

        def run(store):
            out = []
            for name, ops in schedule:
                txn = store.begin(session=store.session(name))
                seen = []
                for kind, key, value in ops:
                    if kind == "r":
                        seen.append(txn.get(key, default=None))
                    else:
                        txn.put(key, value)
                try:
                    txn.commit()
                    out.append(("ok", tuple(seen)))
                except TransactionAborted:
                    out.append(("abort", tuple(seen)))
            # interleave GC to cover record promotion on this backend
            for sess in store.sessions():
                sess.place_ceiling()
            store.collect_garbage()
            return out

        assert run(TardisStore("A", backend="btree")) == run(
            TardisStore("A", backend="hash")
        )

    def test_gc_prunes_hash_backend(self):
        store = TardisStore("A", backend="hash")
        sess = store.session("w")
        for i in range(20):
            txn = store.begin(session=sess)
            txn.put("x", i)
            txn.commit()
        sess.place_ceiling()
        stats = store.collect_garbage()
        assert stats.records_dropped == 19
        assert store.get("x") == 19
