"""Tests for the State DAG, fork paths, and the Figure 7 visibility check."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fork_path import ForkPath, ForkPoint
from repro.core.ids import ROOT_ID, IdAllocator, StateId
from repro.core.state_dag import StateDAG
from repro.errors import GarbageCollectedError


def chain(dag, parent, n, write_key=None):
    """Append a linear chain of n states under parent; returns them."""
    states = []
    for _ in range(n):
        wk = frozenset() if write_key is None else frozenset([write_key])
        parent = dag.create_state([parent], write_keys=wk)
        states.append(parent)
    return states


class TestIds:
    def test_ordering_is_lexicographic(self):
        assert StateId(1, "A") < StateId(2, "A")
        assert StateId(1, "A") < StateId(1, "B")
        assert ROOT_ID < StateId(1, "A")

    def test_allocator_monotonic(self):
        alloc = IdAllocator("A")
        a = alloc.next_id()
        b = alloc.next_id([a])
        assert a < b

    def test_allocator_advances_past_parents(self):
        alloc = IdAllocator("A")
        remote = StateId(100, "B")
        fresh = alloc.next_id([remote])
        assert fresh > remote
        assert fresh.site == "A"

    def test_allocator_observe(self):
        alloc = IdAllocator("A")
        alloc.observe(StateId(50, "B"))
        assert alloc.next_id().counter == 51

    def test_empty_site_rejected(self):
        with pytest.raises(ValueError):
            IdAllocator("")


class TestForkPath:
    def test_empty(self):
        assert len(ForkPath.EMPTY) == 0
        assert ForkPath.EMPTY.issubset(ForkPath.EMPTY)

    def test_add_and_subset(self):
        p1 = ForkPath.EMPTY.add(ForkPoint(StateId(1, "A"), 0))
        p2 = p1.add(ForkPoint(StateId(4, "A"), 1))
        assert p1.issubset(p2)
        assert not p2.issubset(p1)
        assert ForkPoint(StateId(1, "A"), 0) in p2

    def test_add_is_persistent(self):
        p1 = ForkPath.EMPTY.add(ForkPoint(StateId(1, "A"), 0))
        p1.add(ForkPoint(StateId(2, "A"), 0))
        assert len(p1) == 1

    def test_add_duplicate_returns_self(self):
        point = ForkPoint(StateId(1, "A"), 0)
        p1 = ForkPath.EMPTY.add(point)
        assert p1.add(point) is p1

    def test_union(self):
        a = ForkPath([ForkPoint(StateId(1, "A"), 0)])
        b = ForkPath([ForkPoint(StateId(1, "A"), 1)])
        u = a.union(b)
        assert len(u) == 2
        assert a.issubset(u) and b.issubset(u)

    def test_equality_and_hash(self):
        a = ForkPath([ForkPoint(StateId(1, "A"), 0)])
        b = ForkPath([ForkPoint(StateId(1, "A"), 0)])
        assert a == b
        assert hash(a) == hash(b)


class TestDagConstruction:
    def test_initial(self):
        dag = StateDAG("A")
        assert len(dag) == 1
        assert dag.root.id == ROOT_ID
        assert dag.leaves() == [dag.root]
        assert dag.num_forks() == 0

    def test_linear_chain_no_fork_points(self):
        dag = StateDAG("A")
        states = chain(dag, dag.root, 5)
        assert dag.num_forks() == 0
        for s in states:
            assert s.fork_path == ForkPath.EMPTY
        assert dag.leaves() == [states[-1]]

    def test_fork_creates_fork_point_and_retro_update(self):
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        first = dag.create_state([base])
        deep = dag.create_state([first])
        # Before the fork, the first branch has empty paths.
        assert first.fork_path == ForkPath.EMPTY
        second = dag.create_state([base])  # fork at base
        assert base.is_fork_point
        # Retroactive update: first child subtree carries (base, 0).
        assert ForkPoint(base.id, 0) in first.fork_path
        assert ForkPoint(base.id, 0) in deep.fork_path
        assert ForkPoint(base.id, 1) in second.fork_path
        assert dag.retro_updates == 2

    def test_third_child_gets_branch_2(self):
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        dag.create_state([base])
        dag.create_state([base])
        third = dag.create_state([base])
        assert ForkPoint(base.id, 2) in third.fork_path

    def test_merge_takes_union_of_paths(self):
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        left = dag.create_state([base])
        right = dag.create_state([base])
        merged = dag.create_state([left, right])
        assert left.fork_path.issubset(merged.fork_path)
        assert right.fork_path.issubset(merged.fork_path)

    def test_explicit_state_id(self):
        dag = StateDAG("A")
        remote = StateId(7, "B")
        state = dag.create_state([dag.root], state_id=remote)
        assert state.id == remote
        # Local allocation continues past the observed id.
        local = dag.create_state([dag.root])
        assert local.id.counter == 8

    def test_duplicate_state_id_rejected(self):
        dag = StateDAG("A")
        dag.create_state([dag.root], state_id=StateId(7, "B"))
        with pytest.raises(ValueError):
            dag.create_state([dag.root], state_id=StateId(7, "B"))

    def test_no_parents_rejected(self):
        dag = StateDAG("A")
        with pytest.raises(ValueError):
            dag.create_state([])

    def test_leaves_most_recent_first(self):
        dag = StateDAG("A")
        a = dag.create_state([dag.root])
        b = dag.create_state([dag.root])
        c = dag.create_state([dag.root])
        assert dag.leaves() == [c, b, a]


class TestDescendantCheck:
    def test_reflexive(self):
        dag = StateDAG("A")
        s = dag.create_state([dag.root])
        assert dag.descendant_check(s, s)

    def test_linear(self):
        dag = StateDAG("A")
        states = chain(dag, dag.root, 4)
        assert dag.descendant_check(states[0], states[3])
        assert not dag.descendant_check(states[3], states[0])
        assert dag.descendant_check(dag.root, states[2])

    def test_siblings_invisible_both_ways(self):
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        left = chain(dag, base, 3)
        right = chain(dag, base, 3)
        for x in left:
            for y in right:
                assert not dag.descendant_check(x, y)
                assert not dag.descendant_check(y, x)
        for x in left + right:
            assert dag.descendant_check(base, x)

    def test_merge_sees_both_branches(self):
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        left = chain(dag, base, 2)
        right = chain(dag, base, 2)
        merged = dag.create_state([left[-1], right[-1]])
        for s in left + right + [base]:
            assert dag.descendant_check(s, merged)
        below = dag.create_state([merged])
        for s in left + right:
            assert dag.descendant_check(s, below)

    def test_nested_forks(self):
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        l1 = chain(dag, base, 2)
        r1 = chain(dag, base, 1)
        # fork within the left branch
        l2a = chain(dag, l1[-1], 2)
        l2b = chain(dag, l1[-1], 2)
        assert dag.descendant_check(l1[0], l2a[-1])
        assert dag.descendant_check(l1[0], l2b[-1])
        assert not dag.descendant_check(l2a[0], l2b[-1])
        assert not dag.descendant_check(r1[0], l2a[-1])

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=60), st.integers(0, 2**32))
    @settings(max_examples=60, deadline=None)
    def test_matches_graph_walk(self, parent_choices, seed):
        """Fork-path check agrees with the reference ancestor walk on random DAGs."""
        rng = random.Random(seed)
        dag = StateDAG("A")
        states = [dag.root]
        for choice in parent_choices:
            parent = states[choice % len(states)]
            if rng.random() < 0.15 and len(states) > 2:
                other = states[rng.randrange(len(states))]
                parents = {parent.id: parent, other.id: other}
                new = dag.create_state(list(parents.values()))
            else:
                new = dag.create_state([parent])
            states.append(new)
        sample = states if len(states) <= 12 else rng.sample(states, 12)
        for x in sample:
            for y in sample:
                assert dag.descendant_check(x, y) == dag.ancestor_walk_check(x, y), (
                    x.id,
                    y.id,
                )


class TestBranchQueries:
    def test_fork_points_of_siblings(self):
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        left = chain(dag, base, 2)
        right = chain(dag, base, 2)
        forks = dag.fork_points_of([left[-1], right[-1]])
        assert [f.id for f in forks] == [base.id]

    def test_fork_points_nested_returns_nearest_first(self):
        dag = StateDAG("A")
        f1 = dag.create_state([dag.root])
        a = chain(dag, f1, 1)[0]
        b = chain(dag, f1, 1)[0]
        # second fork inside branch a
        a1 = chain(dag, a, 1)[0]
        a2 = chain(dag, a, 1)[0]
        forks = dag.fork_points_of([a1, a2, b])
        assert forks[0].id == a.id
        assert {f.id for f in forks} == {a.id, f1.id}

    def test_fork_points_of_nested_states_empty(self):
        dag = StateDAG("A")
        states = chain(dag, dag.root, 3)
        assert dag.fork_points_of([states[0], states[2]]) == []

    def test_no_false_fork_after_merge(self):
        """A merge descendant vs. a branch state must not report the old fork."""
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        left = chain(dag, base, 1)[0]
        right = chain(dag, base, 1)[0]
        merged = dag.create_state([left, right])
        assert dag.fork_points_of([merged, left]) == []

    def test_states_between(self):
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        left = chain(dag, base, 3)
        right = chain(dag, base, 2)
        between = dag.states_between(left[-1], base)
        assert {s.id for s in between} == {s.id for s in left}
        assert dag.states_between(right[0], left[0]) == []

    def test_states_between_through_merge(self):
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        left = chain(dag, base, 1)[0]
        right = chain(dag, base, 1)[0]
        merged = dag.create_state([left, right])
        between = dag.states_between(merged, base)
        assert {s.id for s in between} == {left.id, right.id, merged.id}


class TestSpliceOut:
    def test_splice_linear(self):
        dag = StateDAG("A")
        a, b, c = chain(dag, dag.root, 3)
        b.write_keys = frozenset(["x"])
        dag.splice_out(b)
        assert dag.get(b.id) is None
        # Promoted ids still resolve (and count as "present" for the
        # replicator's constant-time dependency check).
        assert b.id in dag
        assert dag.resolve(b.id) is c
        assert c.parents == (a,)
        assert a.children == [c]
        assert "x" in c.write_keys

    def test_splice_fork_point_rejected(self):
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        chain(dag, base, 1)
        chain(dag, base, 1)
        with pytest.raises(ValueError):
            dag.splice_out(base)

    def test_splice_leaf_rejected(self):
        dag = StateDAG("A")
        leaf = dag.create_state([dag.root])
        with pytest.raises(ValueError):
            dag.splice_out(leaf)

    def test_splice_root(self):
        dag = StateDAG("A")
        a, b = chain(dag, dag.root, 2)
        old_root = dag.root
        dag.splice_out(dag.root)
        assert dag.root is a
        assert dag.resolve(old_root.id) is a
        assert a.parents == ()

    def test_resolve_chain_compression(self):
        dag = StateDAG("A")
        a, b, c, d = chain(dag, dag.root, 4)
        dag.splice_out(a)
        dag.splice_out(b)
        dag.splice_out(c)
        assert dag.resolve(a.id) is d
        # After path compression the chain points straight at d.
        assert dag.promotion_of(a.id) == d.id

    def test_resolve_unknown_raises(self):
        dag = StateDAG("A")
        with pytest.raises(GarbageCollectedError):
            dag.resolve(StateId(99, "Z"))

    def test_splice_collapsed_branches_preserves_visibility(self):
        """Collapse both branches of a fork into the merge, then splice the fork."""
        dag = StateDAG("A")
        base = dag.create_state([dag.root])
        left = chain(dag, base, 1)[0]
        right = chain(dag, base, 1)[0]
        merged = dag.create_state([left, right])
        tail = dag.create_state([merged])
        dag.splice_out(left)
        dag.splice_out(right)
        # base now has one distinct child (merged, twice) -> collectable.
        assert not base.is_fork_point
        dag.splice_out(base)
        assert dag.resolve(base.id) is merged
        assert dag.descendant_check(dag.resolve(left.id), tail)
        assert merged.parents == (dag.root,)

    def test_find_read_state_skips_marked(self):
        dag = StateDAG("A")
        a, b = chain(dag, dag.root, 2)
        b.marked = True
        found = dag.find_read_state(lambda s: True)
        assert found is a

    def test_find_read_state_counts_visits(self):
        dag = StateDAG("A")
        chain(dag, dag.root, 3)
        visits = [0]
        dag.find_read_state(lambda s: False, count_visits=visits)
        assert visits[0] == 4
