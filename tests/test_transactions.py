"""Tests for single-mode transactions: begin, read, write, commit, abort."""

import pytest

from repro import (
    AncestorConstraint,
    AnyConstraint,
    KBranchingConstraint,
    NoBranchingConstraint,
    ParentConstraint,
    ReadCommittedConstraint,
    SerializabilityConstraint,
    SnapshotIsolationConstraint,
    StateIdConstraint,
    TardisStore,
)
from repro.errors import (
    BeginError,
    KeyNotFound,
    ReadOnlyViolation,
    TransactionAborted,
    TransactionClosed,
)


@pytest.fixture
def store():
    return TardisStore("A")


class TestBasicLifecycle:
    def test_put_get_commit(self, store):
        t = store.begin()
        t.put("x", 1)
        assert t.get("x") == 1  # read-your-own-writes inside the txn
        sid = t.commit()
        assert t.status == "committed"
        assert t.commit_id == sid
        t2 = store.begin()
        assert t2.get("x") == 1

    def test_missing_key_raises(self, store):
        t = store.begin()
        with pytest.raises(KeyNotFound):
            t.get("nope")
        assert t.get("nope", default=7) == 7

    def test_delete_is_tombstone(self, store):
        store.put("x", 1)
        t = store.begin()
        t.delete("x")
        t.commit()
        t2 = store.begin()
        with pytest.raises(KeyNotFound):
            t2.get("x")
        assert t2.get("x", default=None) is None

    def test_abort_discards_writes(self, store):
        store.put("x", 1)
        t = store.begin()
        t.put("x", 99)
        t.abort()
        assert t.status == "aborted"
        assert store.get("x") == 1
        assert store.metrics.commits == 1

    def test_closed_transaction_rejects_ops(self, store):
        t = store.begin()
        t.put("x", 1)
        t.commit()
        with pytest.raises(TransactionClosed):
            t.get("x")
        with pytest.raises(TransactionClosed):
            t.put("x", 2)
        with pytest.raises(TransactionClosed):
            t.commit()

    def test_read_only_transaction(self, store):
        store.put("x", 1)
        t = store.begin(read_only=True)
        assert t.get("x") == 1
        with pytest.raises(ReadOnlyViolation):
            t.put("x", 2)
        before = len(store.dag)
        t.commit()
        # Read-only commits do not extend the DAG (§6.1.4).
        assert len(store.dag) == before
        assert store.metrics.read_only_commits == 1

    def test_context_manager_commits(self, store):
        with store.begin() as t:
            t.put("x", 5)
        assert store.get("x") == 5

    def test_context_manager_aborts_on_exception(self, store):
        store.put("x", 1)
        with pytest.raises(RuntimeError):
            with store.begin() as t:
                t.put("x", 2)
                raise RuntimeError("boom")
        assert store.get("x") == 1

    def test_multi_key_transaction_is_atomic(self, store):
        with store.begin() as t:
            t.put("a", 1)
            t.put("b", 2)
            t.put("c", 3)
        t2 = store.begin()
        assert (t2.get("a"), t2.get("b"), t2.get("c")) == (1, 2, 3)
        # All three records share one state.
        assert len(store.dag) == 2

    def test_overwrite_within_transaction(self, store):
        with store.begin() as t:
            t.put("x", 1)
            t.put("x", 2)
        assert store.get("x") == 2


class TestBranchOnConflict:
    def two_conflicting(self, store, key="x"):
        store.put(key, 0)
        a, b = store.session("a"), store.session("b")
        t1 = store.begin(session=a)
        t2 = store.begin(session=b)
        t1.put(key, t1.get(key) + 1)
        t2.put(key, t2.get(key) + 1)
        t1.commit()
        t2.commit()
        return a, b

    def test_conflict_creates_branch(self, store):
        self.two_conflicting(store)
        assert store.metrics.forks == 1
        assert len(store.dag.leaves()) == 2
        assert store.metrics.aborts == 0

    def test_branches_are_isolated(self, store):
        a, b = self.two_conflicting(store)
        ta = store.begin(session=a)
        tb = store.begin(session=b)
        # Each session sees its own branch's value (1), not the other's.
        assert ta.get("x") == 1
        assert tb.get("x") == 1
        ta.put("x", 10)
        ta.commit()
        tb2 = store.begin(session=b)
        assert tb2.get("x") == 1

    def test_non_conflicting_concurrent_txns_stay_sequential(self, store):
        t1 = store.begin()
        t2 = store.begin()
        t1.put("x", 1)
        t2.put("y", 2)
        t1.commit()
        t2.commit()  # ripples past t1's commit: no fork
        assert store.metrics.forks == 0
        assert len(store.dag.leaves()) == 1
        t3 = store.begin()
        assert t3.get("x") == 1
        assert t3.get("y") == 2

    def test_write_write_only_conflict_ripples_with_serializability(self, store):
        """Blind writes don't conflict under Ser (no read-write overlap)."""
        store.put("x", 0)
        t1 = store.begin()
        t2 = store.begin()
        t1.put("x", 1)
        t2.put("x", 2)  # blind write: t2 never read x
        t1.commit()
        t2.commit()
        assert store.metrics.forks == 0
        assert store.get("x") == 2

    def test_snapshot_isolation_forks_on_write_write(self, store):
        store.put("x", 0)
        si = SnapshotIsolationConstraint()
        t1 = store.begin()
        t2 = store.begin()
        t1.put("x", 1)
        t2.put("x", 2)
        t1.commit(si)
        t2.commit(si)
        assert store.metrics.forks == 1


class TestConstraints:
    def test_no_branching_aborts_on_conflict(self, store):
        store.put("x", 0)
        end = SerializabilityConstraint() & NoBranchingConstraint()
        t1 = store.begin()
        t2 = store.begin()
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 1)
        t1.commit(end)
        with pytest.raises(TransactionAborted):
            t2.commit(end)
        assert store.metrics.aborts == 1
        assert store.metrics.forks == 0

    def test_k_branching_bounds_children(self, store):
        store.put("x", 0)
        end = SerializabilityConstraint() & KBranchingConstraint(3)
        txns = [store.begin(session=store.session("s%d" % i)) for i in range(4)]
        for t in txns:
            t.put("x", t.get("x") + 1)
        results = []
        for t in txns:
            try:
                t.commit(end)
                results.append("ok")
            except TransactionAborted:
                results.append("abort")
        # k=3 allows at most 2 children per state: 1st commit extends,
        # 2nd forks; the rest abort.
        assert results == ["ok", "ok", "abort", "abort"]

    def test_k_branching_validates_k(self):
        with pytest.raises(ValueError):
            KBranchingConstraint(1)

    def test_parent_constraint_sees_only_own_writes(self, store):
        a, b = store.session("a"), store.session("b")
        parent = ParentConstraint()
        ta = store.begin(parent, session=a)
        ta.put("x", "from-a")
        ta.commit()
        tb = store.begin(parent, session=b)
        # b last committed at the root: it must not see a's write.
        with pytest.raises(KeyNotFound):
            tb.get("x")
        tb.put("y", "from-b")
        tb.commit()
        ta2 = store.begin(parent, session=a)
        assert ta2.get("x") == "from-a"
        with pytest.raises(KeyNotFound):
            ta2.get("y")

    def test_ancestor_reads_my_writes(self, store):
        a = store.session("a")
        with store.begin(session=a) as t:
            t.put("x", 1)
        t2 = store.begin(session=a)
        assert t2.get("x") == 1

    def test_ancestor_excludes_conflicting_sibling(self, store):
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1 = store.begin(session=a)
        t2 = store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 5)
        t1.commit()
        t2.commit()
        # a continues on its own branch.
        t3 = store.begin(session=a)
        assert t3.get("x") == 1

    def test_state_id_begin_constraint(self, store):
        sid1 = store.put("x", 1)
        store.put("x", 2)
        t = store.begin(StateIdConstraint([sid1]))
        assert t.get("x") == 1

    def test_state_id_commit_pins_parent(self, store):
        sid1 = store.put("x", 1)
        store.put("x", 2)  # a later state exists
        t = store.begin(StateIdConstraint([sid1]))
        t.put("y", 9)
        t.commit(StateIdConstraint([sid1]))
        # committed exactly under sid1, forking the branch.
        assert store.metrics.forks == 1

    def test_begin_error_when_no_state_qualifies(self, store):
        with pytest.raises(BeginError):
            store.begin(StateIdConstraint([]))

    def test_end_only_constraint_rejected_at_begin(self, store):
        with pytest.raises(BeginError):
            store.begin(SerializabilityConstraint())

    def test_begin_only_constraint_rejected_at_end(self, store):
        t = store.begin()
        t.put("x", 1)
        with pytest.raises(TransactionAborted):
            t.commit(ParentConstraint())

    def test_read_committed_end_never_aborts(self, store):
        store.put("x", 0)
        rc = ReadCommittedConstraint()
        t1 = store.begin()
        t2 = store.begin()
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 1)
        t1.commit(rc)
        t2.commit(rc)  # ripples past the conflicting write: no fork
        assert store.metrics.forks == 0

    def test_or_composition(self, store):
        # (NoBranching | Any) as end: never aborts even under conflict.
        store.put("x", 0)
        end = NoBranchingConstraint() | AnyConstraint()
        t1 = store.begin()
        t2 = store.begin()
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 1)
        t1.commit(end)
        t2.commit(end)
        assert store.metrics.aborts == 0

    def test_constraint_names(self):
        combo = SerializabilityConstraint() & NoBranchingConstraint()
        assert "Serializability" in combo.name
        assert "NoBranching" in combo.name
        assert AncestorConstraint().can_begin
        assert not AncestorConstraint().can_end
        assert SerializabilityConstraint().can_end


class TestRippleDown:
    def test_commit_ripples_to_latest_compatible(self, store):
        """t commits after non-conflicting later states (Figure 6)."""
        t = store.begin()
        t.put("a", 1)
        for i in range(3):
            other = store.begin()
            other.put("k%d" % i, i)
            other.commit()
        t.commit()
        assert store.metrics.forks == 0
        assert len(store.dag.leaves()) == 1
        assert t.trace.ripple_steps == 3

    def test_commit_stops_before_conflicting_state(self, store):
        store.put("x", 0)
        t = store.begin()
        t.get("x")
        t.put("y", 1)
        w1 = store.begin()
        w1.put("z", 5)
        w1.commit()
        w2 = store.begin()
        w2.put("x", 9)  # conflicts with t's read
        w2.commit()
        t.commit()
        # t rippled past w1 but stopped before w2 -> fork after w1's state.
        assert store.metrics.forks == 1
        assert t.trace.ripple_steps == 1


class TestSessions:
    def test_named_sessions_are_stable(self, store):
        assert store.session("a") is store.session("a")
        assert store.session("a") is not store.session("b")

    def test_anonymous_sessions_unique(self, store):
        assert store.session() is not store.session()

    def test_autocommit_helpers(self, store):
        sid = store.put("k", "v")
        assert store.get("k") == "v"
        assert store.get("missing", default="d") == "d"
        assert sid in store.dag
